"""Record sinks: the streaming side of the batched experiment runtime.

The batch path materialises every cell's full :class:`~repro.sim.results.
StepRecord` list before anything is persisted, which caps a sweep at whatever
fits in RAM.  A :class:`RecordSink` inverts that flow: the simulation layer
*pushes* records as they are produced — ``begin_cell`` opens one cell,
``emit`` delivers each step record, ``end_cell`` commits it — and the sink
decides what to keep.  :class:`CollectorSink` rebuilds the classic in-memory
:class:`~repro.runtime.store.ResultStore` (which is how the batch path is now
implemented, guaranteeing the two paths stay bit-identical);
:class:`~repro.runtime.streamstore.StreamingResultStore` appends each
completed cell to sharded JSONL on disk; the analysis layer's
:class:`~repro.analysis.streaming.SummarySink` folds records into O(1)
running aggregates.  :class:`TeeSink` fans one stream out to several sinks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Protocol, runtime_checkable

from ..sim.results import SimulationResult, StepRecord
from .store import CellResult, ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.logger import SystemLogger
    from .plan import ExperimentCell

__all__ = [
    "RecordSink",
    "CollectorSink",
    "TeeSink",
    "emit_serialized_records",
    "push_cell_result",
]


@runtime_checkable
class RecordSink(Protocol):
    """Consumer of an incrementally produced cell-result stream.

    Executors drive the protocol strictly as ``begin_cell`` → ``emit``* →
    ``end_cell`` per cell; a cell is only *committed* by ``end_cell``, so a
    sink interrupted mid-cell (a crash, an executor error) must be able to
    discard or recover the partial cell — this is what makes the streaming
    store's resume crash-safe.
    """

    def begin_cell(
        self,
        cell: "ExperimentCell",
        workload_name: str,
        governor_name: str,
        dt_s: float,
    ) -> None:
        """Open one cell's record stream."""
        ...

    def emit(self, record: StepRecord) -> None:
        """Deliver the next step record of the open cell."""
        ...

    def end_cell(
        self, wall_time_s: float = 0.0, logger: Optional["SystemLogger"] = None
    ) -> None:
        """Commit the open cell (the logger travels only to in-memory sinks)."""
        ...


class CollectorSink:
    """Sink that rebuilds in-memory :class:`CellResult` entries.

    This is the batch path expressed as a sink: collecting every record of
    every cell reproduces exactly what :meth:`BatchRunner.run` returns, which
    is why :func:`~repro.runtime.runner.run_cell` is implemented as
    ``stream_cell`` into a collector — one code path, bit-identical outputs.
    """

    def __init__(self, store: Optional[ResultStore] = None):
        self.store = store
        self.results: List[CellResult] = []
        self._cell: Optional["ExperimentCell"] = None
        self._result: Optional[SimulationResult] = None

    def begin_cell(self, cell, workload_name, governor_name, dt_s) -> None:
        if self._cell is not None:
            raise RuntimeError(
                f"cell {self._cell.cell_id!r} is still open; end_cell it first"
            )
        self._cell = cell
        self._result = SimulationResult(
            workload_name=workload_name, governor_name=governor_name, dt_s=dt_s
        )

    def emit(self, record: StepRecord) -> None:
        self._result.append(record)

    def end_cell(self, wall_time_s: float = 0.0, logger=None) -> None:
        if self._cell is None:
            raise RuntimeError("no open cell to commit")
        entry = CellResult(
            cell=self._cell, result=self._result, logger=logger, wall_time_s=wall_time_s
        )
        self._cell = None
        self._result = None
        self.results.append(entry)
        if self.store is not None:
            self.store.append(entry)


def emit_serialized_records(sink: RecordSink, fragment: str, records: int) -> None:
    """Deliver pre-serialised records to a sink, fast path when it has one.

    ``fragment`` is ``records`` compact-JSON record objects joined by ``","``
    (the shard/spool line serialization).  Sinks exposing ``emit_serialized``
    — the streaming store, the tee — take the text verbatim (no parse, no
    record objects); any other sink gets the fragment parsed back into
    :class:`StepRecord` objects and per-record :meth:`~RecordSink.emit`
    calls, which is bit-identical because the record JSON round-trips
    exactly.
    """
    if records <= 0:
        return
    fast = getattr(sink, "emit_serialized", None)
    if fast is not None:
        fast(fragment, records)
        return
    import json

    for payload in json.loads("[" + fragment + "]"):
        sink.emit(StepRecord(**payload))


class TeeSink:
    """Fans one record stream out to several sinks (e.g. disk store + summaries)."""

    def __init__(self, *sinks: RecordSink):
        if not sinks:
            raise ValueError("a tee needs at least one sink")
        self.sinks = sinks

    def begin_cell(self, cell, workload_name, governor_name, dt_s) -> None:
        for sink in self.sinks:
            sink.begin_cell(cell, workload_name, governor_name, dt_s)

    def emit(self, record: StepRecord) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def emit_serialized(self, fragment: str, records: int) -> None:
        """Forward pre-serialised records: verbatim text to capable children,
        one parse shared across the rest."""
        if records <= 0:
            return
        parsed: Optional[List[StepRecord]] = None
        for sink in self.sinks:
            fast = getattr(sink, "emit_serialized", None)
            if fast is not None:
                fast(fragment, records)
                continue
            if parsed is None:
                import json

                parsed = [
                    StepRecord(**payload) for payload in json.loads("[" + fragment + "]")
                ]
            for record in parsed:
                sink.emit(record)

    def end_cell(self, wall_time_s: float = 0.0, logger=None) -> None:
        for sink in self.sinks:
            sink.end_cell(wall_time_s=wall_time_s, logger=logger)


def push_cell_result(sink: RecordSink, entry: CellResult) -> None:
    """Forward an already-materialised cell result through a sink.

    Used wherever a whole cell arrives at once — the vectorized executor's
    per-group results, the process pool's merged spill files — so every sink
    sees one uniform protocol.
    """
    sink.begin_cell(
        entry.cell,
        workload_name=entry.result.workload_name,
        governor_name=entry.result.governor_name,
        dt_s=entry.result.dt_s,
    )
    for record in entry.result.records:
        sink.emit(record)
    sink.end_cell(wall_time_s=entry.wall_time_s, logger=entry.logger)
