"""Declarative experiment plans.

The paper's evaluation is a grid of scenarios — benchmarks × DVFS schemes ×
per-user comfort limits — and the analysis layer used to replay each grid
cell through a hand-rolled loop.  An :class:`ExperimentPlan` makes that grid
a first-class object: a list of :class:`ExperimentCell` descriptions that a
:class:`~repro.runtime.runner.BatchRunner` can execute with any executor
(serial, process pool, or the vectorized same-trace population path).

Cells are plain picklable data so they can cross process boundaries.  A cell
names its workload either by benchmark registry name (rebuilt inside the
worker) or by an explicit :class:`~repro.workloads.trace.WorkloadTrace`
(shared across cells — this is what lets the vectorized executor recognise a
same-trace population).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from ..api.specs import AdapterSpec, PolicySpec
from ..core.predictor import RuntimePredictor
from ..device.freq_table import FrequencyTable, nexus4_frequency_table
from ..device.platform import DevicePlatform
from ..governors import create_governor
from ..governors.base import Governor
from ..sim.engine import ThermalManager
from ..workloads.benchmarks import BENCHMARKS, build_benchmark
from ..workloads.trace import WorkloadTrace

__all__ = [
    "BatchPlan",
    "ConstantManagerFactory",
    "ExperimentCell",
    "ExperimentPlan",
    "batch_ineligibility",
    "plan_batches",
]

#: A manager factory builds a fresh ThermalManager for one cell.  Factories
#: (rather than instances) keep cells independent: managers carry run state,
#: so two cells must never share one instance when executed concurrently.
ManagerFactory = Callable[[], ThermalManager]


@dataclass(frozen=True)
class ConstantManagerFactory:
    """Adapts a pre-built manager instance into a cell's manager factory.

    Only safe when the instance is exclusive to one cell of the plan (the
    instance carries run state); picklable whenever the manager is.
    """

    manager: ThermalManager

    def __call__(self) -> ThermalManager:
        return self.manager


@dataclass(frozen=True)
class ExperimentCell:
    """One cell of the experiment grid.

    Attributes:
        cell_id: unique identifier within the plan (used for result lookup).
        benchmark: benchmark registry name; the trace is rebuilt from
            ``(benchmark, seed, duration_s)`` at execution time.  Ignored when
            ``trace`` is given.
        trace: explicit workload trace.  Cells sharing the *same* trace object
            form a same-trace population the vectorized executor can batch.
        duration_s: optional duration override (truncates an explicit trace,
            or is forwarded to the benchmark builder).
        governor: cpufreq governor name, or a pre-built :class:`Governor`
            instance (an instance must then be exclusive to this cell).
            Ignored when ``policy`` is given.
        manager_factory: zero-argument callable returning a fresh thermal
            manager (``None`` runs the bare governor).  Must be picklable for
            the process-pool executor.  Mutually exclusive with ``policy``.
        policy: declarative :class:`~repro.api.specs.PolicySpec` describing
            both the governor and the (optional) thermal manager.  Specs are
            plain picklable data, so policy cells cross process boundaries
            without closures.
        adapter: optional :class:`~repro.api.specs.AdapterSpec` overlaid on
            ``policy`` (it overrides any adapter the policy already names),
            so one sweep can compare static vs. adaptive users without
            cloning the whole policy per cell.  Requires ``policy``.
        predictor: trained predictor injected into ``policy``'s manager at
            build time (the spec itself stays artifact-free); required when
            the policy's manager spec carries no predictor recipe.
        seed: platform seed (sensor noise) and benchmark-builder seed.
        initial_temps: optional initial node temperatures (°C).
        log_period_s: when set, a :class:`~repro.sim.logger.SystemLogger`
            with this period is attached and returned with the cell result.
        platform_factory: optional custom platform constructor (defaults to a
            fresh seeded Nexus-4 platform); must be picklable for the
            process-pool executor.  Cells with a custom platform are not
            eligible for vectorized batching.
        detached_trace: set by :meth:`~repro.runtime.store.ResultStore.load`
            on cells whose original explicit workload trace was not
            persisted; such cells are descriptive only and refuse to build a
            trace (re-running them would silently replay a different
            workload).
        metadata: free-form labels (user id, scheme, ...) carried through to
            the :class:`~repro.runtime.store.ResultStore`.
    """

    cell_id: str
    benchmark: Optional[str] = None
    trace: Optional[WorkloadTrace] = None
    duration_s: Optional[float] = None
    governor: Union[str, Governor] = "ondemand"
    manager_factory: Optional[ManagerFactory] = None
    policy: Optional[PolicySpec] = None
    adapter: Optional[AdapterSpec] = None
    predictor: Optional[RuntimePredictor] = None
    seed: int = 0
    initial_temps: Optional[Mapping[str, float]] = None
    log_period_s: Optional[float] = None
    platform_factory: Optional[Callable[[], DevicePlatform]] = None
    detached_trace: bool = False
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.benchmark is None and self.trace is None:
            raise ValueError("a cell needs a benchmark name or an explicit trace")
        if self.policy is not None:
            if self.manager_factory is not None:
                raise ValueError("a cell takes either a policy spec or a manager_factory, not both")
            if isinstance(self.governor, Governor):
                raise ValueError("a policy-spec cell must not also carry a governor instance")
        elif self.predictor is not None:
            raise ValueError("cell.predictor is only meaningful together with a policy spec")
        elif self.adapter is not None:
            raise ValueError("cell.adapter is only meaningful together with a policy spec")

    def build_trace(self) -> WorkloadTrace:
        """Materialise the cell's workload trace."""
        if self.detached_trace:
            raise ValueError(
                f"cell {self.cell_id!r} was loaded from a result store and its "
                "original workload trace was not persisted; it cannot be re-executed"
            )
        if self.trace is not None:
            if self.duration_s is not None:
                return self.trace.truncated(self.duration_s)
            return self.trace
        return build_benchmark(self.benchmark, seed=self.seed, duration_s=self.duration_s)

    def build_governor(self, table: Optional[FrequencyTable] = None) -> Governor:
        """Build (or return) the cell's governor for a platform's table."""
        if self.policy is not None:
            return self.policy.build_governor(table=table)
        if isinstance(self.governor, Governor):
            return self.governor
        return create_governor(self.governor, table=table)

    def build_manager(self) -> Optional[ThermalManager]:
        """Build a fresh thermal manager for this cell (or ``None``)."""
        if self.policy is not None:
            return self.effective_policy().build_manager(predictor=self.predictor)
        return self.manager_factory() if self.manager_factory is not None else None

    def effective_policy(self) -> Optional[PolicySpec]:
        """The cell's policy with any cell-level adapter overlaid."""
        if self.policy is None or self.adapter is None:
            return self.policy
        return replace(self.policy, adapter=self.adapter)

    def with_metadata(self, **extra: object) -> "ExperimentCell":
        """A copy of the cell with additional metadata entries."""
        merged = dict(self.metadata)
        merged.update(extra)
        return replace(self, metadata=merged)


def batch_ineligibility(cell: ExperimentCell) -> Optional[str]:
    """Why a cell cannot join a structure-of-arrays batch (``None`` = it can).

    Eligibility is *structural*: only properties that would break the shared
    hardware configuration or alias mutable objects between cells disqualify
    a cell.  Per-cell state — seeds (platform, benchmark or feedback-model),
    policies, adapters, comfort limits, trace contents and lengths — is
    batchable by construction: governors and managers are built fresh per
    member and run per member inside the batch.
    """
    if cell.platform_factory is not None:
        return "custom platform factory (hardware may differ from the shared configuration)"
    if isinstance(cell.governor, Governor):
        return "pre-built governor instance (instances may be shared between cells)"
    if cell.detached_trace:
        return "detached trace (loaded from a result store; not re-executable)"
    return None


@dataclass
class BatchPlan:
    """How a vectorized executor will run a list of cells.

    Attributes:
        batches: one list of cell indices per structure-of-arrays batch.
        scalar: ``(cell index, reason)`` for every cell that runs through the
            scalar kernel instead.
        traces: the built workload trace for every batched cell (reused by the
            executor so planning and execution agree on the workload).
    """

    batches: List[List[int]]
    scalar: List[tuple]
    #: Built traces for every *eligible* cell — batched ones, and singleton
    #: fallbacks whose trace was built during planning (the executor reuses
    #: it instead of rebuilding).
    traces: Mapping[int, WorkloadTrace]

    @property
    def batched_indices(self) -> List[int]:
        """Indices of every cell that joined some batch."""
        return [index for batch in self.batches for index in batch]

    def describe(
        self,
        cells: Sequence[ExperimentCell],
        window_steps: Optional[int] = None,
        max_window_bytes: Optional[int] = None,
    ) -> str:
        """Human-readable plan: batch membership and every fallback reason.

        Besides batch membership this also previews the *policy plane*: for
        every batched cell that carries a thermal manager, whether the
        vectorized engine will drive it through the batched USTA fast path
        or keep it on the per-member scalar ``observe()`` loop, and why
        (:func:`~repro.runtime.vectorized.manager_vectorization_ineligibility`).
        With ``window_steps``/``max_window_bytes`` (the executor's window
        configuration) each batch additionally gets its step-window plan —
        the member cap splits wide plans, the window splits long traces, and
        both reasons show up here.
        """
        # Imported here: vectorized.py is the heavyweight engine module and
        # plan.py must stay importable for lightweight plan manipulation.
        from .vectorized import describe_window_plan, manager_vectorization_ineligibility

        lines = []
        total = len(list(cells))
        batched = sum(len(batch) for batch in self.batches)
        lines.append(
            f"batch plan: {total} cell(s) — {batched} vectorized in "
            f"{len(self.batches)} batch(es), {len(self.scalar)} scalar"
        )
        # More than one batch at a sample period means the member cap split
        # the group; say so on each of its batches.
        dt_batches: Dict[float, int] = {}
        for batch in self.batches:
            dt = self.traces[batch[0]].sample_period_s
            dt_batches[dt] = dt_batches.get(dt, 0) + 1
        for number, batch in enumerate(self.batches):
            dt = self.traces[batch[0]].sample_period_s
            steps = max(len(self.traces[index]) for index in batch)
            split_note = (
                " — split by max_batch_members" if dt_batches[dt] > 1 else ""
            )
            lines.append(
                f"  batch {number}: {len(batch)} cells @ dt={dt:g}s, "
                f"{steps} steps (longest member){split_note}"
            )
            if window_steps is not None or max_window_bytes is not None:
                managed = any(
                    cells[index].build_manager() is not None for index in batch
                )
                lines.append(
                    "    "
                    + describe_window_plan(
                        len(batch),
                        steps,
                        window_steps=window_steps,
                        max_window_bytes=max_window_bytes,
                        with_decisions=managed,
                    )
                )
            for index in batch:
                trace = self.traces[index]
                lines.append(
                    f"    {cells[index].cell_id}  [{trace.name}, {len(trace)} steps]"
                )
        # Batched cells never carry a custom platform (batch_ineligibility
        # rejects those), so the engine's manager-eligibility check runs
        # against the default Nexus-4 frequency table — mirror that here.
        table = nexus4_frequency_table()
        plane = 0
        scalar_managers: List[tuple] = []
        for index in self.batched_indices:
            manager = cells[index].build_manager()
            if manager is None:
                continue
            reason = manager_vectorization_ineligibility(manager, table)
            if reason is None:
                plane += 1
            else:
                scalar_managers.append((index, reason))
        if plane or scalar_managers:
            lines.append(
                f"  policy plane: {plane} of {plane + len(scalar_managers)} "
                "managed cell(s) on the vectorized manager fast path"
            )
            if scalar_managers:
                lines.append(
                    "    scalar manager fallback (cell stays batched; its "
                    "manager runs per member):"
                )
                for index, reason in scalar_managers:
                    lines.append(f"      {cells[index].cell_id}  — {reason}")
        if self.scalar:
            lines.append("  scalar fallback:")
            for index, reason in sorted(self.scalar):
                lines.append(f"    {cells[index].cell_id}  — {reason}")
        return "\n".join(lines)


def plan_batches(
    cells: Sequence[ExperimentCell],
    max_batch_members: Optional[int] = None,
) -> BatchPlan:
    """Partition cells into structure-of-arrays batches plus scalar fallbacks.

    Every batch-eligible cell (see :func:`batch_ineligibility`) whose trace
    shares a sample period with at least one other eligible cell joins a
    batch, whatever its benchmark, duration, seed, policy or adapter — this
    is what turns a realistic mixed-trace sweep into one vectorized
    population instead of one Python step-loop per cell.

    Args:
        cells: the cells to plan (indices in the result refer to this order).
        max_batch_members: optional ceiling on members per batch; larger
            groups are split into balanced chunks (bounds the live memory of
            a batch at the cost of extra solver passes).
    """
    if max_batch_members is not None and max_batch_members < 2:
        raise ValueError("max_batch_members must be at least 2 (a batch needs two members)")
    cell_list = list(cells)
    scalar: List[tuple] = []
    traces: Dict[int, WorkloadTrace] = {}
    by_dt: Dict[float, List[int]] = {}
    for index, cell in enumerate(cell_list):
        reason = batch_ineligibility(cell)
        if reason is not None:
            scalar.append((index, reason))
            continue
        trace = cell.build_trace()
        traces[index] = trace
        by_dt.setdefault(trace.sample_period_s, []).append(index)

    batches: List[List[int]] = []
    for dt, group in by_dt.items():
        if len(group) < 2:
            scalar.append(
                (group[0], f"only batchable cell with sample period {dt:g}s")
            )
            continue
        if max_batch_members is not None and len(group) > max_batch_members:
            n_chunks = -(-len(group) // max_batch_members)
            # The cap is hard (it bounds live memory), so a trailing chunk may
            # end up a singleton; the population engine handles one-member
            # batches, just without cross-member amortisation.
            batches.extend(
                [int(i) for i in chunk] for chunk in np.array_split(group, n_chunks)
            )
        else:
            batches.append(list(group))
    return BatchPlan(batches=batches, scalar=scalar, traces=traces)


@dataclass
class ExperimentPlan:
    """An ordered collection of :class:`ExperimentCell` entries.

    Executors preserve plan order in their result streams, so analysis code
    can rely on positional pairing as well as ``cell_id`` lookup.
    """

    cells: List[ExperimentCell] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._ids = set()
        for cell in self.cells:
            if cell.cell_id in self._ids:
                raise ValueError(f"duplicate cell_id {cell.cell_id!r}")
            self._ids.add(cell.cell_id)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[ExperimentCell]:
        return iter(self.cells)

    def add(self, cell: ExperimentCell) -> "ExperimentPlan":
        """Append a cell (returns self for chaining)."""
        if cell.cell_id in self._ids:
            raise ValueError(f"duplicate cell_id {cell.cell_id!r}")
        self.cells.append(cell)
        self._ids.add(cell.cell_id)
        return self

    def extend(self, cells: Sequence[ExperimentCell]) -> "ExperimentPlan":
        """Append several cells (returns self for chaining)."""
        for cell in cells:
            self.add(cell)
        return self

    # -- builders --------------------------------------------------------------

    @classmethod
    def from_product(
        cls,
        benchmarks: Sequence[str],
        governors: Sequence[str] = ("ondemand",),
        managers: Optional[Mapping[str, Optional[ManagerFactory]]] = None,
        seeds: Sequence[int] = (0,),
        duration_scale: float = 1.0,
    ) -> "ExperimentPlan":
        """Build the cartesian product benchmarks × governors × managers × seeds.

        Args:
            benchmarks: benchmark registry names.
            governors: cpufreq governor names.
            managers: mapping of scheme label → manager factory (``None`` for
                the bare governor).  Defaults to ``{"baseline": None}``.
            seeds: platform/workload seeds.
            duration_scale: multiplies every benchmark's nominal duration.

        Returns:
            A plan whose cells carry ``benchmark``, ``governor``, ``scheme``
            and ``seed`` metadata for result lookup.
        """
        if duration_scale <= 0:
            raise ValueError("duration_scale must be positive")
        schemes = dict(managers) if managers is not None else {"baseline": None}
        plan = cls()
        for name in benchmarks:
            spec = BENCHMARKS[name]
            duration = spec.duration_s * duration_scale
            for governor in governors:
                for scheme, factory in schemes.items():
                    for seed in seeds:
                        plan.add(
                            ExperimentCell(
                                cell_id=f"{name}/{governor}/{scheme}/seed{seed}",
                                benchmark=name,
                                duration_s=duration,
                                governor=governor,
                                manager_factory=factory,
                                seed=seed,
                                metadata={
                                    "benchmark": name,
                                    "governor": governor,
                                    "scheme": scheme,
                                    "seed": seed,
                                },
                            )
                        )
        return plan

    @classmethod
    def population(
        cls,
        trace: WorkloadTrace,
        managers: Mapping[str, Optional[ManagerFactory]],
        governor: str = "ondemand",
        seeds: Optional[Sequence[int]] = None,
        cell_prefix: str = "",
    ) -> "ExperimentPlan":
        """A same-trace population: one cell per (member, seed) on one trace.

        All cells share the given trace object, which makes the whole plan a
        single batch for the vectorized executor.

        Args:
            trace: the shared workload trace.
            managers: mapping of member label → manager factory (``None`` for
                an unmanaged member).
            governor: cpufreq governor name shared by all members.
            seeds: per-member platform seeds (one shared seed 0 by default).
            cell_prefix: optional prefix for the generated cell ids.
        """
        seed_list = list(seeds) if seeds is not None else [0]
        plan = cls()
        for member, factory in managers.items():
            for seed in seed_list:
                suffix = f"/seed{seed}" if len(seed_list) > 1 else ""
                plan.add(
                    ExperimentCell(
                        cell_id=f"{cell_prefix}{member}{suffix}",
                        trace=trace,
                        governor=governor,
                        manager_factory=factory,
                        seed=seed,
                        metadata={
                            "member": member,
                            "governor": governor,
                            "seed": seed,
                            "benchmark": trace.name,
                        },
                    )
                )
        return plan
