"""Cell executors: serial, process pool, and heterogeneous vectorized batching.

An executor consumes a list of :class:`~repro.runtime.plan.ExperimentCell`
entries and yields one :class:`~repro.runtime.store.CellResult` per cell *in
input order*.  All three executors are deterministic and interchangeable:
for a given plan they produce identical :class:`StepRecord` streams (the
parity tests in ``tests/test_runtime.py`` and
``tests/test_heterogeneous_batch.py`` assert this bit-for-bit).

* :class:`SerialExecutor` — one cell after another in the current process.
* :class:`ProcessPoolCellExecutor` — cells fan out over a
  ``concurrent.futures`` process pool; cells and their manager factories must
  be picklable.
* :class:`VectorizedExecutor` — every batch-eligible cell, whatever its
  workload trace, joins one structure-of-arrays batch per sample period
  through :func:`~repro.runtime.vectorized.simulate_population_mixed`;
  ineligible cells fall back to the scalar kernel (the partition and its
  reasons are inspectable via :meth:`VectorizedExecutor.batch_plan`).

Every executor additionally implements ``execute_stream(cells, sink)``, the
bounded-memory form :meth:`BatchRunner.run_stream` drives: completed cells
flow into a :class:`~repro.runtime.stream.RecordSink` instead of
accumulating.  The serial executor streams record-by-record (live footprint
≤ one cell); the process pool has each worker *spill* its finished cell as
one serialised JSONL line to a scratch file and the parent merges lines into
the sink in completion order, so neither the workers' result pickles nor the
parent ever hold more than ~one cell; the vectorized executor integrates a
batch in lockstep (inherently O(batch) live — bounded by its
``max_batch_members`` cap, 256 by default) and then drains the batch into
the sink cell by cell.
Stream delivery order is first-appearance unit order — identical to plan
order whenever batched cells are contiguous; sinks key cells by id, so order
never affects resume or analysis.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..device.platform import DevicePlatform
from ..sim.logger import SystemLogger
from ..workloads.trace import WorkloadTrace
from .plan import BatchPlan, ExperimentCell, plan_batches
from .runner import run_cell, stream_cell
from .store import CellResult, ResultStore, record_to_jsonable
from .stream import RecordSink, emit_serialized_records, push_cell_result
from .vectorized import (
    DEFAULT_MAX_WINDOW_BYTES,
    PopulationMember,
    VectorizationError,
    resolve_window_steps,
    simulate_population_mixed,
)

__all__ = [
    "SerialExecutor",
    "ProcessPoolCellExecutor",
    "VectorizedExecutor",
]


@dataclass
class SerialExecutor:
    """Runs every cell sequentially in the current process."""

    def execute(self, cells: Iterable[ExperimentCell]) -> Iterator[CellResult]:
        """Yield one result per cell, in order."""
        for cell in cells:
            yield run_cell(cell)

    def execute_stream(self, cells: Iterable[ExperimentCell], sink: RecordSink) -> None:
        """Stream every cell's records into the sink, record by record."""
        for cell in cells:
            stream_cell(cell, sink)


class _SpillSink:
    """Record sink writing one cell as a single JSONL line to a scratch file.

    This is the worker half of the process pool's spill-and-merge: the line
    format is exactly the streaming store's (same prefix/suffix helpers), so
    the parent can merge spill files into any sink — or, byte-for-byte, into
    a shard — without the cell's records ever crossing the process pipe.
    """

    def __init__(self, path: Path):
        self.path = path
        self._fh = None
        self._records = 0

    def begin_cell(self, cell, workload_name, governor_name, dt_s) -> None:
        from .streamstore import cell_line_prefix

        self._fh = open(self.path, "w", encoding="utf-8")
        self._records = 0
        self._fh.write(cell_line_prefix(cell, workload_name, governor_name, dt_s))

    def emit(self, record) -> None:
        if self._records:
            self._fh.write(",")
        self._fh.write(json.dumps(record_to_jsonable(record), separators=(",", ":")))
        self._records += 1

    def end_cell(self, wall_time_s: float = 0.0, logger=None) -> None:
        from .streamstore import cell_line_suffix

        self._fh.write(cell_line_suffix(wall_time_s) + "\n")
        self._fh.close()
        self._fh = None


def _spill_cell(cell: ExperimentCell, spill_dir: str) -> str:
    """Pool-worker unit of work: run one cell, spill it, return the file path."""
    path = Path(spill_dir) / f"{uuid.uuid4().hex}.jsonl"
    stream_cell(cell, _SpillSink(path))
    return str(path)


class _WindowSpoolDrain:
    """Per-member record spool for the windowed streaming batch path.

    The windowed engine emits each live member's record rows at every window
    boundary, but the sink protocol commits whole cells — so the rows are
    spooled to one JSONL file per member (one serialised record per line,
    exactly the shard/spill record serialization) and replayed into the sink
    cell by cell once the batch finishes.  Peak memory is one window of
    staging plus one replay chunk; the spool itself is sequential disk I/O.
    """

    #: Replay chunk size: spooled lines are forwarded to the sink in
    #: ~256 KiB ","-joined fragments, so replay never holds a whole
    #: multi-hour cell in memory either.
    CHUNK_CHARS = 256 * 1024

    def __init__(self, n_members: int):
        self._dir = tempfile.mkdtemp(prefix="repro-windowspool-")
        self._paths = [
            Path(self._dir) / f"member-{index:05d}.jsonl" for index in range(n_members)
        ]
        self._handles: List[Optional[object]] = [None] * n_members
        self._counts = [0] * n_members

    def emit_member_window(self, index: int, records, done: bool) -> None:
        """Spool one member's rows of the just-finished window."""
        fh = self._handles[index]
        if fh is None:
            fh = self._handles[index] = open(self._paths[index], "w", encoding="utf-8")
        count = 0
        for record in records:
            fh.write(json.dumps(record_to_jsonable(record), separators=(",", ":")))
            fh.write("\n")
            count += 1
        self._counts[index] += count
        if done:
            fh.close()
            self._handles[index] = None

    def replay_member(self, index: int, sink: RecordSink) -> None:
        """Forward one member's spooled records into an open sink cell."""
        if self._counts[index] == 0:
            return
        with open(self._paths[index], "r", encoding="utf-8") as fh:
            pending: List[str] = []
            size = 0
            for line in fh:
                pending.append(line.rstrip("\n"))
                size += len(line)
                if size >= self.CHUNK_CHARS:
                    emit_serialized_records(sink, ",".join(pending), len(pending))
                    pending = []
                    size = 0
            if pending:
                emit_serialized_records(sink, ",".join(pending), len(pending))

    def cleanup(self) -> None:
        for index, fh in enumerate(self._handles):
            if fh is not None:
                fh.close()
                self._handles[index] = None
        shutil.rmtree(self._dir, ignore_errors=True)


@dataclass
class ProcessPoolCellExecutor:
    """Fans cells out over a process pool.

    Attributes:
        max_workers: pool size (``None`` lets ``concurrent.futures`` decide).
        chunksize: cells submitted per worker task (larger values amortize
            pickling for plans of many small cells).
    """

    max_workers: Optional[int] = None
    chunksize: int = 1

    def execute(self, cells: Iterable[ExperimentCell]) -> Iterator[CellResult]:
        """Yield one result per cell, in order (pool map preserves order)."""
        cell_list = list(cells)
        if not cell_list:
            return
        if len(cell_list) == 1:
            # Not worth a pool spin-up for a single cell.
            yield run_cell(cell_list[0])
            return
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            yield from pool.map(run_cell, cell_list, chunksize=self.chunksize)

    def execute_stream(self, cells: Iterable[ExperimentCell], sink: RecordSink) -> None:
        """Fan cells out, spilling each finished cell to disk, and merge in order.

        Each worker writes its cell's records as one serialised JSONL line to
        a scratch file and returns only the path, so nothing heavier than a
        path crosses the process pipe and the parent holds at most one cell
        while forwarding it into the sink.  Spill files (and the scratch
        directory) are removed as they are merged.
        """
        cell_list = list(cells)
        if not cell_list:
            return
        if len(cell_list) == 1:
            stream_cell(cell_list[0], sink)
            return
        spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                paths = pool.map(
                    _spill_cell,
                    cell_list,
                    [spill_dir] * len(cell_list),
                    chunksize=self.chunksize,
                )
                for cell, path in zip(cell_list, paths):
                    with open(path, "r", encoding="utf-8") as fh:
                        payload = json.loads(fh.readline())
                    parsed = ResultStore._entry_from_jsonable(payload)
                    # Keep the parent's original cell object (the spill line's
                    # descriptive cell would detach explicit traces).
                    push_cell_result(
                        sink,
                        CellResult(
                            cell=cell,
                            result=parsed.result,
                            wall_time_s=parsed.wall_time_s,
                        ),
                    )
                    Path(path).unlink()
        finally:
            shutil.rmtree(spill_dir, ignore_errors=True)


@dataclass
class VectorizedExecutor:
    """Batches cells through the heterogeneous vectorized population engine.

    Planning (:func:`~repro.runtime.plan.plan_batches`) puts *every*
    batch-eligible cell — whatever its benchmark, trace, duration, seed,
    policy or adapter — into one structure-of-arrays batch per sample period,
    executed through :func:`~repro.runtime.vectorized.
    simulate_population_mixed`.  Ineligible cells (custom platforms,
    pre-built governor instances, detached traces, a lone cell at its sample
    period) run through :func:`~repro.runtime.runner.run_cell` unchanged, as
    does any batch the population engine rejects at validation time.  Use
    :meth:`batch_plan` (or ``repro sweep --explain-batching``) to see exactly
    which cells batched and why the rest fell back.

    Attributes:
        exact: forwarded to the population engine; keep True (default) for
            bit-identical parity with the scalar engine.
        max_batch_members: ceiling on members per batch.  A batch's staging
            matrices (trace columns, sensor noise, the columnar record
            buffer) are O(members × steps) live, so the default cap keeps
            the footprint bounded by a constant number of cells whatever the
            plan size — the cross-member amortisation saturates far below
            it.  ``None`` removes the cap (one batch per sample period).
        window_steps: explicit step-window length for the engine (>= 2);
            windows bound the *per-step* axis the member cap cannot — the
            two caps compose, splitting wide plans by members and long
            traces by steps.  ``None`` (default) defers to the byte budget.
        max_window_bytes: staging byte budget the window length is sized
            from when ``window_steps`` is None (see
            :func:`~repro.runtime.vectorized.resolve_window_steps`).  The
            default keeps every paper-scale plan unwindowed; multi-hour
            traces are windowed automatically.  ``None`` disables windowing.
    """

    #: Default ceiling on members per SoA batch: large enough that the
    #: vectorization win is fully amortised, small enough that a streamed
    #: million-cell plan stages at most ~this many cells at a time.
    DEFAULT_MAX_BATCH_MEMBERS = 256

    exact: bool = True
    max_batch_members: Optional[int] = DEFAULT_MAX_BATCH_MEMBERS
    window_steps: Optional[int] = None
    max_window_bytes: Optional[int] = DEFAULT_MAX_WINDOW_BYTES

    def batch_plan(self, cells: Sequence[ExperimentCell]) -> BatchPlan:
        """The batch/fallback partition this executor would use for ``cells``."""
        return plan_batches(cells, max_batch_members=self.max_batch_members)

    def execute(self, cells: Iterable[ExperimentCell]) -> Iterator[CellResult]:
        """Yield one result per cell, in input order."""
        cell_list = list(cells)
        batch_plan = self.batch_plan(cell_list)
        results: List[Optional[CellResult]] = [None] * len(cell_list)
        for index, _reason in batch_plan.scalar:
            results[index] = run_cell(
                cell_list[index], trace=batch_plan.traces.get(index)
            )
        for batch in batch_plan.batches:
            group = [cell_list[i] for i in batch]
            traces = [batch_plan.traces[i] for i in batch]
            for i, cell_result in zip(batch, self._run_batch(group, traces)):
                results[i] = cell_result
        for cell_result in results:
            assert cell_result is not None
            yield cell_result

    def execute_stream(self, cells: Iterable[ExperimentCell], sink: RecordSink) -> None:
        """Stream cells into the sink, draining each batch as it completes.

        Unlike :meth:`execute` (which buffers every result to restore plan
        order), units are processed and drained in first-appearance order —
        each structure-of-arrays batch at the position of its first cell, and
        each scalar cell record-by-record in place.  The live footprint is
        one batch, bounded by ``max_batch_members`` cells (256 by default),
        whatever the plan size.
        """
        cell_list = list(cells)
        batch_plan = self.batch_plan(cell_list)
        units: List[Tuple[int, Optional[List[int]]]] = [
            (index, None) for index, _reason in batch_plan.scalar
        ]
        units.extend((batch[0], batch) for batch in batch_plan.batches)
        for first_index, batch in sorted(units, key=lambda unit: unit[0]):
            if batch is None:
                stream_cell(
                    cell_list[first_index],
                    sink,
                    trace=batch_plan.traces.get(first_index),
                )
            else:
                group = [cell_list[i] for i in batch]
                traces = [batch_plan.traces[i] for i in batch]
                self._stream_batch(group, traces, sink)

    def _build_members(
        self, group: Sequence[ExperimentCell]
    ) -> Tuple[List[PopulationMember], List[Optional[SystemLogger]]]:
        members: List[PopulationMember] = []
        loggers: List[Optional[SystemLogger]] = []
        for cell in group:
            platform = DevicePlatform(seed=cell.seed)
            logger = (
                SystemLogger(period_s=cell.log_period_s)
                if cell.log_period_s is not None
                else None
            )
            loggers.append(logger)
            members.append(
                PopulationMember(
                    platform=platform,
                    governor=cell.build_governor(table=platform.freq_table),
                    thermal_manager=cell.build_manager(),
                    logger=logger,
                    initial_temps=cell.initial_temps,
                )
            )
        return members, loggers

    def _run_batch(
        self, group: Sequence[ExperimentCell], traces: Sequence[WorkloadTrace]
    ) -> List[CellResult]:
        start = time.perf_counter()
        members, loggers = self._build_members(group)
        try:
            sim_results = simulate_population_mixed(
                traces,
                members,
                exact=self.exact,
                window_steps=self.window_steps,
                max_window_bytes=self.max_window_bytes,
            )
        except VectorizationError:
            return [run_cell(cell) for cell in group]
        wall_each = (time.perf_counter() - start) / len(group)
        return [
            CellResult(cell=cell, result=result, logger=logger, wall_time_s=wall_each)
            for cell, result, logger in zip(group, sim_results, loggers)
        ]

    def _resolved_window_steps(
        self, members: Sequence[PopulationMember], traces: Sequence[WorkloadTrace]
    ) -> int:
        """The window length the engine will pick for this batch."""
        template = members[0].platform
        n_noisy = sum(
            1 for s in template.sensors.sensors.values() if s.noise_std_c > 0
        )
        return resolve_window_steps(
            len(members),
            max(len(trace) for trace in traces),
            window_steps=self.window_steps,
            max_window_bytes=self.max_window_bytes,
            n_noisy_sensors=n_noisy,
            with_decisions=any(m.thermal_manager is not None for m in members),
        )

    def _stream_batch(
        self,
        group: Sequence[ExperimentCell],
        traces: Sequence[WorkloadTrace],
        sink: RecordSink,
    ) -> None:
        """Run one batch and stream it into the sink.

        Unwindowed batches take the classic whole-cell push path.  Windowed
        batches run with a :class:`_WindowSpoolDrain`: the engine's record
        buffer stays one window long, each window's completed rows spool to
        per-member scratch files, and the spool replays into the sink cell by
        cell — shard bytes are identical to the unwindowed path (the spool
        lines are the exact record serialization).
        """
        start = time.perf_counter()
        members, loggers = self._build_members(group)
        max_steps = max(len(trace) for trace in traces)
        if self._resolved_window_steps(members, traces) >= max_steps:
            try:
                sim_results = simulate_population_mixed(
                    traces, members, exact=self.exact
                )
            except VectorizationError:
                for cell in group:
                    stream_cell(cell, sink)
                return
            wall_each = (time.perf_counter() - start) / len(group)
            for cell, result, logger in zip(group, sim_results, loggers):
                push_cell_result(
                    sink,
                    CellResult(
                        cell=cell, result=result, logger=logger, wall_time_s=wall_each
                    ),
                )
            return
        spool = _WindowSpoolDrain(len(group))
        try:
            try:
                sim_results = simulate_population_mixed(
                    traces,
                    members,
                    exact=self.exact,
                    window_steps=self.window_steps,
                    max_window_bytes=self.max_window_bytes,
                    window_drain=spool,
                )
            except VectorizationError:
                for cell in group:
                    stream_cell(cell, sink)
                return
            wall_each = (time.perf_counter() - start) / len(group)
            for index, (cell, result, logger) in enumerate(
                zip(group, sim_results, loggers)
            ):
                sink.begin_cell(
                    cell,
                    workload_name=result.workload_name,
                    governor_name=result.governor_name,
                    dt_s=result.dt_s,
                )
                spool.replay_member(index, sink)
                sink.end_cell(wall_time_s=wall_each, logger=logger)
        finally:
            spool.cleanup()
