"""Cell executors: serial, process pool, and vectorized same-trace batching.

An executor consumes a list of :class:`~repro.runtime.plan.ExperimentCell`
entries and yields one :class:`~repro.runtime.store.CellResult` per cell *in
input order*.  All three executors are deterministic and interchangeable:
for a given plan they produce identical :class:`StepRecord` streams (the
parity tests in ``tests/test_runtime.py`` assert this bit-for-bit).

* :class:`SerialExecutor` — one cell after another in the current process.
* :class:`ProcessPoolCellExecutor` — cells fan out over a
  ``concurrent.futures`` process pool; cells and their manager factories must
  be picklable.
* :class:`VectorizedExecutor` — cells that share a workload trace and the
  default platform are batched through
  :func:`~repro.runtime.vectorized.simulate_population`; everything else
  falls back to the wrapped executor.

Every executor additionally implements ``execute_stream(cells, sink)``, the
bounded-memory form :meth:`BatchRunner.run_stream` drives: completed cells
flow into a :class:`~repro.runtime.stream.RecordSink` instead of
accumulating.  The serial executor streams record-by-record (live footprint
≤ one cell); the process pool has each worker *spill* its finished cell as
one serialised JSONL line to a scratch file and the parent merges lines into
the sink in completion order, so neither the workers' result pickles nor the
parent ever hold more than ~one cell; the vectorized executor integrates a
same-trace group in lockstep (inherently O(group) live) and then drains the
group into the sink cell by cell.  Stream delivery order is first-appearance
group order — identical to plan order whenever grouped cells are contiguous;
sinks key cells by id, so order never affects resume or analysis.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..device.platform import DevicePlatform
from ..governors.base import Governor
from ..sim.logger import SystemLogger
from .plan import ExperimentCell
from .runner import run_cell, stream_cell
from .store import CellResult, ResultStore, record_to_jsonable
from .stream import RecordSink, push_cell_result
from .vectorized import PopulationMember, VectorizationError, simulate_population

__all__ = [
    "SerialExecutor",
    "ProcessPoolCellExecutor",
    "VectorizedExecutor",
]


@dataclass
class SerialExecutor:
    """Runs every cell sequentially in the current process."""

    def execute(self, cells: Iterable[ExperimentCell]) -> Iterator[CellResult]:
        """Yield one result per cell, in order."""
        for cell in cells:
            yield run_cell(cell)

    def execute_stream(self, cells: Iterable[ExperimentCell], sink: RecordSink) -> None:
        """Stream every cell's records into the sink, record by record."""
        for cell in cells:
            stream_cell(cell, sink)


class _SpillSink:
    """Record sink writing one cell as a single JSONL line to a scratch file.

    This is the worker half of the process pool's spill-and-merge: the line
    format is exactly the streaming store's (same prefix/suffix helpers), so
    the parent can merge spill files into any sink — or, byte-for-byte, into
    a shard — without the cell's records ever crossing the process pipe.
    """

    def __init__(self, path: Path):
        self.path = path
        self._fh = None
        self._records = 0

    def begin_cell(self, cell, workload_name, governor_name, dt_s) -> None:
        from .streamstore import cell_line_prefix

        self._fh = open(self.path, "w", encoding="utf-8")
        self._records = 0
        self._fh.write(cell_line_prefix(cell, workload_name, governor_name, dt_s))

    def emit(self, record) -> None:
        if self._records:
            self._fh.write(",")
        self._fh.write(json.dumps(record_to_jsonable(record), separators=(",", ":")))
        self._records += 1

    def end_cell(self, wall_time_s: float = 0.0, logger=None) -> None:
        from .streamstore import cell_line_suffix

        self._fh.write(cell_line_suffix(wall_time_s) + "\n")
        self._fh.close()
        self._fh = None


def _spill_cell(cell: ExperimentCell, spill_dir: str) -> str:
    """Pool-worker unit of work: run one cell, spill it, return the file path."""
    path = Path(spill_dir) / f"{uuid.uuid4().hex}.jsonl"
    stream_cell(cell, _SpillSink(path))
    return str(path)


@dataclass
class ProcessPoolCellExecutor:
    """Fans cells out over a process pool.

    Attributes:
        max_workers: pool size (``None`` lets ``concurrent.futures`` decide).
        chunksize: cells submitted per worker task (larger values amortize
            pickling for plans of many small cells).
    """

    max_workers: Optional[int] = None
    chunksize: int = 1

    def execute(self, cells: Iterable[ExperimentCell]) -> Iterator[CellResult]:
        """Yield one result per cell, in order (pool map preserves order)."""
        cell_list = list(cells)
        if not cell_list:
            return
        if len(cell_list) == 1:
            # Not worth a pool spin-up for a single cell.
            yield run_cell(cell_list[0])
            return
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            yield from pool.map(run_cell, cell_list, chunksize=self.chunksize)

    def execute_stream(self, cells: Iterable[ExperimentCell], sink: RecordSink) -> None:
        """Fan cells out, spilling each finished cell to disk, and merge in order.

        Each worker writes its cell's records as one serialised JSONL line to
        a scratch file and returns only the path, so nothing heavier than a
        path crosses the process pipe and the parent holds at most one cell
        while forwarding it into the sink.  Spill files (and the scratch
        directory) are removed as they are merged.
        """
        cell_list = list(cells)
        if not cell_list:
            return
        if len(cell_list) == 1:
            stream_cell(cell_list[0], sink)
            return
        spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                paths = pool.map(
                    _spill_cell,
                    cell_list,
                    [spill_dir] * len(cell_list),
                    chunksize=self.chunksize,
                )
                for cell, path in zip(cell_list, paths):
                    with open(path, "r", encoding="utf-8") as fh:
                        payload = json.loads(fh.readline())
                    parsed = ResultStore._entry_from_jsonable(payload)
                    # Keep the parent's original cell object (the spill line's
                    # descriptive cell would detach explicit traces).
                    push_cell_result(
                        sink,
                        CellResult(
                            cell=cell,
                            result=parsed.result,
                            wall_time_s=parsed.wall_time_s,
                        ),
                    )
                    Path(path).unlink()
        finally:
            shutil.rmtree(spill_dir, ignore_errors=True)


@dataclass
class VectorizedExecutor:
    """Batches same-trace cells through the vectorized population engine.

    Cells are grouped by workload identity (same explicit trace object, or
    same ``(benchmark, seed, duration)``); each group of two or more
    default-platform cells becomes one
    :func:`~repro.runtime.vectorized.simulate_population` call.  Ungroupable
    cells (custom platforms, pre-built governor instances, singleton groups)
    run through :func:`~repro.runtime.runner.run_cell` unchanged, as does any
    group the population engine rejects.

    Attributes:
        exact: forwarded to :func:`simulate_population`; keep True (default)
            for bit-identical parity with the scalar engine.
    """

    exact: bool = True

    @staticmethod
    def _group_key(cell: ExperimentCell) -> Optional[Tuple]:
        if cell.platform_factory is not None:
            return None  # custom hardware — cannot assume a shared network
        if isinstance(cell.governor, Governor):
            return None  # pre-built instances may be shared between cells
        if cell.trace is not None:
            return ("trace", id(cell.trace), cell.duration_s)
        return ("bench", cell.benchmark, cell.seed, cell.duration_s)

    def execute(self, cells: Iterable[ExperimentCell]) -> Iterator[CellResult]:
        """Yield one result per cell, in input order."""
        cell_list = list(cells)
        groups: Dict[Tuple, List[int]] = {}
        order: List[Tuple] = []
        singles: List[int] = []
        for index, cell in enumerate(cell_list):
            key = self._group_key(cell)
            if key is None:
                singles.append(index)
                continue
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(index)

        results: List[Optional[CellResult]] = [None] * len(cell_list)
        for index in singles:
            results[index] = run_cell(cell_list[index])
        for key in order:
            indices = groups[key]
            group = [cell_list[i] for i in indices]
            for i, cell_result in zip(indices, self._run_group(group)):
                results[i] = cell_result
        for cell_result in results:
            assert cell_result is not None
            yield cell_result

    def execute_stream(self, cells: Iterable[ExperimentCell], sink: RecordSink) -> None:
        """Stream cells into the sink, draining each same-trace group as it completes.

        Unlike :meth:`execute` (which buffers every result to restore plan
        order), groups are processed and drained in first-appearance order,
        so the live footprint is one group — not the whole plan.  Ungroupable
        cells stream record-by-record.
        """
        cell_list = list(cells)
        groups: Dict[Tuple, List[int]] = {}
        units: List[List[int]] = []
        for index, cell in enumerate(cell_list):
            key = self._group_key(cell)
            if key is None:
                units.append([index])
                continue
            if key not in groups:
                groups[key] = []
                units.append(groups[key])
            groups[key].append(index)
        for unit in units:
            if len(unit) == 1:
                stream_cell(cell_list[unit[0]], sink)
            else:
                for entry in self._run_group([cell_list[i] for i in unit]):
                    push_cell_result(sink, entry)

    def _run_group(self, group: Sequence[ExperimentCell]) -> List[CellResult]:
        if len(group) == 1:
            return [run_cell(group[0])]
        start = time.perf_counter()
        trace = group[0].build_trace()
        members = []
        loggers: List[Optional[SystemLogger]] = []
        for cell in group:
            platform = DevicePlatform(seed=cell.seed)
            logger = (
                SystemLogger(period_s=cell.log_period_s)
                if cell.log_period_s is not None
                else None
            )
            loggers.append(logger)
            members.append(
                PopulationMember(
                    platform=platform,
                    governor=cell.build_governor(table=platform.freq_table),
                    thermal_manager=cell.build_manager(),
                    logger=logger,
                    initial_temps=cell.initial_temps,
                )
            )
        try:
            sim_results = simulate_population(trace, members, exact=self.exact)
        except VectorizationError:
            return [run_cell(cell) for cell in group]
        wall_each = (time.perf_counter() - start) / len(group)
        return [
            CellResult(cell=cell, result=result, logger=logger, wall_time_s=wall_each)
            for cell, result, logger in zip(group, sim_results, loggers)
        ]
