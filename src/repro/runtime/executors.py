"""Cell executors: serial, process pool, and vectorized same-trace batching.

An executor consumes a list of :class:`~repro.runtime.plan.ExperimentCell`
entries and yields one :class:`~repro.runtime.store.CellResult` per cell *in
input order*.  All three executors are deterministic and interchangeable:
for a given plan they produce identical :class:`StepRecord` streams (the
parity tests in ``tests/test_runtime.py`` assert this bit-for-bit).

* :class:`SerialExecutor` — one cell after another in the current process.
* :class:`ProcessPoolCellExecutor` — cells fan out over a
  ``concurrent.futures`` process pool; cells and their manager factories must
  be picklable.
* :class:`VectorizedExecutor` — cells that share a workload trace and the
  default platform are batched through
  :func:`~repro.runtime.vectorized.simulate_population`; everything else
  falls back to the wrapped executor.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..device.platform import DevicePlatform
from ..governors.base import Governor
from ..sim.logger import SystemLogger
from .plan import ExperimentCell
from .runner import run_cell
from .store import CellResult
from .vectorized import PopulationMember, VectorizationError, simulate_population

__all__ = [
    "SerialExecutor",
    "ProcessPoolCellExecutor",
    "VectorizedExecutor",
]


@dataclass
class SerialExecutor:
    """Runs every cell sequentially in the current process."""

    def execute(self, cells: Iterable[ExperimentCell]) -> Iterator[CellResult]:
        """Yield one result per cell, in order."""
        for cell in cells:
            yield run_cell(cell)


@dataclass
class ProcessPoolCellExecutor:
    """Fans cells out over a process pool.

    Attributes:
        max_workers: pool size (``None`` lets ``concurrent.futures`` decide).
        chunksize: cells submitted per worker task (larger values amortize
            pickling for plans of many small cells).
    """

    max_workers: Optional[int] = None
    chunksize: int = 1

    def execute(self, cells: Iterable[ExperimentCell]) -> Iterator[CellResult]:
        """Yield one result per cell, in order (pool map preserves order)."""
        cell_list = list(cells)
        if not cell_list:
            return
        if len(cell_list) == 1:
            # Not worth a pool spin-up for a single cell.
            yield run_cell(cell_list[0])
            return
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            yield from pool.map(run_cell, cell_list, chunksize=self.chunksize)


@dataclass
class VectorizedExecutor:
    """Batches same-trace cells through the vectorized population engine.

    Cells are grouped by workload identity (same explicit trace object, or
    same ``(benchmark, seed, duration)``); each group of two or more
    default-platform cells becomes one
    :func:`~repro.runtime.vectorized.simulate_population` call.  Ungroupable
    cells (custom platforms, pre-built governor instances, singleton groups)
    run through :func:`~repro.runtime.runner.run_cell` unchanged, as does any
    group the population engine rejects.

    Attributes:
        exact: forwarded to :func:`simulate_population`; keep True (default)
            for bit-identical parity with the scalar engine.
    """

    exact: bool = True

    @staticmethod
    def _group_key(cell: ExperimentCell) -> Optional[Tuple]:
        if cell.platform_factory is not None:
            return None  # custom hardware — cannot assume a shared network
        if isinstance(cell.governor, Governor):
            return None  # pre-built instances may be shared between cells
        if cell.trace is not None:
            return ("trace", id(cell.trace), cell.duration_s)
        return ("bench", cell.benchmark, cell.seed, cell.duration_s)

    def execute(self, cells: Iterable[ExperimentCell]) -> Iterator[CellResult]:
        """Yield one result per cell, in input order."""
        cell_list = list(cells)
        groups: Dict[Tuple, List[int]] = {}
        order: List[Tuple] = []
        singles: List[int] = []
        for index, cell in enumerate(cell_list):
            key = self._group_key(cell)
            if key is None:
                singles.append(index)
                continue
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(index)

        results: List[Optional[CellResult]] = [None] * len(cell_list)
        for index in singles:
            results[index] = run_cell(cell_list[index])
        for key in order:
            indices = groups[key]
            group = [cell_list[i] for i in indices]
            for i, cell_result in zip(indices, self._run_group(group)):
                results[i] = cell_result
        for cell_result in results:
            assert cell_result is not None
            yield cell_result

    def _run_group(self, group: Sequence[ExperimentCell]) -> List[CellResult]:
        if len(group) == 1:
            return [run_cell(group[0])]
        start = time.perf_counter()
        trace = group[0].build_trace()
        members = []
        loggers: List[Optional[SystemLogger]] = []
        for cell in group:
            platform = DevicePlatform(seed=cell.seed)
            logger = (
                SystemLogger(period_s=cell.log_period_s)
                if cell.log_period_s is not None
                else None
            )
            loggers.append(logger)
            members.append(
                PopulationMember(
                    platform=platform,
                    governor=cell.build_governor(table=platform.freq_table),
                    thermal_manager=cell.build_manager(),
                    logger=logger,
                    initial_temps=cell.initial_temps,
                )
            )
        try:
            sim_results = simulate_population(trace, members, exact=self.exact)
        except VectorizationError:
            return [run_cell(cell) for cell in group]
        wall_each = (time.perf_counter() - start) / len(group)
        return [
            CellResult(cell=cell, result=result, logger=logger, wall_time_s=wall_each)
            for cell, result, logger in zip(group, sim_results, loggers)
        ]
