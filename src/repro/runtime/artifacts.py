"""Content-addressed cache of trained predictor artifacts.

The ``trained`` predictor recipe (:class:`~repro.api.specs.PredictorSpec`)
deterministically reproduces the paper's offline pipeline — run the benchmark
suite under the baseline governor, train the named learner — which is exactly
why nothing but the recipe needs to be shipped.  It is also why nothing but
the recipe needs to be *retrained*: the same recipe always yields the same
model, so process-pool workers, repeated sweeps, ``repro serve`` populations
and :func:`~repro.api.session.open_session` calls can share one trained
artifact on disk instead of each paying the collect-and-train cost.

The cache is content-addressed: an artifact's identity is the SHA-256 of the
canonical recipe (kind + params + package version + cache format version),
and the artifact file additionally carries — and is named by — the SHA-256 of
the training data the model was actually fitted on, so
``<spec_sha>-<data_sha>.pkl`` fully names *what* was trained on *which*
data.  A small ``<spec_sha>.json`` index maps the recipe to its artifact for
O(1) lookup.  Writes are atomic (temp file + ``os.replace``), so concurrent
workers racing on a cold cache at worst both train and one replaces the
other with identical bytes.

Configuration is via the ``REPRO_ARTIFACT_DIR`` environment variable (which
child worker processes inherit): a path selects the cache directory, ``off``
(or ``none``/``0``/empty) disables disk caching entirely, and when unset the
cache lives under ``$XDG_CACHE_HOME/repro-usta/predictors`` (default
``~/.cache/repro-usta/predictors``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import uuid
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import TrainingData
    from ..core.predictor import RuntimePredictor

__all__ = [
    "ARTIFACT_ENV_VAR",
    "ArtifactCache",
    "configured_artifact_cache",
    "predictor_content_key",
    "training_data_sha",
]

#: Bump when the on-disk artifact layout changes (invalidates every key).
ARTIFACT_FORMAT_VERSION = 1

ARTIFACT_ENV_VAR = "REPRO_ARTIFACT_DIR"

_DISABLED_VALUES = {"", "off", "none", "0"}


def predictor_content_key(kind: str, params: Mapping[str, object]) -> str:
    """Content key of a predictor recipe (SHA-256 of its canonical form).

    The key covers the recipe itself plus the package version and the cache
    format version, so a release that changes the simulation physics or the
    learners addresses fresh artifacts instead of resurrecting stale ones.
    """
    from .. import __version__

    payload = {
        "format": ARTIFACT_FORMAT_VERSION,
        "repro": __version__,
        "kind": kind,
        "params": params,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=list)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


def training_data_sha(data: "TrainingData") -> str:
    """SHA-256 over the canonical training records a model was fitted on."""
    digest = hashlib.sha256()
    digest.update(json.dumps(list(data.benchmarks)).encode("utf-8"))
    for record in data.logger.records:
        digest.update(
            json.dumps(asdict(record), sort_keys=True, separators=(",", ":")).encode("utf-8")
        )
    return digest.hexdigest()[:20]


class ArtifactCache:
    """Disk cache of trained :class:`RuntimePredictor` artifacts.

    Attributes:
        directory: cache directory (created on first use).
        hits / misses / stores: per-instance counters (each process sees its
            own instance, so these describe *this* process's traffic).
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _index_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def resolve(self, key: str) -> Optional["RuntimePredictor"]:
        """The cached predictor for a content key, or ``None`` on a miss.

        A damaged index or artifact (partial write from a killed process,
        unreadable pickle) counts as a miss — the caller retrains and the
        subsequent :meth:`store` atomically replaces the damage.
        """
        index_path = self._index_path(key)
        try:
            meta = json.loads(index_path.read_text(encoding="utf-8"))
            with open(self.directory / meta["file"], "rb") as fh:
                payload = pickle.load(fh)
            predictor = payload["predictor"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # noqa: BLE001 - any damage is a miss, never a crash
            self.misses += 1
            return None
        self.hits += 1
        return predictor

    def store(self, key: str, data_sha: str, predictor: "RuntimePredictor") -> Path:
        """Persist a trained predictor under its content key; returns the path."""
        file_name = f"{key}-{data_sha}.pkl"
        artifact = self.directory / file_name
        payload = {
            "format": ARTIFACT_FORMAT_VERSION,
            "data_sha": data_sha,
            "predictor": predictor,
        }
        self._atomic_write(artifact, pickle.dumps(payload))
        self._atomic_write(
            self._index_path(key),
            json.dumps({"file": file_name, "data_sha": data_sha}).encode("utf-8"),
        )
        self.stores += 1
        return artifact

    def _atomic_write(self, target: Path, content: bytes) -> None:
        # Unique temp name + rename-into-place: concurrent fleet workers
        # storing the same key can interleave freely — each write is all-or-
        # nothing and the last complete one wins.  fsync before the rename so
        # a crash cannot publish a name pointing at unwritten data; clean up
        # the temp file on any failure so the directory doesn't accumulate
        # orphans from killed workers.
        tmp = target.with_name(f".{target.name}.{uuid.uuid4().hex}.tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(content)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        finally:
            if tmp.exists():
                tmp.unlink()

    def sweep_stale_tmp(self, max_age_s: float = 3600.0) -> int:
        """Delete orphaned ``.tmp`` files older than ``max_age_s``.

        A SIGKILLed worker can leave its in-flight temp file behind; the
        unique names make them harmless but they accumulate.  Recent temps
        are left alone — they may belong to a live writer.
        """
        now = time.time()
        removed = 0
        for tmp in self.directory.glob(".*.tmp"):
            try:
                if now - tmp.stat().st_mtime > max_age_s:
                    tmp.unlink()
                    removed += 1
            except OSError:  # pragma: no cover - raced with another sweeper
                continue
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArtifactCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )


def configured_artifact_cache() -> Optional[ArtifactCache]:
    """The process's artifact cache per ``REPRO_ARTIFACT_DIR`` (or ``None``)."""
    value = os.environ.get(ARTIFACT_ENV_VAR)
    if value is not None:
        if value.strip().lower() in _DISABLED_VALUES:
            return None
        return ArtifactCache(value)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return ArtifactCache(root / "repro-usta" / "predictors")
