"""Batched experiment runtime.

This package turns the paper's evaluation grid into data: an
:class:`~repro.runtime.plan.ExperimentPlan` describes the cells (benchmark ×
governor × manager × seed), a :class:`~repro.runtime.runner.BatchRunner`
executes them through a pluggable executor, and a
:class:`~repro.runtime.store.ResultStore` collects the per-cell
:class:`~repro.sim.results.SimulationResult` streams with their metadata.

Executors trade scheduling for the same deterministic results:

* :class:`~repro.runtime.executors.SerialExecutor` — simple in-process loop;
* :class:`~repro.runtime.executors.ProcessPoolCellExecutor` — cells fan out
  over a process pool (``repro-usta table1 --jobs 4``);
* :class:`~repro.runtime.executors.VectorizedExecutor` — cells sharing one
  workload trace integrate in lockstep through
  :func:`~repro.runtime.vectorized.simulate_population`, turning N thermal
  solves per step into one batched solve on the cached LU factorization.

For sweeps too large to hold in memory, the record path also runs
*streaming*: executors push each completed cell through the
:class:`~repro.runtime.stream.RecordSink` protocol into an append-only
sharded-JSONL :class:`~repro.runtime.streamstore.StreamingResultStore`
(crash-safe, resumable, bit-identical to the batch path), and
:mod:`repro.runtime.artifacts` caches trained predictor artifacts by content
key so repeated sweeps and pool workers stop retraining per process.

Quickstart::

    from repro.runtime import BatchRunner, ExperimentPlan

    plan = ExperimentPlan.from_product(
        benchmarks=("skype", "youtube"),
        managers={"baseline": None},
        duration_scale=0.1,
    )
    store = BatchRunner.for_jobs(None).run(plan)
    for row in store.summary_rows():
        print(row["cell_id"], row["max_skin_temp_c"])

    # or, bounded-memory with resume:
    from repro.runtime import StreamingResultStore

    disk = StreamingResultStore("out/")
    BatchRunner.for_jobs(None).run_stream(plan, disk, skip=disk.completed_cell_ids)
    disk.close()
"""

from .artifacts import ArtifactCache, configured_artifact_cache
from .executors import ProcessPoolCellExecutor, SerialExecutor, VectorizedExecutor
from .plan import ConstantManagerFactory, ExperimentCell, ExperimentPlan
from .runner import BatchRunner, run_cell, stream_cell
from .store import CellResult, ResultStore
from .stream import CollectorSink, RecordSink, TeeSink, push_cell_result
from .streamstore import StoreCorruptionError, StreamingResultStore
from .vectorized import (
    PopulationMember,
    VectorizationError,
    simulate_population,
)

__all__ = [
    "ArtifactCache",
    "BatchRunner",
    "CellResult",
    "CollectorSink",
    "ConstantManagerFactory",
    "ExperimentCell",
    "ExperimentPlan",
    "PopulationMember",
    "ProcessPoolCellExecutor",
    "RecordSink",
    "ResultStore",
    "SerialExecutor",
    "StoreCorruptionError",
    "StreamingResultStore",
    "TeeSink",
    "VectorizationError",
    "VectorizedExecutor",
    "configured_artifact_cache",
    "push_cell_result",
    "run_cell",
    "simulate_population",
    "stream_cell",
]
