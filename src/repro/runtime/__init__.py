"""Batched experiment runtime.

This package turns the paper's evaluation grid into data: an
:class:`~repro.runtime.plan.ExperimentPlan` describes the cells (benchmark ×
governor × manager × seed), a :class:`~repro.runtime.runner.BatchRunner`
executes them through a pluggable executor, and a
:class:`~repro.runtime.store.ResultStore` collects the per-cell
:class:`~repro.sim.results.SimulationResult` streams with their metadata.

Executors trade scheduling for the same deterministic results:

* :class:`~repro.runtime.executors.SerialExecutor` — simple in-process loop;
* :class:`~repro.runtime.executors.ProcessPoolCellExecutor` — cells fan out
  over a process pool (``repro-usta table1 --jobs 4``);
* :class:`~repro.runtime.executors.VectorizedExecutor` — cells sharing one
  workload trace integrate in lockstep through
  :func:`~repro.runtime.vectorized.simulate_population`, turning N thermal
  solves per step into one batched solve on the cached LU factorization.

Quickstart::

    from repro.runtime import BatchRunner, ExperimentPlan

    plan = ExperimentPlan.from_product(
        benchmarks=("skype", "youtube"),
        managers={"baseline": None},
        duration_scale=0.1,
    )
    store = BatchRunner.for_jobs(None).run(plan)
    for row in store.summary_rows():
        print(row["cell_id"], row["max_skin_temp_c"])
"""

from .executors import ProcessPoolCellExecutor, SerialExecutor, VectorizedExecutor
from .plan import ConstantManagerFactory, ExperimentCell, ExperimentPlan
from .runner import BatchRunner, run_cell
from .store import CellResult, ResultStore
from .vectorized import (
    PopulationMember,
    VectorizationError,
    simulate_population,
)

__all__ = [
    "BatchRunner",
    "CellResult",
    "ConstantManagerFactory",
    "ExperimentCell",
    "ExperimentPlan",
    "PopulationMember",
    "ProcessPoolCellExecutor",
    "ResultStore",
    "SerialExecutor",
    "VectorizationError",
    "VectorizedExecutor",
    "run_cell",
    "simulate_population",
]
