"""Batched experiment runtime.

This package turns the paper's evaluation grid into data: an
:class:`~repro.runtime.plan.ExperimentPlan` describes the cells (benchmark ×
governor × manager × seed), a :class:`~repro.runtime.runner.BatchRunner`
executes them through a pluggable executor, and a
:class:`~repro.runtime.store.ResultStore` collects the per-cell
:class:`~repro.sim.results.SimulationResult` streams with their metadata.

Executors trade scheduling for the same deterministic results:

* :class:`~repro.runtime.executors.SerialExecutor` — simple in-process loop;
* :class:`~repro.runtime.executors.ProcessPoolCellExecutor` — cells fan out
  over a process pool (``repro-usta table1 --jobs 4``);
* :class:`~repro.runtime.executors.VectorizedExecutor` — every
  batch-eligible cell, whatever its workload trace, integrates in lockstep
  as one structure-of-arrays batch through
  :func:`~repro.runtime.vectorized.simulate_population_mixed`, turning N
  thermal solves per tick into one batched solve on the cached LU
  factorization (with live-prefix early exit for short traces and a
  columnar record path; ``plan_batches`` explains the partition).

For sweeps too large to hold in memory, the record path also runs
*streaming*: executors push each completed cell through the
:class:`~repro.runtime.stream.RecordSink` protocol into an append-only
sharded-JSONL :class:`~repro.runtime.streamstore.StreamingResultStore`
(crash-safe, resumable, bit-identical to the batch path), and
:mod:`repro.runtime.artifacts` caches trained predictor artifacts by content
key so repeated sweeps and pool workers stop retraining per process.

Quickstart::

    from repro.runtime import BatchRunner, ExperimentPlan

    plan = ExperimentPlan.from_product(
        benchmarks=("skype", "youtube"),
        managers={"baseline": None},
        duration_scale=0.1,
    )
    store = BatchRunner.for_jobs(None).run(plan)
    for row in store.summary_rows():
        print(row["cell_id"], row["max_skin_temp_c"])

    # or, bounded-memory with resume:
    from repro.runtime import StreamingResultStore

    disk = StreamingResultStore("out/")
    BatchRunner.for_jobs(None).run_stream(plan, disk, skip=disk.completed_cell_ids)
    disk.close()
"""

from .artifacts import ArtifactCache, configured_artifact_cache
from .executors import ProcessPoolCellExecutor, SerialExecutor, VectorizedExecutor
from .plan import (
    BatchPlan,
    ConstantManagerFactory,
    ExperimentCell,
    ExperimentPlan,
    batch_ineligibility,
    plan_batches,
)
from .runner import BatchRunner, run_cell, stream_cell
from .store import CellResult, ResultStore
from .stream import CollectorSink, RecordSink, TeeSink, push_cell_result
from .streamstore import StoreCorruptionError, StreamingResultStore
from .vectorized import (
    PopulationMember,
    VectorizationError,
    simulate_population,
    simulate_population_mixed,
)

__all__ = [
    "ArtifactCache",
    "BatchPlan",
    "BatchRunner",
    "CellResult",
    "CollectorSink",
    "ConstantManagerFactory",
    "ExperimentCell",
    "ExperimentPlan",
    "PopulationMember",
    "ProcessPoolCellExecutor",
    "RecordSink",
    "ResultStore",
    "SerialExecutor",
    "StoreCorruptionError",
    "StreamingResultStore",
    "TeeSink",
    "VectorizationError",
    "VectorizedExecutor",
    "batch_ineligibility",
    "configured_artifact_cache",
    "plan_batches",
    "push_cell_result",
    "run_cell",
    "simulate_population",
    "simulate_population_mixed",
    "stream_cell",
]
