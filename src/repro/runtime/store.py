"""Result storage for batched experiment runs.

A :class:`ResultStore` collects :class:`CellResult` entries as an executor
streams them back, preserving plan order, and offers the lookups the
analysis layer needs: by ``cell_id``, by metadata filter, and as flat summary
rows for tabulation/export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..sim.logger import SystemLogger
from ..sim.results import SimulationResult
from .plan import ExperimentCell

__all__ = ["CellResult", "ResultStore"]


@dataclass(frozen=True)
class CellResult:
    """The outcome of executing one experiment cell.

    Attributes:
        cell: the executed cell (with its metadata).
        result: the per-step simulation result.
        logger: the cell's system logger, when ``cell.log_period_s`` was set
            (this is how :func:`repro.core.pipeline.collect_training_data`
            gets its records back from pool workers).
        wall_time_s: wall-clock execution time of the cell.
    """

    cell: ExperimentCell
    result: SimulationResult
    logger: Optional[SystemLogger] = None
    wall_time_s: float = 0.0


class ResultStore:
    """Ordered, queryable collection of :class:`CellResult` entries."""

    def __init__(self) -> None:
        self._results: List[CellResult] = []
        self._by_id: Dict[str, CellResult] = {}

    # -- collection ------------------------------------------------------------

    def append(self, cell_result: CellResult) -> None:
        """Add one cell result (cell ids must stay unique)."""
        cell_id = cell_result.cell.cell_id
        if cell_id in self._by_id:
            raise ValueError(f"duplicate result for cell {cell_id!r}")
        self._results.append(cell_result)
        self._by_id[cell_id] = cell_result

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self._results)

    # -- lookup ----------------------------------------------------------------

    def get(self, cell_id: str) -> CellResult:
        """The result of the cell with the given id (KeyError when missing)."""
        return self._by_id[cell_id]

    def result_of(self, cell_id: str) -> SimulationResult:
        """Shorthand for ``store.get(cell_id).result``."""
        return self._by_id[cell_id].result

    def select(self, **filters: object) -> List[CellResult]:
        """All results whose cell metadata matches every given key/value."""
        return [
            entry
            for entry in self._results
            if all(entry.cell.metadata.get(key) == value for key, value in filters.items())
        ]

    def one(self, **filters: object) -> CellResult:
        """The single result matching the metadata filter (raises otherwise)."""
        matches = self.select(**filters)
        if len(matches) != 1:
            raise LookupError(f"expected exactly one result for {filters!r}, found {len(matches)}")
        return matches[0]

    # -- export ----------------------------------------------------------------

    @property
    def total_wall_time_s(self) -> float:
        """Summed wall-clock time of all executed cells."""
        return sum(entry.wall_time_s for entry in self._results)

    def summary_rows(self) -> List[Dict[str, object]]:
        """One flat dictionary per cell: id, metadata, and headline metrics."""
        rows: List[Dict[str, object]] = []
        for entry in self._results:
            row: Dict[str, object] = {"cell_id": entry.cell.cell_id}
            row.update(entry.cell.metadata)
            row.update(entry.result.summary())
            rows.append(row)
        return rows
