"""Result storage for batched experiment runs.

A :class:`ResultStore` collects :class:`CellResult` entries as an executor
streams them back, preserving plan order, and offers the lookups the
analysis layer needs: by ``cell_id``, by metadata filter, and as flat summary
rows for tabulation/export.

Stores also round-trip through JSON Lines files (:meth:`ResultStore.save` /
:meth:`ResultStore.load`): one line per cell, carrying the cell's identity
(id, benchmark, governor or policy spec, seed, metadata) and the full
:class:`~repro.sim.results.StepRecord` stream.  JSON serialises floats via
``repr``, so the records survive the trip bit-for-bit — the first step
toward out-of-core persistence for sweeps too large to keep in memory.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterator, List, Optional

from ..api.specs import AdapterSpec, PolicySpec
from ..sim.logger import SystemLogger
from ..sim.results import SimulationResult, StepRecord
from .plan import ExperimentCell

__all__ = ["CellResult", "ResultStore", "cell_to_jsonable", "record_to_jsonable"]

_STEP_RECORD_FIELDS = tuple(f.name for f in fields(StepRecord))


def cell_to_jsonable(cell: ExperimentCell) -> Dict[str, object]:
    """The cell-identity dictionary persisted with every saved cell result.

    Shared by :meth:`ResultStore.save` and the streaming store's incremental
    line writer, so batch-saved files and streamed shards serialise cells
    byte-for-byte identically.
    """
    if cell.policy is not None:
        # The cell's `governor` field is the ignored dataclass default
        # for policy cells; the effective governor lives in the spec.
        governor = cell.policy.governor.name
    elif isinstance(cell.governor, str):
        governor = cell.governor
    else:
        governor = getattr(cell.governor, "name", type(cell.governor).__name__)
    benchmark = cell.benchmark
    if benchmark is None and cell.trace is not None:
        benchmark = cell.trace.name
    return {
        "cell_id": cell.cell_id,
        "benchmark": benchmark,
        # Benchmark-named cells rebuild their workload faithfully from
        # (benchmark, seed, duration); explicit traces are not persisted, so
        # their cells load as descriptive-only.  A loaded detached-trace cell
        # must re-save as "trace" too, or save→load→save would silently mark
        # it re-executable.
        "workload": "trace" if (cell.trace is not None or cell.detached_trace) else "benchmark",
        "duration_s": cell.duration_s,
        "governor": governor,
        "policy": cell.policy.to_spec() if cell.policy is not None else None,
        "adapter": cell.adapter.to_spec() if cell.adapter is not None else None,
        "seed": cell.seed,
        "metadata": dict(cell.metadata),
    }


def record_to_jsonable(record: StepRecord) -> Dict[str, object]:
    """One step record as the plain dictionary persisted in result files."""
    return asdict(record)


@dataclass(frozen=True)
class CellResult:
    """The outcome of executing one experiment cell.

    Attributes:
        cell: the executed cell (with its metadata).
        result: the per-step simulation result.
        logger: the cell's system logger, when ``cell.log_period_s`` was set
            (this is how :func:`repro.core.pipeline.collect_training_data`
            gets its records back from pool workers).
        wall_time_s: wall-clock execution time of the cell.
    """

    cell: ExperimentCell
    result: SimulationResult
    logger: Optional[SystemLogger] = None
    wall_time_s: float = 0.0


class ResultStore:
    """Ordered, queryable collection of :class:`CellResult` entries."""

    def __init__(self) -> None:
        self._results: List[CellResult] = []
        self._by_id: Dict[str, CellResult] = {}

    # -- collection ------------------------------------------------------------

    def append(self, cell_result: CellResult) -> None:
        """Add one cell result (cell ids must stay unique)."""
        cell_id = cell_result.cell.cell_id
        if cell_id in self._by_id:
            raise ValueError(f"duplicate result for cell {cell_id!r}")
        self._results.append(cell_result)
        self._by_id[cell_id] = cell_result

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self._results)

    # -- lookup ----------------------------------------------------------------

    def get(self, cell_id: str) -> CellResult:
        """The result of the cell with the given id (KeyError when missing)."""
        return self._by_id[cell_id]

    def result_of(self, cell_id: str) -> SimulationResult:
        """Shorthand for ``store.get(cell_id).result``."""
        return self._by_id[cell_id].result

    def select(self, **filters: object) -> List[CellResult]:
        """All results whose cell metadata matches every given key/value."""
        return [
            entry
            for entry in self._results
            if all(entry.cell.metadata.get(key) == value for key, value in filters.items())
        ]

    def one(self, **filters: object) -> CellResult:
        """The single result matching the metadata filter (raises otherwise)."""
        matches = self.select(**filters)
        if len(matches) != 1:
            raise LookupError(f"expected exactly one result for {filters!r}, found {len(matches)}")
        return matches[0]

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> int:
        """Write the store as a JSON Lines file (one cell result per line).

        The cell's identity (id, benchmark, governor name or policy spec,
        seed, duration and metadata) and the full step-record stream are
        preserved exactly; workload traces, factories, platform constructors
        and attached loggers are not serialisable and are dropped.

        Returns:
            The number of cell results written.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for entry in self._results:
                fh.write(json.dumps(self._entry_to_jsonable(entry), separators=(",", ":")))
                fh.write("\n")
        return len(self._results)

    @classmethod
    def load(cls, path) -> "ResultStore":
        """Rebuild a store from a :meth:`save` file.

        Loaded cells are descriptive (benchmark name, governor name or policy
        spec, seed, metadata) — enough for every lookup, summary and analysis
        path.  Cells whose workload was rebuilt from a benchmark name remain
        re-executable; cells that carried an explicit trace come back with
        ``detached_trace=True`` and refuse to build a trace rather than
        silently replaying a different workload.
        """
        store = cls()
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                store.append(cls._entry_from_jsonable(json.loads(line)))
        return store

    @staticmethod
    def _entry_to_jsonable(entry: CellResult) -> Dict[str, object]:
        return {
            "cell": cell_to_jsonable(entry.cell),
            "result": {
                "workload_name": entry.result.workload_name,
                "governor_name": entry.result.governor_name,
                "dt_s": entry.result.dt_s,
                "records": [record_to_jsonable(record) for record in entry.result.records],
            },
            "wall_time_s": entry.wall_time_s,
        }

    @staticmethod
    def _entry_from_jsonable(data: Dict[str, object]) -> CellResult:
        cell_data = data["cell"]
        result_data = data["result"]
        policy_spec = cell_data.get("policy")
        adapter_spec = cell_data.get("adapter")
        cell = ExperimentCell(
            cell_id=cell_data["cell_id"],
            benchmark=cell_data.get("benchmark") or result_data["workload_name"],
            duration_s=cell_data.get("duration_s"),
            governor=cell_data.get("governor") or "ondemand",
            policy=PolicySpec.from_spec(policy_spec) if policy_spec is not None else None,
            adapter=AdapterSpec.from_spec(adapter_spec) if adapter_spec is not None else None,
            seed=cell_data.get("seed", 0),
            detached_trace=cell_data.get("workload", "trace") == "trace",
            metadata=cell_data.get("metadata", {}),
        )
        result = SimulationResult(
            workload_name=result_data["workload_name"],
            governor_name=result_data["governor_name"],
            dt_s=result_data["dt_s"],
        )
        for record in result_data["records"]:
            unknown = set(record) - set(_STEP_RECORD_FIELDS)
            if unknown:
                raise ValueError(f"unknown step-record field(s) {sorted(unknown)} in {cell.cell_id!r}")
            result.append(StepRecord(**record))
        return CellResult(cell=cell, result=result, wall_time_s=data.get("wall_time_s", 0.0))

    # -- export ----------------------------------------------------------------

    @property
    def total_wall_time_s(self) -> float:
        """Summed wall-clock time of all executed cells."""
        return sum(entry.wall_time_s for entry in self._results)

    def summary_rows(self) -> List[Dict[str, object]]:
        """One flat dictionary per cell: id, metadata, and headline metrics."""
        rows: List[Dict[str, object]] = []
        for entry in self._results:
            row: Dict[str, object] = {"cell_id": entry.cell.cell_id}
            row.update(entry.cell.metadata)
            row.update(entry.result.summary())
            rows.append(row)
        return rows
