"""Sharded, append-only JSONL result store with crash-safe resume.

A :class:`StreamingResultStore` is the on-disk counterpart of the in-memory
:class:`~repro.runtime.store.ResultStore` for sweeps that do not fit in RAM:
executors push each cell's records through the
:class:`~repro.runtime.stream.RecordSink` interface and the store appends one
JSON line per completed cell to the current shard file, rotating to a new
shard every ``max_cells_per_shard`` cells.  Lines are *byte-identical* to
what :meth:`ResultStore.save` writes (both build on the same serialisation
helpers), so a directory of shards is exactly a sharded save file.

Crash safety falls out of the write discipline: a cell's line is written
incrementally (header at ``begin_cell``, one record per ``emit``, the closing
``wall_time_s`` and newline at ``end_cell``), so a run killed mid-cell leaves
a final line that is truncated or unterminated.  Re-opening the directory
detects that tail, drops it, and leaves the cell out of
:attr:`completed_cell_ids` — ``sweep --resume`` then re-runs exactly the
missing cells.  Corruption anywhere *before* the final line is not a crash
artifact and raises :class:`StoreCorruptionError` instead of loading garbage.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from ..sim.results import StepRecord
from .store import CellResult, ResultStore, cell_to_jsonable, record_to_jsonable

__all__ = ["StoreCorruptionError", "StreamingResultStore"]

_SHARD_RE = re.compile(r"^shard-(\d{5})\.jsonl$")
_CELL_ID_RE = re.compile(r'"cell_id":\s*"([^"]*)"')


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}.jsonl"


class StoreCorruptionError(ValueError):
    """A shard is damaged somewhere other than its recoverable final line."""


def _dumps(obj: object) -> str:
    """Compact JSON, matching :meth:`ResultStore.save`'s separators."""
    return json.dumps(obj, separators=(",", ":"))


def cell_line_prefix(cell, workload_name: str, governor_name: str, dt_s: float) -> str:
    """Everything of a cell's JSONL line that precedes its first record.

    Writing the line as prefix + ","-joined records + suffix produces bytes
    identical to ``json.dumps(ResultStore._entry_to_jsonable(entry))`` with
    compact separators — the invariant that makes streamed shards, spill
    files and batch save files one interchangeable format.
    """
    return (
        '{"cell":'
        + _dumps(cell_to_jsonable(cell))
        + ',"result":{"workload_name":'
        + _dumps(workload_name)
        + ',"governor_name":'
        + _dumps(governor_name)
        + ',"dt_s":'
        + _dumps(dt_s)
        + ',"records":['
    )


def cell_line_suffix(wall_time_s: float) -> str:
    """The closing piece of a cell's JSONL line (without the newline)."""
    return ']},"wall_time_s":' + _dumps(wall_time_s) + "}"


class StreamingResultStore:
    """Append-only sharded JSONL store implementing the record-sink protocol.

    Opening a directory scans any existing shards, recovers a truncated tail
    left by a crash (see module docstring) and positions the writer to append
    after the last committed cell — so the same constructor serves fresh
    sweeps, resumed sweeps and read-only loading.

    Attributes:
        directory: the shard directory (created when missing).
        max_cells_per_shard: shard rotation threshold.
        recovered_tail: human-readable description of a dropped partial line
            (``None`` when the directory was clean).
    """

    def __init__(self, directory, max_cells_per_shard: int = 64):
        if max_cells_per_shard < 1:
            raise ValueError("max_cells_per_shard must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_cells_per_shard = max_cells_per_shard
        self.recovered_tail: Optional[str] = None
        self._completed: List[str] = []
        self._completed_set: set = set()
        self._fh = None
        self._open_cell_id: Optional[str] = None
        self._records_in_open_cell = 0
        self._scan()

    # -- opening / recovery -----------------------------------------------------

    def _shard_paths(self) -> List[Path]:
        paths = [p for p in self.directory.iterdir() if _SHARD_RE.match(p.name)]
        return sorted(paths)

    def _scan(self) -> None:
        shards = self._shard_paths()
        for shard_index, path in enumerate(shards):
            last_shard = shard_index == len(shards) - 1
            # One line (≈ one cell) at a time, with a single line of
            # lookahead so the final line is recognisable — the scan keeps
            # the store's bounded-memory promise even on huge shards.
            pending: Optional[tuple] = None
            offset = 0
            with open(path, "rb") as fh:
                for raw in fh:
                    if pending is not None:
                        self._register_line(*pending, path=path, at_tail=False)
                    pending = (offset, raw)
                    offset += len(raw)
            if pending is not None:
                line_offset, raw = pending
                cell_id = self._register_line(
                    line_offset, raw, path=path, at_tail=last_shard
                )
                if cell_id is None:
                    # Recoverable tail: truncate the crash artifact so the
                    # next append starts on a clean boundary.
                    with open(path, "r+b") as fh:
                        fh.truncate(line_offset)
        self._shard_index = max(len(shards) - 1, 0)
        self._cells_in_shard = 0
        if shards:
            with open(shards[-1], "r", encoding="utf-8") as fh:
                self._cells_in_shard = sum(1 for _ in fh)
            if self._cells_in_shard >= self.max_cells_per_shard:
                self._shard_index += 1
                self._cells_in_shard = 0

    def _register_line(
        self, offset: int, raw: bytes, path: Path, at_tail: bool
    ) -> Optional[str]:
        """Record one scanned line's cell, or return ``None`` for a dropped tail."""
        terminated = raw.endswith(b"\n")
        line = raw[:-1] if terminated else raw
        cell_id = self._parse_line(line, terminated, path, at_tail, offset)
        if cell_id is None:
            return None
        if cell_id in self._completed_set:
            raise StoreCorruptionError(
                f"duplicate cell {cell_id!r} across shards in {self.directory}"
            )
        self._completed.append(cell_id)
        self._completed_set.add(cell_id)
        return cell_id

    def _parse_line(
        self, line: bytes, terminated: bool, path: Path, at_tail: bool, offset: int
    ) -> Optional[str]:
        """Cell id of a committed line, or ``None`` for a recoverable tail."""
        problem = None
        if not terminated:
            problem = "unterminated"
        else:
            try:
                payload = json.loads(line)
                return payload["cell"]["cell_id"]
            except (ValueError, KeyError, TypeError):
                problem = "unparseable"
        if at_tail:
            match = _CELL_ID_RE.search(line.decode("utf-8", errors="replace"))
            hint = f" (cell {match.group(1)!r})" if match else ""
            self.recovered_tail = (
                f"dropped {problem} final line of {path.name}{hint}; "
                "the interrupted cell will re-run"
            )
            return None
        raise StoreCorruptionError(
            f"{path.name}: {problem} line at byte {offset} is not the store's "
            "final line — this is data corruption, not a crash artifact"
        )

    # -- resume bookkeeping -----------------------------------------------------

    @property
    def completed_cell_ids(self) -> frozenset:
        """Ids of every committed cell (what ``sweep --resume`` skips)."""
        return frozenset(self._completed_set)

    def __len__(self) -> int:
        return len(self._completed)

    # -- the record-sink interface ----------------------------------------------

    def _writer(self):
        if self._fh is None:
            path = self.directory / _shard_name(self._shard_index)
            self._fh = open(path, "a", encoding="utf-8")
        return self._fh

    def begin_cell(self, cell, workload_name: str, governor_name: str, dt_s: float) -> None:
        if self._open_cell_id is not None:
            raise RuntimeError(
                f"cell {self._open_cell_id!r} is still open; end_cell it first"
            )
        if cell.cell_id in self._completed_set:
            raise ValueError(f"duplicate result for cell {cell.cell_id!r}")
        self._open_cell_id = cell.cell_id
        self._records_in_open_cell = 0
        self._writer().write(cell_line_prefix(cell, workload_name, governor_name, dt_s))

    def emit(self, record: StepRecord) -> None:
        if self._open_cell_id is None:
            raise RuntimeError("emit() without an open cell")
        fh = self._writer()
        if self._records_in_open_cell:
            fh.write(",")
        fh.write(_dumps(record_to_jsonable(record)))
        self._records_in_open_cell += 1

    def end_cell(self, wall_time_s: float = 0.0, logger=None) -> None:
        if self._open_cell_id is None:
            raise RuntimeError("end_cell() without an open cell")
        fh = self._writer()
        fh.write(cell_line_suffix(wall_time_s) + "\n")
        fh.flush()
        self._completed.append(self._open_cell_id)
        self._completed_set.add(self._open_cell_id)
        self._open_cell_id = None
        self._cells_in_shard += 1
        if self._cells_in_shard >= self.max_cells_per_shard:
            fh.close()
            self._fh = None
            self._shard_index += 1
            self._cells_in_shard = 0

    def append(self, entry: CellResult) -> None:
        """Append one already-materialised cell result (whole-cell form)."""
        from .stream import push_cell_result

        push_cell_result(self, entry)

    # -- reading ----------------------------------------------------------------

    def iter_results(self) -> Iterator[CellResult]:
        """Yield each committed cell result, one cell in memory at a time.

        This is the streaming loader the analysis aggregators consume: only
        the cell currently being processed is materialised, however many
        shards the sweep produced.
        """
        if self._open_cell_id is not None:
            raise RuntimeError("cannot read while a cell is open for writing")
        self.flush()
        for path in self._shard_paths():
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    yield ResultStore._entry_from_jsonable(json.loads(line))

    def load(self) -> ResultStore:
        """Materialise the whole directory as an in-memory :class:`ResultStore`."""
        store = ResultStore()
        for entry in self.iter_results():
            store.append(entry)
        return store

    def summary_rows(self) -> List[Dict[str, object]]:
        """One flat summary row per committed cell, computed in a single pass."""
        return [
            {
                "cell_id": entry.cell.cell_id,
                **entry.cell.metadata,
                **entry.result.summary(),
            }
            for entry in self.iter_results()
        ]

    # -- lifecycle ---------------------------------------------------------------

    def flush(self) -> None:
        """Flush the current shard to disk."""
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Close the current shard file (the store can be re-opened later)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "StreamingResultStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingResultStore({str(self.directory)!r}, "
            f"cells={len(self._completed)}, shards={len(self._shard_paths())})"
        )
