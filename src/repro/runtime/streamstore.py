"""Sharded, append-only JSONL result store with crash-safe, indexed resume.

A :class:`StreamingResultStore` is the on-disk counterpart of the in-memory
:class:`~repro.runtime.store.ResultStore` for sweeps that do not fit in RAM:
executors push each cell's records through the
:class:`~repro.runtime.stream.RecordSink` interface and the store appends one
JSON line per completed cell to the current shard file, rotating to a new
shard every ``max_cells_per_shard`` cells.  Lines are *byte-identical* to
what :meth:`ResultStore.save` writes (both build on the same serialisation
helpers), so a directory of shards is exactly a sharded save file.

Crash safety falls out of the write discipline: a cell's line is written
incrementally (header at ``begin_cell``, one record per ``emit``, the closing
``wall_time_s`` and newline at ``end_cell``), so a run killed mid-cell leaves
a final line that is truncated or unterminated.  Re-opening the directory
detects that tail, drops it, and leaves the cell out of
:attr:`completed_cell_ids` — ``sweep --resume`` then re-runs exactly the
missing cells.

Resume is O(shards), not O(lines): every committed cell also appends one
``(cell_id, shard, offset, length)`` line to an ``index.jsonl`` sidecar
*after* its shard line is flushed.  Re-opening a directory loads the sidecar,
checks that the committed lines tile each shard exactly (byte sizes only —
no shard line is read), and verifies just the final shard's tail bytes — the
only place a crash artifact can live.  The sidecar is a pure accelerator: if
it is missing (a legacy directory) or inconsistent in any way with the shard
files, the store silently falls back to the full line-by-line scan and then
rewrites the sidecar.  On the full-scan path, corruption anywhere *before*
the final line raises :class:`StoreCorruptionError` instead of loading
garbage; on the indexed path, in-place damage that preserves byte sizes is
detected when the damaged line is actually read (:meth:`iter_results`).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from ..sim.results import StepRecord
from .store import CellResult, ResultStore, cell_to_jsonable, record_to_jsonable

__all__ = ["StoreCorruptionError", "StreamingResultStore"]

_SHARD_RE = re.compile(r"^shard-(\d{5})\.jsonl$")
_CELL_ID_RE = re.compile(r'"cell_id":\s*"([^"]*)"')

#: Name of the resume-index sidecar inside a store directory.
INDEX_NAME = "index.jsonl"


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}.jsonl"


class StoreCorruptionError(ValueError):
    """A shard is damaged somewhere other than its recoverable final line."""


def _dumps(obj: object) -> str:
    """Compact JSON, matching :meth:`ResultStore.save`'s separators."""
    return json.dumps(obj, separators=(",", ":"))


def cell_line_prefix(cell, workload_name: str, governor_name: str, dt_s: float) -> str:
    """Everything of a cell's JSONL line that precedes its first record.

    Writing the line as prefix + ","-joined records + suffix produces bytes
    identical to ``json.dumps(ResultStore._entry_to_jsonable(entry))`` with
    compact separators — the invariant that makes streamed shards, spill
    files and batch save files one interchangeable format.
    """
    return (
        '{"cell":'
        + _dumps(cell_to_jsonable(cell))
        + ',"result":{"workload_name":'
        + _dumps(workload_name)
        + ',"governor_name":'
        + _dumps(governor_name)
        + ',"dt_s":'
        + _dumps(dt_s)
        + ',"records":['
    )


def cell_line_suffix(wall_time_s: float) -> str:
    """The closing piece of a cell's JSONL line (without the newline)."""
    return ']},"wall_time_s":' + _dumps(wall_time_s) + "}"


class StreamingResultStore:
    """Append-only sharded JSONL store implementing the record-sink protocol.

    Opening a directory restores the committed-cell set — via the
    ``index.jsonl`` sidecar when it is present and consistent (O(shards):
    only byte sizes and the final shard's tail are checked), via a full
    line-by-line scan otherwise — recovers a truncated tail left by a crash
    (see module docstring) and positions the writer to append after the last
    committed cell.  The same constructor therefore serves fresh sweeps,
    resumed sweeps and read-only loading.

    Attributes:
        directory: the shard directory (created when missing).
        max_cells_per_shard: shard rotation threshold.
        recovered_tail: human-readable description of a dropped partial line
            (``None`` when the directory was clean).
        resumed_via_index: True when the sidecar satisfied this open and no
            shard line had to be scanned.
    """

    def __init__(self, directory, max_cells_per_shard: int = 64):
        if max_cells_per_shard < 1:
            raise ValueError("max_cells_per_shard must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_cells_per_shard = max_cells_per_shard
        self.recovered_tail: Optional[str] = None
        self.resumed_via_index = False
        self._completed: List[str] = []
        self._completed_set: set = set()
        self._fh = None
        self._index_fh = None
        self._open_cell_id: Optional[str] = None
        self._records_in_open_cell = 0
        self._cell_offset = 0
        self._shard_bytes = 0
        self._scan()

    # -- opening / recovery -----------------------------------------------------

    def _shard_paths(self) -> List[Path]:
        paths = [p for p in self.directory.iterdir() if _SHARD_RE.match(p.name)]
        return sorted(paths)

    @property
    def index_path(self) -> Path:
        """Location of the resume-index sidecar."""
        return self.directory / INDEX_NAME

    def _scan(self) -> None:
        shards = self._shard_paths()
        entries = self._read_index_entries()
        if entries is not None and self._apply_index(entries, shards):
            self.resumed_via_index = True
            return
        self._full_scan(shards)

    # -- indexed fast path ------------------------------------------------------

    def _read_index_entries(self) -> Optional[List[Dict]]:
        """Parse the sidecar, or return ``None`` when it is missing/unusable.

        A trailing unterminated line (a crash between the shard flush and the
        index flush) is dropped — the cell it described is then re-discovered
        by the final-shard tail check, which also repairs the sidecar.
        """
        try:
            data = self.index_path.read_bytes()
        except OSError:
            return None
        lines = data.split(b"\n")
        if lines and lines[-1]:
            # Unterminated tail (crash mid index write): stale by at most one
            # cell.  Truncate the partial bytes off the file as well — later
            # appends (the tail self-heal, the next end_cell) reopen the
            # sidecar in append mode and would otherwise fuse onto them,
            # corrupting the line.
            try:
                with open(self.index_path, "r+b") as fh:
                    fh.truncate(len(data) - len(lines[-1]))
            except OSError:
                return None
            lines = lines[:-1]
        entries: List[Dict] = []
        for line in lines:
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                return None
            if not (
                isinstance(entry, dict)
                and isinstance(entry.get("cell_id"), str)
                and isinstance(entry.get("shard"), str)
                and isinstance(entry.get("offset"), int)
                and isinstance(entry.get("length"), int)
                and entry["length"] > 0
            ):
                return None
            entries.append(entry)
        return entries

    def _apply_index(self, entries: List[Dict], shards: List[Path]) -> bool:
        """Restore state from the sidecar; False falls back to the full scan.

        The sidecar is trusted only when the committed lines it describes
        tile every shard exactly: contiguous offsets from zero, monotonically
        increasing shard names, every named shard present, every non-final
        shard's file size equal to its indexed end.  Anything else — however
        it came about — means the sidecar is stale and the full scan decides.
        """
        disk = {path.name: path for path in shards}
        if not entries:
            if shards:
                return False  # shards the index knows nothing about
            self._position_writer(None, 0, 0)
            return True

        shard_end: Dict[str, int] = {}
        order: List[str] = []
        seen = set()
        for entry in entries:
            name = entry["shard"]
            if name not in disk:
                return False
            if entry["cell_id"] in seen:
                return False
            seen.add(entry["cell_id"])
            if order and name < order[-1]:
                return False
            if name not in shard_end:
                order.append(name)
                shard_end[name] = 0
            if entry["offset"] != shard_end[name]:
                return False
            shard_end[name] = entry["offset"] + entry["length"]

        final_name = order[-1]
        extra = sorted(set(disk) - set(shard_end))
        if extra:
            # The only legitimate unindexed shard is the one a crash opened
            # right after a rotation, before any cell committed to it.
            match = _SHARD_RE.match(extra[0])
            if len(extra) > 1 or match is None:
                return False
            if int(match.group(1)) != int(_SHARD_RE.match(final_name).group(1)) + 1:
                return False
            if disk[final_name].stat().st_size != shard_end[final_name]:
                return False
            tail_name, tail_expected = extra[0], 0
        else:
            tail_name, tail_expected = final_name, shard_end[final_name]
        for name, end in shard_end.items():
            if name != tail_name and disk[name].stat().st_size != end:
                return False
        tail_path = disk[tail_name]
        if tail_path.stat().st_size < tail_expected:
            return False

        healed = self._verify_tail(tail_path, tail_expected, seen)
        if healed is False:
            return False

        for entry in entries:
            self._completed.append(entry["cell_id"])
            self._completed_set.add(entry["cell_id"])
        cells_in_tail = sum(1 for entry in entries if entry["shard"] == tail_name)
        tail_bytes = tail_expected
        if isinstance(healed, dict):
            # A committed cell the sidecar missed (crash between the two
            # flushes): register it and repair the sidecar.
            self._completed.append(healed["cell_id"])
            self._completed_set.add(healed["cell_id"])
            self._append_index_entry(healed)
            cells_in_tail += 1
            tail_bytes = healed["offset"] + healed["length"]
        self._position_writer(tail_name, cells_in_tail, tail_bytes)
        return True

    def _verify_tail(self, path: Path, expected_end: int, seen: set):
        """Check the final shard's bytes past the indexed end.

        Returns ``None`` for a clean tail, an index-entry dict for a
        committed-but-unindexed line (self-heal), ``False`` when the sidecar
        is too stale to trust; a recoverable crash artifact is dropped in
        place (truncate + :attr:`recovered_tail`), also returning ``None``.
        """
        with open(path, "rb") as fh:
            fh.seek(expected_end)
            data = fh.read()
        if not data:
            return None
        newlines = data.count(b"\n")
        if newlines > 1 or (newlines == 1 and not data.endswith(b"\n")):
            return False  # more than one unindexed line: beyond a single crash
        if data.endswith(b"\n"):
            try:
                payload = json.loads(data[:-1])
                cell_id = payload["cell"]["cell_id"]
            except (ValueError, KeyError, TypeError):
                self._drop_tail(path, expected_end, data, "unparseable")
                return None
            if cell_id in seen:
                return False
            return {
                "cell_id": cell_id,
                "shard": path.name,
                "offset": expected_end,
                "length": len(data),
            }
        self._drop_tail(path, expected_end, data, "unterminated")
        return None

    def _drop_tail(self, path: Path, offset: int, data: bytes, problem: str) -> None:
        """Truncate a crash artifact off the final shard and note the recovery."""
        match = _CELL_ID_RE.search(data.decode("utf-8", errors="replace"))
        hint = f" (cell {match.group(1)!r})" if match else ""
        self.recovered_tail = (
            f"dropped {problem} final line of {path.name}{hint}; "
            "the interrupted cell will re-run"
        )
        with open(path, "r+b") as fh:
            fh.truncate(offset)

    def _position_writer(
        self, tail_name: Optional[str], cells_in_tail: int, tail_bytes: int
    ) -> None:
        """Point the appender at the shard the next cell should land in."""
        if tail_name is None:
            self._shard_index = 0
            self._cells_in_shard = 0
            self._shard_bytes = 0
            return
        self._shard_index = int(_SHARD_RE.match(tail_name).group(1))
        self._cells_in_shard = cells_in_tail
        self._shard_bytes = tail_bytes
        if self._cells_in_shard >= self.max_cells_per_shard:
            self._shard_index += 1
            self._cells_in_shard = 0
            self._shard_bytes = 0

    # -- full-scan fallback -----------------------------------------------------

    def _full_scan(self, shards: List[Path]) -> None:
        """Line-by-line scan of every shard; rebuilds the sidecar afterwards."""
        entries: List[Dict] = []
        for shard_index, path in enumerate(shards):
            last_shard = shard_index == len(shards) - 1
            # One line (≈ one cell) at a time, with a single line of
            # lookahead so the final line is recognisable — the scan keeps
            # the store's bounded-memory promise even on huge shards.
            pending: Optional[tuple] = None
            offset = 0
            with open(path, "rb") as fh:
                for raw in fh:
                    if pending is not None:
                        entries.append(
                            self._register_line(*pending, path=path, at_tail=False)
                        )
                    pending = (offset, raw)
                    offset += len(raw)
            if pending is not None:
                line_offset, raw = pending
                entry = self._register_line(line_offset, raw, path=path, at_tail=last_shard)
                if entry is None:
                    # Recoverable tail: truncate the crash artifact so the
                    # next append starts on a clean boundary.
                    with open(path, "r+b") as fh:
                        fh.truncate(line_offset)
                else:
                    entries.append(entry)
        self._shard_index = max(len(shards) - 1, 0)
        self._cells_in_shard = 0
        self._shard_bytes = 0
        if shards:
            last = shards[-1]
            self._cells_in_shard = sum(
                1 for entry in entries if entry["shard"] == last.name
            )
            self._shard_bytes = last.stat().st_size
            if self._cells_in_shard >= self.max_cells_per_shard:
                self._shard_index += 1
                self._cells_in_shard = 0
                self._shard_bytes = 0
        self._rewrite_index(entries)

    def _register_line(
        self, offset: int, raw: bytes, path: Path, at_tail: bool
    ) -> Optional[Dict]:
        """Record one scanned line's cell, or return ``None`` for a dropped tail."""
        terminated = raw.endswith(b"\n")
        line = raw[:-1] if terminated else raw
        cell_id = self._parse_line(line, terminated, path, at_tail, offset)
        if cell_id is None:
            return None
        if cell_id in self._completed_set:
            raise StoreCorruptionError(
                f"duplicate cell {cell_id!r} across shards in {self.directory}"
            )
        self._completed.append(cell_id)
        self._completed_set.add(cell_id)
        return {
            "cell_id": cell_id,
            "shard": path.name,
            "offset": offset,
            "length": len(raw),
        }

    def _parse_line(
        self, line: bytes, terminated: bool, path: Path, at_tail: bool, offset: int
    ) -> Optional[str]:
        """Cell id of a committed line, or ``None`` for a recoverable tail."""
        problem = None
        if not terminated:
            problem = "unterminated"
        else:
            try:
                payload = json.loads(line)
                return payload["cell"]["cell_id"]
            except (ValueError, KeyError, TypeError):
                problem = "unparseable"
        if at_tail:
            match = _CELL_ID_RE.search(line.decode("utf-8", errors="replace"))
            hint = f" (cell {match.group(1)!r})" if match else ""
            self.recovered_tail = (
                f"dropped {problem} final line of {path.name}{hint}; "
                "the interrupted cell will re-run"
            )
            return None
        raise StoreCorruptionError(
            f"{path.name}: {problem} line at byte {offset} is not the store's "
            "final line — this is data corruption, not a crash artifact"
        )

    # -- the index sidecar writer ------------------------------------------------

    def _append_index_entry(self, entry: Dict) -> None:
        if self._index_fh is None:
            self._index_fh = open(self.index_path, "a", encoding="utf-8")
        self._index_fh.write(_dumps(entry) + "\n")
        self._index_fh.flush()

    def _rewrite_index(self, entries: List[Dict]) -> None:
        """Atomically replace the sidecar (after a full scan made it current)."""
        if self._index_fh is not None:
            self._index_fh.close()
            self._index_fh = None
        tmp = self.index_path.with_suffix(".jsonl.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                for entry in entries:
                    fh.write(_dumps(entry) + "\n")
            os.replace(tmp, self.index_path)
        except OSError:
            # A read-only directory can still be loaded; it just keeps
            # paying the full scan.
            tmp.unlink(missing_ok=True)

    # -- resume bookkeeping -----------------------------------------------------

    @property
    def completed_cell_ids(self) -> frozenset:
        """Ids of every committed cell (what ``sweep --resume`` skips)."""
        return frozenset(self._completed_set)

    def __len__(self) -> int:
        return len(self._completed)

    # -- the record-sink interface ----------------------------------------------

    def _writer(self):
        if self._fh is None:
            path = self.directory / _shard_name(self._shard_index)
            self._fh = open(path, "a", encoding="utf-8")
        return self._fh

    def _write(self, text: str) -> None:
        # Shard lines are pure ASCII (json.dumps escapes by default), so the
        # character count *is* the byte count the index records.
        self._writer().write(text)
        self._shard_bytes += len(text)

    def begin_cell(self, cell, workload_name: str, governor_name: str, dt_s: float) -> None:
        if self._open_cell_id is not None:
            raise RuntimeError(
                f"cell {self._open_cell_id!r} is still open; end_cell it first"
            )
        if cell.cell_id in self._completed_set:
            raise ValueError(f"duplicate result for cell {cell.cell_id!r}")
        self._open_cell_id = cell.cell_id
        self._records_in_open_cell = 0
        self._cell_offset = self._shard_bytes
        self._write(cell_line_prefix(cell, workload_name, governor_name, dt_s))

    def emit(self, record: StepRecord) -> None:
        if self._open_cell_id is None:
            raise RuntimeError("emit() without an open cell")
        if self._records_in_open_cell:
            self._write(",")
        self._write(_dumps(record_to_jsonable(record)))
        self._records_in_open_cell += 1

    def emit_serialized(self, fragment: str, records: int) -> None:
        """Append ``records`` pre-serialised records in one write.

        ``fragment`` must be exactly what :meth:`emit` would have written for
        those records minus the leading comma: ``records`` compact-JSON
        record objects joined by ``","``.  The windowed streaming path uses
        this to forward spooled record lines verbatim — the shard bytes are
        identical to per-record :meth:`emit` calls.
        """
        if self._open_cell_id is None:
            raise RuntimeError("emit_serialized() without an open cell")
        if records <= 0:
            return
        if self._records_in_open_cell:
            self._write(",")
        self._write(fragment)
        self._records_in_open_cell += records

    def end_cell(self, wall_time_s: float = 0.0, logger=None) -> None:
        if self._open_cell_id is None:
            raise RuntimeError("end_cell() without an open cell")
        self._write(cell_line_suffix(wall_time_s) + "\n")
        self._fh.flush()
        # The index entry follows the flushed shard line; a crash between the
        # two flushes is healed by the tail check on the next open.
        self._append_index_entry(
            {
                "cell_id": self._open_cell_id,
                "shard": _shard_name(self._shard_index),
                "offset": self._cell_offset,
                "length": self._shard_bytes - self._cell_offset,
            }
        )
        self._completed.append(self._open_cell_id)
        self._completed_set.add(self._open_cell_id)
        self._open_cell_id = None
        self._cells_in_shard += 1
        if self._cells_in_shard >= self.max_cells_per_shard:
            self._fh.close()
            self._fh = None
            self._shard_index += 1
            self._cells_in_shard = 0
            self._shard_bytes = 0

    def append(self, entry: CellResult) -> None:
        """Append one already-materialised cell result (whole-cell form)."""
        from .stream import push_cell_result

        push_cell_result(self, entry)

    # -- reading ----------------------------------------------------------------

    def iter_results(self) -> Iterator[CellResult]:
        """Yield each committed cell result, one cell in memory at a time.

        This is the streaming loader the analysis aggregators consume: only
        the cell currently being processed is materialised, however many
        shards the sweep produced.  In-place shard damage that survived an
        indexed open (byte sizes unchanged) is caught here.
        """
        if self._open_cell_id is not None:
            raise RuntimeError("cannot read while a cell is open for writing")
        self.flush()
        for path in self._shard_paths():
            with open(path, "r", encoding="utf-8") as fh:
                for number, line in enumerate(fh):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except ValueError:
                        raise StoreCorruptionError(
                            f"{path.name}: unparseable line {number} — shard "
                            "damaged in place (detected at read time)"
                        ) from None
                    yield ResultStore._entry_from_jsonable(payload)

    def load(self) -> ResultStore:
        """Materialise the whole directory as an in-memory :class:`ResultStore`."""
        store = ResultStore()
        for entry in self.iter_results():
            store.append(entry)
        return store

    def summary_rows(self) -> List[Dict[str, object]]:
        """One flat summary row per committed cell, computed in a single pass."""
        return [
            {
                "cell_id": entry.cell.cell_id,
                **entry.cell.metadata,
                **entry.result.summary(),
            }
            for entry in self.iter_results()
        ]

    # -- lifecycle ---------------------------------------------------------------

    def flush(self) -> None:
        """Flush the current shard (and sidecar) to disk."""
        if self._fh is not None:
            self._fh.flush()
        if self._index_fh is not None:
            self._index_fh.flush()

    def close(self) -> None:
        """Close the open files (the store can be re-opened later)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._index_fh is not None:
            self._index_fh.close()
            self._index_fh = None

    def __enter__(self) -> "StreamingResultStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingResultStore({str(self.directory)!r}, "
            f"cells={len(self._completed)}, shards={len(self._shard_paths())})"
        )
