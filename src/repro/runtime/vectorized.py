"""Vectorized population simulation — heterogeneous structure-of-arrays batching.

The paper's sweeps replay workload traces against many device instances that
differ in seed, governor configuration, USTA comfort limit — and, in any
realistic evaluation grid, in the *trace itself*.  Run serially, each instance
pays the full per-step Python cost; run here, the N instances march through
their traces in lockstep and the expensive parts of the device step — the
implicit thermal solve, the CPU window, the power model, the sensor models —
are evaluated once per tick across the whole population with numpy.

:func:`simulate_population_mixed` is the general engine: every member brings
its own trace (materialised up front into :class:`~repro.workloads.trace.
TraceArrays` columns and stacked into padded step-major ``(n_steps,
n_members)`` matrices, so each tick reads one contiguous row across the live
members), members whose traces end early drop out of the live prefix instead
of forcing the batch to its longest member, and per-tick hand-contact state is
allowed to differ across members — the thermal solve partitions the live set
between two canonical cached-LU factorizations (touching / not touching).
:func:`simulate_population` is the same-trace special case, kept as the
historical entry point.

Per-step record data is staged in a :class:`~repro.sim.results.
ColumnarRecordBuffer` (one numpy column per :class:`StepRecord` field);
records are only materialised per member at the end, so the hot loop
allocates ~zero Python objects per member-step.

Long traces are processed in fixed-size step **windows** (an explicit
``window_steps``, or sized from a staging byte budget via
``max_window_bytes`` and :func:`resolve_window_steps`): one set of
window-sized staging buffers — the seven trace columns, the five derived
power matrices, the pre-drawn sensor noise (:class:`_WindowStage`) — is
refilled per window instead of materialising O(trace) matrices, while every
piece of cross-step state (node temperatures, the cached LU factorizations,
governor/manager objects, :class:`_PolicyPlane` arrays, the live-prefix
ordering, battery SoC, CPU backlog) carries across window boundaries
untouched — so windowed runs are bit-identical to unwindowed ones and to the
scalar engine.  A ``window_drain`` additionally flushes each live member's
record rows out of a window-sized record buffer at every window boundary,
bounding the engine's live footprint by one window however long the traces
run; without one, only the record buffer stays O(trace).

Bit-exactness is a hard requirement (the batched runtime must be a drop-in
replacement for N sequential :meth:`Simulator.run` calls), which dictates a
few implementation choices:

* the thermal solve reuses cached LU factorizations but back-substitutes per
  column (`exact=True`), because blocked multi-RHS LAPACK calls differ from
  the scalar path in the last ulp;
* hand-contact toggling must round-trip bitwise on the conductance matrices
  (verified up front), so the two canonical factorizations reproduce exactly
  the matrices a scalar run re-factors after each toggle;
* CPU leakage uses ``math.exp`` per instance (numpy's vectorized ``exp`` is
  not bit-identical to libm);
* sensor noise is pre-drawn per (instance, sensor) in one block from the same
  seeded generators the scalar path uses — a block draw consumes the
  generator stream exactly like repeated scalar draws;
* every elementwise expression mirrors the operation order of the scalar
  model code, because float addition and multiplication are not associative.

Governors and custom thermal managers keep their (cheap) per-instance Python
implementations, so any :class:`~repro.governors.base.Governor` subclass or
:class:`~repro.sim.engine.ThermalManager` works unchanged; homogeneous stock
ondemand populations additionally take a fully vectorized governor path, and
stock USTA-family managers (bare :class:`~repro.core.usta.USTAController` or
:class:`~repro.users.adaptation.AdaptiveComfortManager` around one, with a
stock adapter/feedback model) take a vectorized *policy plane*: prediction-due
masks, one batched predictor call per tick over the due rows, array-wide cap
computation and grouped comfort-adapter updates, with controller state held in
arrays and written back to the objects only at the batch boundary
(:class:`_PolicyPlane`; eligibility via
:func:`manager_vectorization_ineligibility`).
"""

from __future__ import annotations

import copy
import math
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.policy import ThrottlePolicy
from ..core.predictor import RuntimePredictor
from ..core.usta import USTAController
from ..device.platform import DevicePlatform
from ..governors.base import Governor, GovernorObservation
from ..governors.ondemand import OndemandGovernor
from ..ml.linear import LinearRegression
from ..sim.engine import ThermalManager
from ..sim.logger import SystemLogger
from ..sim.results import ColumnarRecordBuffer, SimulationResult
from ..thermal.ambient import HandContact
from ..thermal.solver import ThermalSolver
from ..users.adaptation import (
    AdaptiveComfortManager,
    FeedbackStep,
    FixedLimit,
    QuantileTracker,
    UserFeedbackModel,
)
from ..workloads.trace import WorkloadTrace
from .plane_kernels import (
    ADAPTER_FIXED as _ADAPTER_FIXED,
    ADAPTER_NONE as _ADAPTER_NONE,
    ADAPTER_QUANTILE as _ADAPTER_QUANTILE,
    ADAPTER_STEP as _ADAPTER_STEP,
    AdapterArrays,
    NO_CAP as _NO_CAP,
    NO_CAP_64 as _NO_CAP_64,
    caps_from_margins,
    columnwise_linear_form as _columnwise_linear_form,
    compile_policy_steps,
    linear_kernel as _linear_kernel,
    manager_vectorization_ineligibility,
    predictor_fast_kernel,
)

__all__ = [
    "DEFAULT_MAX_WINDOW_BYTES",
    "PopulationMember",
    "VectorizationError",
    "describe_window_plan",
    "manager_vectorization_ineligibility",
    "resolve_window_steps",
    "simulate_population",
    "simulate_population_mixed",
    "window_bytes_per_step",
]


class VectorizationError(RuntimeError):
    """The member set cannot be integrated as one population.

    Raised during validation, after the members have been reset but before
    any trace step has executed, so callers can safely fall back to
    sequential execution (which resets again).
    """


@dataclass
class PopulationMember:
    """One device instance of a batched population.

    Attributes:
        platform: the member's simulated handset (provides seeded sensors,
            initial state and the shared hardware configuration).
        governor: the member's DVFS policy (exclusive to this member).
        thermal_manager: optional USTA-style manager (exclusive to this member).
        logger: optional system logger filled during the run.
        initial_temps: optional initial *internal* node temperatures (°C).
    """

    platform: DevicePlatform
    governor: Governor
    thermal_manager: Optional[ThermalManager] = None
    logger: Optional[SystemLogger] = None
    initial_temps: Optional[Mapping[str, float]] = None

    def governor_label(self) -> str:
        """Same label :meth:`SimulationKernel.governor_label` produces."""
        label = self.governor.name
        if self.thermal_manager is not None:
            manager_name = getattr(
                self.thermal_manager, "name", type(self.thermal_manager).__name__
            )
            label = f"{manager_name}+{label}"
        return label


def _cpu_config(platform: DevicePlatform) -> Tuple:
    table = platform.freq_table
    return (
        table.frequencies_khz,
        tuple(table.voltage_at(level) for level in range(len(table))),
        platform.cpu.carry_over,
        platform.cpu.max_backlog,
    )


def _sensor_config(platform: DevicePlatform) -> Tuple:
    return tuple(
        (s.name, s.node, s.noise_std_c, s.quantization_c, s.offset_c)
        for s in platform.sensors.sensors.values()
    )


def _validate_members(members: Sequence[PopulationMember]) -> None:
    """Check that all members share one hardware configuration.

    The population shares the canonical thermal factorizations and a single
    set of per-level power constants, so everything except seeds, traces,
    governors, managers and initial internal temperatures must be identical.
    Feedback models, adapters and other *per-member state* inside the
    managers are deliberately not compared — seeds and learned limits are
    state, not structure, and managers run per member anyway.
    """
    if not members:
        raise VectorizationError("a population needs at least one member")
    template = members[0].platform
    net = template.network
    if template.solver.method != "implicit":
        raise VectorizationError("all members must use the implicit solver")
    for member in members[1:]:
        p = member.platform
        if p.solver.method != "implicit":
            raise VectorizationError("all members must use the implicit solver")
        if not (
            np.array_equal(p.network.capacitances, net.capacitances)
            and np.array_equal(p.network.conductance_matrix, net.conductance_matrix)
            and np.array_equal(p.network.boundary_coupling, net.boundary_coupling)
            and p.network.internal_names == net.internal_names
            and p.network.boundary_names == net.boundary_names
        ):
            raise VectorizationError("members have different thermal networks")
        if not np.array_equal(
            p.network.boundary_temperatures_vector, net.boundary_temperatures_vector
        ):
            raise VectorizationError(
                "members have different boundary temperatures (ambient/hand)"
            )
        if p.power_model != template.power_model:
            raise VectorizationError("members have different power models")
        if p.hand != template.hand:
            raise VectorizationError("members have different hand-contact models")
        if p.battery != template.battery:
            raise VectorizationError("members have different battery models")
        if _cpu_config(p) != _cpu_config(template):
            raise VectorizationError("members have different CPU/frequency tables")
        if _sensor_config(p) != _sensor_config(template):
            raise VectorizationError("members have different sensor configurations")
    internal = set(template.network.internal_names)
    for sensor in template.sensors.sensors.values():
        if sensor.node not in internal:
            raise VectorizationError(
                f"sensor {sensor.name!r} observes non-internal node {sensor.node!r}"
            )
    seen_governors: Dict[int, int] = {}
    seen_managers: Dict[int, int] = {}
    for member in members:
        if id(member.governor) in seen_governors:
            raise VectorizationError("two members share one governor instance")
        seen_governors[id(member.governor)] = 1
        if member.thermal_manager is not None:
            if id(member.thermal_manager) in seen_managers:
                raise VectorizationError("two members share one thermal manager instance")
            seen_managers[id(member.thermal_manager)] = 1
        if member.initial_temps:
            boundary = set(member.platform.network.boundary_names)
            if any(name in boundary for name in member.initial_temps):
                raise VectorizationError(
                    "per-member boundary temperatures break the shared factorization"
                )


#: Hand-state solver pairs memoised by network/hand content.  A batch run
#: pays two network deep-copies plus the toggle round-trip probe otherwise;
#: platforms built from one hardware config hash to the same key, so repeated
#: sweeps (and the per-baseline reruns inside the benchmarks) reuse the
#: factorizations.  The cached solvers' networks are private copies that the
#: batch engines never mutate (they only call step_many / make_stepper).
_HAND_SOLVER_CACHE: "OrderedDict[bytes, Dict[bool, ThermalSolver]]" = OrderedDict()
_HAND_SOLVER_CACHE_MAX = 4


def _hand_state_solvers(template: DevicePlatform) -> Dict[bool, ThermalSolver]:
    """The two canonical thermal solvers (hand touching / not touching).

    A scalar run toggles the hand coupling on its own network in place, which
    rewrites the conductance matrices with ``+=`` deltas; for the batch to
    share one factorization per touch state, those toggles must round-trip
    bitwise (so every member in a given touch state sits on the *same*
    matrix, however many times its trace has toggled).  The round trip is
    probed on a deep copy of the template network — the members' own networks
    are never touched — and a drift raises :class:`VectorizationError` so
    callers fall back to the scalar engine instead of silently diverging.
    """
    net = template.network
    hand = template.hand
    base_state = hand.touching
    cache_key = b"".join(
        (
            repr(
                (
                    tuple(net.internal_names),
                    tuple(net.boundary_names),
                    hand.contact_node,
                    hand.conductance_w_per_c,
                    base_state,
                )
            ).encode(),
            net.conductance_matrix.tobytes(),
            net.boundary_coupling.tobytes(),
            net.capacitances.tobytes(),
            net.boundary_temperatures_vector.tobytes(),
        )
    )
    cached = _HAND_SOLVER_CACHE.get(cache_key)
    if cached is not None:
        _HAND_SOLVER_CACHE.move_to_end(cache_key)
        return cached
    probe = copy.deepcopy(net)
    probe_hand = HandContact(
        contact_node=hand.contact_node,
        conductance_w_per_c=hand.conductance_w_per_c,
        touching=not base_state,
    )
    probe_hand.apply(probe)
    probe_hand.touching = base_state
    probe_hand.apply(probe)
    if not (
        np.array_equal(probe.conductance_matrix, net.conductance_matrix)
        and np.array_equal(probe.boundary_coupling, net.boundary_coupling)
    ):
        raise VectorizationError(
            "hand-contact toggling does not round-trip bitwise on this network; "
            "falling back to scalar execution"
        )
    # Toggling is deterministic, so re-applying the flip reproduces the
    # once-toggled matrices exactly.
    probe_hand.touching = not base_state
    probe_hand.apply(probe)
    solvers = {
        base_state: ThermalSolver(copy.deepcopy(net)),
        (not base_state): ThermalSolver(probe),
    }
    _HAND_SOLVER_CACHE[cache_key] = solvers
    if len(_HAND_SOLVER_CACHE) > _HAND_SOLVER_CACHE_MAX:
        _HAND_SOLVER_CACHE.popitem(last=False)
    return solvers


class _PolicyPlane:
    """SoA state for the batch's vectorizable USTA-family managers.

    One instance owns the plane-eligible manager rows of a population batch
    (see :func:`manager_vectorization_ineligibility`).  Per tick it performs,
    in the exact order of the scalar ``observe()`` chain:

    1. feedback ingestion — the per-member seeded
       :class:`UserFeedbackModel` objects stay authoritative, but they are
       only *called* on ticks where they could report or deliver (a gate
       computed array-wide from their report clocks and thresholds, which is
       exact: on every other tick ``observe()`` returns ``None`` without
       mutating state), and the resulting events update the comfort limits
       through grouped per-strategy array math;
    2. a vectorized ``prediction_due`` mask over the live plane rows;
    3. one :meth:`RuntimePredictor.predict_batch_arrays` call per predictor
       group over the due rows, features assembled column-wise from the
       engine's sensor arrays;
    4. an array-wide cap computation per policy group
       (:meth:`ThrottlePolicy.cap_for_predictions`), with
       :data:`ThrottlePolicy.NO_CAP` standing in for "no cap".

    Controller/adapter state (last prediction, cap, latency, count, live
    limit, adapter internals) lives in arrays during the run and is written
    back to the owning objects once, at the batch boundary
    (:meth:`finish`), leaving them exactly as a scalar run would.
    """

    def __init__(
        self,
        entries: Sequence[Tuple[int, "PopulationMember"]],
        table,
        has_skin_sensor: bool,
        exact: bool = True,
    ) -> None:
        n = len(entries)
        self.table = table
        # Row-exact batched prediction (see predict_batch_arrays): whole-matrix
        # model evaluation may differ from single-row predicts in the last ulp.
        self.exact = exact
        self.rows = np.array([row for row, _ in entries], dtype=np.int64)
        self.governors: List[Governor] = [member.governor for _, member in entries]
        self.managers = [member.thermal_manager for _, member in entries]
        self.inners: List[USTAController] = []
        self.adapters: List[Optional[object]] = []
        self.feedbacks: List[Optional[UserFeedbackModel]] = []
        for manager in self.managers:
            if isinstance(manager, AdaptiveComfortManager):
                self.inners.append(manager.inner)
                self.adapters.append(manager.adapter)
                self.feedbacks.append(manager.feedback)
            else:
                self.inners.append(manager)
                self.adapters.append(None)
                self.feedbacks.append(None)

        # -- USTA controller state (mirrors apply_prediction) ------------------
        self.period_minus = np.array(
            [inner.prediction_period_s - 1e-9 for inner in self.inners]
        )
        self.last_time = np.full(n, np.nan)
        self.pred_skin = np.full(n, np.nan)
        self.skin_obj = np.full(n, None, dtype=object)
        self.screen_obj = np.full(n, None, dtype=object)
        self.latency = np.zeros(n)
        self.count = np.zeros(n, dtype=np.int64)
        self.cap_req = np.full(n, _NO_CAP, dtype=np.int64)
        # Columnar adapter state + the live comfort limit (the master copy
        # shared by the adapter updates and the cap computation — the scalar
        # path keeps the two in sync through set_skin_limit).
        self.ad = AdapterArrays(n)
        for i, adapter in enumerate(self.adapters):
            self.ad.load(i, adapter, self.inners[i].current_skin_limit_c)
        self.limit = self.ad.limit
        self.limit_obj = self.ad.limit_obj
        self.adapter_kind = self.ad.kind
        # Initial state need not be the post-reset default (the engine resets
        # members first, but stays faithful if that ever changes).
        for i, inner in enumerate(self.inners):
            if inner._last_prediction_time is not None:
                self.last_time[i] = inner._last_prediction_time
                self.pred_skin[i] = (
                    np.nan if inner._last_prediction is None else inner._last_prediction
                )
            self.skin_obj[i] = inner._last_prediction
            self.screen_obj[i] = inner._last_screen_prediction
            self.latency[i] = inner._total_latency_s
            self.count[i] = inner._prediction_count
            self.cap_req[i] = _NO_CAP if inner._current_cap is None else inner._current_cap

        # One shared prediction period and no prior prediction state means
        # every live row's due clock stays in lockstep for the whole run
        # (rows only ever drop out), so the per-tick due mask reduces to a
        # single scalar clock comparison.
        self.uniform_clock = bool(
            n > 0
            and np.isnan(self.last_time).all()
            and (self.period_minus == self.period_minus[0]).all()
        )
        self._clock_period = float(self.period_minus[0]) if self.uniform_clock else 0.0
        self._clock_last: Optional[float] = None

        # -- predictor groups (one batched predict per group per due tick) -----
        groups: "OrderedDict[Tuple[int, bool], List[int]]" = OrderedDict()
        for i, inner in enumerate(self.inners):
            groups.setdefault((id(inner.predictor), bool(inner.predict_screen)), []).append(i)
        self.pred_groups = [
            (np.array(local, dtype=np.int64), self.inners[local[0]].predictor, screen)
            for (_, screen), local in groups.items()
        ]
        # Probe-verified column-sweep kernels (see _columnwise_linear_form):
        # one ``(kernel, has_screen)`` entry per predictor group, None when
        # the group must go through predict_batch_arrays.  Skin and screen
        # models probing to the same sweep order share one stacked kernel
        # call.  Only meaningful in exact mode — the inexact path's single
        # matrix predict is already one BLAS call.
        self.pred_fast: List[Optional[Tuple]] = [
            predictor_fast_kernel(predictor, predict_screen) if exact else None
            for _, predictor, predict_screen in self.pred_groups
        ]

        # -- policy groups (cap math depends only on the step table) -----------
        # step_caps/thresholds are what caps_for_margins would rebuild per
        # call; precomputing them lets tick() inline the (bit-identical)
        # count-of-crossed-rules cap computation.
        pgroups: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        for i, inner in enumerate(self.inners):
            pgroups.setdefault(inner.policy.steps, []).append(i)
        self.policy_groups = []
        for local in pgroups.values():
            policy = self.inners[local[0]].policy
            step_caps, thresholds, activation = compile_policy_steps(policy, table)
            self.policy_groups.append(
                (np.array(local, dtype=np.int64), policy, step_caps, thresholds, activation)
            )

        # Plane rows are very often the whole batch prefix (every member
        # managed); basic slices then replace every fancy-index gather.
        self.rows_contiguous = bool(np.array_equal(self.rows, np.arange(n)))
        # Live-prefix views per group, cached by the live plane count k (k only
        # changes when a member's trace ends, so the cache has O(members)
        # entries over a whole run instead of per-tick searchsorted calls).
        self._prefix_cache: Dict[int, Tuple] = {}

        # -- feedback gate state -----------------------------------------------
        fb_local = [
            i
            for i, feedback in enumerate(self.feedbacks)
            if feedback is not None and has_skin_sensor
        ]
        self.fb_local = np.array(fb_local, dtype=np.int64)
        self.fb_last = np.full(n, np.nan)
        self.fb_period_minus = np.zeros(n)
        self.fb_threshold = np.zeros(n)
        self.fb_pending = np.zeros(n, dtype=bool)
        for i in fb_local:
            model = self.feedbacks[i]
            if model._last_report_s is not None:
                self.fb_last[i] = model._last_report_s
            self.fb_period_minus[i] = model.report_period_s - 1e-9
            self.fb_threshold[i] = model.true_limit_c - model.comfort_band_c
            self.fb_pending[i] = bool(model._pending)
        # Earliest future time any feedback clock can fire (-inf while any
        # model has never reported or holds a delayed event): between firings
        # the candidate mask is provably all-False, so tick() skips it.
        self._fb_wake = -np.inf

    def bind_sensor_rows(self, block_row: Dict[str, int]) -> None:
        """Resolve the engine sensor-block rows this plane reads per tick.

        The cpu/battery rows feed the predictor features and the skin row the
        feedback gate; binding them once lets tick() index the block matrix
        directly instead of going through a per-tick name->array dict.
        """
        self._cpu_row = block_row["cpu"]
        self._battery_row = block_row["battery"]
        self._skin_row = block_row.get("skin")

    # -- per-tick update -------------------------------------------------------

    def _prefixes(self, k: int) -> Tuple:
        """Cached live-prefix state for ``k`` live plane rows.

        Returns ``(rows, dest, fbl, fb_prefix, pred_pre, pol_pre)`` where each
        ``*_pre`` entry is ``(g, is_prefix)``: the group's live local indices
        and whether they are exactly ``0..size-1`` (so basic slices can stand
        in for fancy indexing on the plane-state arrays).
        """
        cached = self._prefix_cache.get(k)
        if cached is None:
            rows = self.rows[:k]
            dest = slice(0, k) if self.rows_contiguous else rows
            fk = int(self.fb_local.searchsorted(k))
            fbl = self.fb_local[:fk]
            fb_prefix = bool(fk) and int(self.fb_local[fk - 1]) == fk - 1
            pred_pre = []
            for local, _, _ in self.pred_groups:
                size = int(local.searchsorted(k))
                pred_pre.append((local[:size], bool(size) and int(local[size - 1]) == size - 1))
            pol_pre = []
            for entry in self.policy_groups:
                local = entry[0]
                size = int(local.searchsorted(k))
                pol_pre.append((local[:size], bool(size) and int(local[size - 1]) == size - 1))
            cached = (rows, dest, fbl, fb_prefix, pred_pre, pol_pre)
            self._prefix_cache[k] = cached
        return cached

    def tick(
        self,
        buf_row: int,
        time_s: float,
        n_act: int,
        buf: ColumnarRecordBuffer,
        caps: np.ndarray,
        sensor_block: np.ndarray,
        utilization: np.ndarray,
        freq_khz: np.ndarray,
        max_level: int,
        sync_governors: bool,
    ) -> None:
        k = int(self.rows.searchsorted(n_act))
        if k == 0:
            return
        rows, dest, fbl, fb_prefix, pred_pre, pol_pre = self._prefixes(k)

        # -- 1. simulated-user feedback → grouped adapter updates --------------
        fk = fbl.size
        if fk and time_s >= self._fb_wake:
            fsl = slice(0, fk) if fb_prefix else fbl
            felt = sensor_block[self._skin_row][
                fsl if fb_prefix and self.rows_contiguous else rows[fbl]
            ]
            last = self.fb_last[fsl]
            candidate = (np.isnan(last) | (time_s - last >= self.fb_period_minus[fsl])) & (
                felt > self.fb_threshold[fsl]
            )
            needs = candidate | self.fb_pending[fsl]
            if needs.any():
                step_events: List[Tuple[int, object]] = []
                quant_events: List[Tuple[int, object]] = []
                ask = fbl[needs]
                for i, felt_c in zip(ask.tolist(), felt[needs].tolist()):
                    model = self.feedbacks[i]
                    event = model.observe(time_s, felt_c)
                    report_s = model._last_report_s
                    self.fb_last[i] = np.nan if report_s is None else report_s
                    self.fb_pending[i] = bool(model._pending)
                    if event is not None:
                        kind = self.adapter_kind[i]
                        if kind == _ADAPTER_STEP:
                            step_events.append((i, event))
                        elif kind == _ADAPTER_QUANTILE:
                            quant_events.append((i, event))
                        # _ADAPTER_FIXED consumes the event without state.
                if step_events:
                    self.ad.apply_step_events(step_events)
                if quant_events:
                    self.ad.apply_quantile_events(quant_events)
                # Re-arm the wake clock from the updated report times.  A
                # shrinking k only widens the row set the minimum ranges
                # over, so a cached wake never skips a live row's firing.
                last = self.fb_last[fsl]
                if np.isnan(last).any() or self.fb_pending[fsl].any():
                    self._fb_wake = -np.inf
                else:
                    self._fb_wake = float((last + self.fb_period_minus[fsl]).min())

        # -- 2./3./4. due mask → batched predict → array-wide caps -------------
        if self.uniform_clock:
            # Lockstep clocks: one scalar comparison replaces the mask.
            due = None
            all_due = True
            any_due = (
                self._clock_last is None or time_s - self._clock_last >= self._clock_period
            )
            if any_due:
                self._clock_last = time_s
        else:
            last_pred = self.last_time[:k]
            due = np.isnan(last_pred) | (time_s - last_pred >= self.period_minus[:k])
            any_due = bool(due.any())
            all_due = any_due and bool(due.all())
        if any_due:
            for (local, predictor, predict_screen), fast, (g, g_is_prefix) in zip(
                self.pred_groups, self.pred_fast, pred_pre
            ):
                if all_due:
                    gd = g
                else:
                    gd = g[due[g]]
                    g_is_prefix = False
                gsize = gd.size
                if gsize == 0:
                    continue
                # sl indexes the plane-state arrays; a basic slice when the
                # live group is exactly the 0..gsize-1 prefix.
                sl = slice(0, gsize) if g_is_prefix else gd
                if self.rows_contiguous and g_is_prefix:
                    grows = slice(0, gsize)
                else:
                    grows = self.rows[gd]
                cpu_col = sensor_block[self._cpu_row, grows]
                battery_col = sensor_block[self._battery_row, grows]
                util_col = utilization[grows]
                freq_col = freq_khz[grows]
                if fast is not None:
                    kernel, has_screen = fast
                    start = time.perf_counter()
                    stacked = kernel(cpu_col, battery_col, util_col, freq_col)
                    latency = (time.perf_counter() - start) / gsize
                    skin = stacked[0]
                    screen = stacked[1] if has_screen else None
                else:
                    features = np.empty((gsize, 4))
                    features[:, 0] = cpu_col
                    features[:, 1] = battery_col
                    features[:, 2] = util_col
                    features[:, 3] = freq_col
                    arrays = predictor.predict_batch_arrays(
                        features, predict_screen=predict_screen, exact=self.exact
                    )
                    skin = arrays.skin_temp_c
                    screen = arrays.screen_temp_c
                    latency = arrays.latency_s
                self.pred_skin[sl] = skin
                # Assigning the tolist() result keeps Python floats in the
                # object columns (records must serialize like scalar runs).
                self.skin_obj[sl] = skin.tolist()
                if screen is not None:
                    self.screen_obj[sl] = screen.tolist()
                self.latency[sl] += latency
                self.count[sl] += 1
                self.last_time[sl] = time_s
            for (local, policy, step_caps, thresholds, activation), (g, g_is_prefix) in zip(
                self.policy_groups, pol_pre
            ):
                if all_due:
                    gd = g
                else:
                    gd = g[due[g]]
                    g_is_prefix = False
                if gd.size == 0:
                    continue
                sl = slice(0, gd.size) if g_is_prefix else gd
                # caps_from_margins over the precompiled step tables is
                # bit-identical to the scalar cap_for_prediction.
                margins = self.limit[sl] - self.pred_skin[sl]
                new_caps = caps_from_margins(margins, step_caps, thresholds, activation)
                self.cap_req[sl] = new_caps
                if sync_governors:
                    # Custom-governor path: select_level reads the governor's
                    # internal cap, so install changes as they happen (between
                    # due ticks the scalar path re-installs the same value —
                    # a no-op the plane skips).
                    for i, cap in zip(gd.tolist(), new_caps.tolist()):
                        self.governors[i].set_level_cap(None if cap == _NO_CAP else cap)

        # -- record staging + engine cap array ---------------------------------
        cap_req = self.cap_req[:k]
        buf.usta_active[buf_row, dest] = (cap_req != _NO_CAP) & (cap_req < max_level)
        buf.predicted_skin_temp_c[buf_row, dest] = self.skin_obj[:k]
        buf.predicted_screen_temp_c[buf_row, dest] = self.screen_obj[:k]
        buf.comfort_limit_c[buf_row, dest] = self.limit_obj[:k]
        caps[dest] = np.where(cap_req == _NO_CAP, max_level, cap_req)

    # -- batch-boundary writeback ---------------------------------------------

    def finish(self) -> None:
        """Write the accumulated array state back to the owning objects."""
        for i, inner in enumerate(self.inners):
            last_time = self.last_time[i]
            cap = int(self.cap_req[i])
            inner.restore_batch_state(
                last_prediction_time=None if math.isnan(last_time) else float(last_time),
                last_prediction=self.skin_obj[i],
                last_screen_prediction=self.screen_obj[i],
                total_latency_s=float(self.latency[i]),
                prediction_count=int(self.count[i]),
                current_cap=None if cap == _NO_CAP else cap,
                live_limit_c=float(self.limit[i]),
            )
            self.ad.writeback(i, self.adapters[i])
            self.governors[i].set_level_cap(None if cap == _NO_CAP else cap)


#: Bounded memo of stacked trace batches, keyed by the identity of the trace
#: objects (strong references in the value keep the ids stable).  Repeated
#: sweeps — ``--repeat`` population copies, re-executed plans — rebuild the
#: same (max_steps, traces) batch; the engine only ever reads the matrices,
#: so sharing them across calls is safe.  The memo is bounded by *bytes*, not
#: entries — a handful of multi-hour stacks would otherwise dwarf the
#: simulation itself — and stacks above the whole budget are simply not
#: cached.  Override with the env var below (bytes).
_TRACE_STACK_CACHE: "OrderedDict[Tuple, Tuple[Tuple[WorkloadTrace, ...], Dict[str, np.ndarray], int]]" = (
    OrderedDict()
)
_TRACE_STACK_CACHE_DEFAULT_BYTES = 256 * 1024 * 1024
_TRACE_STACK_CACHE_ENV = "REPRO_TRACE_STACK_CACHE_BYTES"


def _trace_cache_budget() -> int:
    """The trace-stack cache byte budget (env-overridable, read per call)."""
    raw = os.environ.get(_TRACE_STACK_CACHE_ENV)
    if raw is not None:
        try:
            return int(raw)
        except ValueError:
            pass
    return _TRACE_STACK_CACHE_DEFAULT_BYTES


def _stack_trace_arrays(traces: Sequence[WorkloadTrace], max_steps: int) -> Dict[str, np.ndarray]:
    """Pad and stack every member's trace columns, step-major: (n_steps, n_members).

    Step-major layout makes the per-tick access pattern — one step across the
    live member prefix — a contiguous row view instead of a strided column.
    Members sharing one trace *object* (population sweeps replay one trace
    against many seeds) are materialised once and column-copied, and whole
    identical batches are answered from a small cross-call memo (byte-bounded;
    see :data:`_TRACE_STACK_CACHE`).
    """
    key = (max_steps, tuple(id(trace) for trace in traces))
    cached = _TRACE_STACK_CACHE.get(key)
    if cached is not None:
        held, stacked, _ = cached
        if len(held) == len(traces) and all(a is b for a, b in zip(held, traces)):
            _TRACE_STACK_CACHE.move_to_end(key)
            return stacked
    n = len(traces)
    stacked = {
        "cpu_demand": np.zeros((max_steps, n)),
        "gpu_activity": np.zeros((max_steps, n)),
        "radio_activity": np.zeros((max_steps, n)),
        "brightness": np.zeros((max_steps, n)),
        "screen_on": np.zeros((max_steps, n), dtype=bool),
        "charging": np.zeros((max_steps, n), dtype=bool),
        "touching": np.zeros((max_steps, n), dtype=bool),
    }
    first_member: Dict[int, int] = {}
    for member, trace in enumerate(traces):
        source = first_member.setdefault(id(trace), member)
        if source != member:
            # Same trace object as an earlier member: copy its columns
            # instead of re-materialising the trace.
            count = len(trace)
            for column in stacked.values():
                column[:count, member] = column[:count, source]
            continue
        arrays = trace.as_arrays()
        count = len(arrays)
        for name, column in stacked.items():
            column[:count, member] = getattr(arrays, name)
    # The scalar CPU window clamps demand into [0, 1]; samples are validated
    # into that range already, so this is a bitwise no-op kept for mirroring.
    stacked["cpu_demand"] = np.minimum(np.maximum(stacked["cpu_demand"], 0.0), 1.0)
    budget = _trace_cache_budget()
    nbytes = sum(column.nbytes for column in stacked.values())
    if nbytes > budget:
        return stacked
    _TRACE_STACK_CACHE[key] = (tuple(traces), stacked, nbytes)
    total = sum(entry[2] for entry in _TRACE_STACK_CACHE.values())
    while total > budget and len(_TRACE_STACK_CACHE) > 1:
        _, _, evicted = _TRACE_STACK_CACHE.popitem(last=False)[1]
        total -= evicted
    return stacked


#: Default staging byte budget for the windowed engine (see
#: :func:`resolve_window_steps`).  Sized so every plan the paper's own sweeps
#: produce (hundreds of members over minutes-long traces) stays unwindowed —
#: windowing only engages for the multi-hour-trace regime it exists for.
DEFAULT_MAX_WINDOW_BYTES = 64 * 1024 * 1024


def window_bytes_per_step(
    n_members: int, n_noisy_sensors: int = 0, with_decisions: bool = False
) -> int:
    """Estimated staging bytes one trace step costs across the population.

    Counts what the engine holds per (step, member): the seven staged trace
    columns (four float64, three bool), the five derived power matrices, the
    pre-drawn noise rows, and the record buffer's float/int (and optional
    decision) columns.  Cross-step state (temperatures, LU factorizations,
    plane arrays) is excluded — it does not scale with the window.
    """
    per_member = 4 * 8 + 3 * 1  # staged trace columns
    per_member += 5 * 8  # derived power matrices
    per_member += n_noisy_sensors * 8  # pre-drawn sensor noise
    per_member += 3 * 8 + 12 * 8  # record buffer int + float columns
    if with_decisions:
        per_member += 1 + 3 * 8  # usta_active + object decision columns
    return per_member * max(1, n_members)


def _validate_window_args(
    window_steps: Optional[int], max_window_bytes: Optional[int]
) -> None:
    """Fail fast on malformed window parameters (plain ValueError, *not*
    :class:`VectorizationError` — executors must surface bad arguments, not
    silently fall back to the scalar path)."""
    if window_steps is not None and window_steps < 2:
        raise ValueError(
            f"window_steps must be at least 2 (a window needs two steps), got {window_steps}"
        )
    if max_window_bytes is not None and max_window_bytes <= 0:
        raise ValueError(f"max_window_bytes must be positive, got {max_window_bytes}")


def resolve_window_steps(
    n_members: int,
    max_steps: int,
    window_steps: Optional[int] = None,
    max_window_bytes: Optional[int] = None,
    n_noisy_sensors: int = 0,
    with_decisions: bool = False,
) -> int:
    """The window length (in steps) the engine will actually use.

    An explicit ``window_steps`` wins; otherwise ``max_window_bytes`` divides
    through :func:`window_bytes_per_step` (floored at 2 steps so a window
    always makes progress); with neither, the run is unwindowed
    (``max_steps``).  The result never exceeds ``max_steps``.
    """
    _validate_window_args(window_steps, max_window_bytes)
    if window_steps is not None:
        return min(int(window_steps), max_steps)
    if max_window_bytes is not None:
        per_step = window_bytes_per_step(
            n_members, n_noisy_sensors=n_noisy_sensors, with_decisions=with_decisions
        )
        return max(2, min(max_steps, int(max_window_bytes) // per_step))
    return max_steps


def describe_window_plan(
    n_members: int,
    max_steps: int,
    window_steps: Optional[int] = None,
    max_window_bytes: Optional[int] = None,
    with_decisions: bool = True,
) -> str:
    """One human-readable line describing the window plan for a batch.

    Used by ``BatchPlan.describe`` / ``sweep --explain-batching``; the noisy
    sensor count comes from the default instrumented suite (cheap — no
    thermal network is built).
    """
    from ..device.sensors import SensorSuite

    suite = SensorSuite.nexus4_instrumented()
    n_noisy = sum(1 for s in suite.sensors.values() if s.noise_std_c > 0)
    chosen = resolve_window_steps(
        n_members,
        max_steps,
        window_steps=window_steps,
        max_window_bytes=max_window_bytes,
        n_noisy_sensors=n_noisy,
        with_decisions=with_decisions,
    )
    per_step = window_bytes_per_step(
        n_members, n_noisy_sensors=n_noisy, with_decisions=with_decisions
    )
    stage_mib = chosen * per_step / (1024 * 1024)
    if chosen >= max_steps:
        if window_steps is None and max_window_bytes is not None:
            return (
                f"windowing: off — {max_steps} steps x {n_members} members fits the "
                f"{max_window_bytes / (1024 * 1024):.0f} MiB staging budget"
            )
        return "windowing: off (unwindowed run)"
    n_windows = -(-max_steps // chosen)
    reason = (
        f"window_steps={window_steps}"
        if window_steps is not None
        else f"budget {max_window_bytes / (1024 * 1024):.0f} MiB"
    )
    return (
        f"windowing: {n_windows} windows x {chosen} steps ({reason}; "
        f"~{stage_mib:.1f} MiB staged per window)"
    )


class _WindowStage:
    """Reusable window-sized staging buffers for the windowed engine.

    Owns the seven trace columns and the five derived power matrices as
    ``(window_cap, n_members)`` arrays that :meth:`load` refills per window
    — the windowed run's staging footprint is one window however long the
    traces are.  Every refilled element goes through exactly the expressions
    the unwindowed path applies to its full matrices (same operation order,
    in-place ufuncs are bit-identical to the allocating forms), so windowed
    staging is bitwise indistinguishable from slicing full-trace matrices.
    """

    _TRACE_COLUMNS = (
        ("cpu_demand", float),
        ("gpu_activity", float),
        ("radio_activity", float),
        ("brightness", float),
        ("screen_on", bool),
        ("charging", bool),
        ("touching", bool),
    )

    def __init__(self, traces: Sequence[WorkloadTrace], lengths: np.ndarray, window_cap: int) -> None:
        self.traces = traces
        self.lengths = lengths
        n = len(traces)
        shape = (window_cap, n)
        for name, dtype in self._TRACE_COLUMNS:
            setattr(self, name, np.zeros(shape, dtype=dtype))
        self.gpu_w = np.zeros(shape)
        self.display_w = np.zeros(shape)
        self.radio_w = np.zeros(shape)
        self.screen_node_w = np.zeros(shape)
        self.board_node_w = np.zeros(shape)

    def load(self, w0: int, w_len: int, n_live: int) -> None:
        """Stage steps ``[w0, w0 + w_len)`` for the first ``n_live`` members."""
        first_member: Dict[int, int] = {}
        columns = [(name, getattr(self, name)) for name, _ in self._TRACE_COLUMNS]
        for member in range(n_live):
            trace = self.traces[member]
            count = min(int(self.lengths[member]) - w0, w_len)
            source = first_member.setdefault(id(trace), member)
            if source != member:
                # Same trace object as an earlier member (same object implies
                # the same length, hence the same staged count).
                for _, column in columns:
                    column[:count, member] = column[:count, source]
            else:
                arrays = self.traces[member].arrays_window(w0, w0 + count)
                for name, column in columns:
                    column[:count, member] = getattr(arrays, name)
            if count < w_len:
                # The buffers still hold the previous window; re-zero the pad
                # so padded reads match the unwindowed zero-padded matrices.
                for _, column in columns:
                    column[count:w_len, member] = False
        view = np.s_[:w_len, :n_live]
        demand = self.cpu_demand[view]
        np.maximum(demand, 0.0, out=demand)
        np.minimum(demand, 1.0, out=demand)
        gpu_w = self.gpu_w[view]
        np.multiply(self.gpu_activity[view], self._gpu_span, out=gpu_w)
        np.add(self._gpu_idle, gpu_w, out=gpu_w)
        display_w = self.display_w[view]
        np.multiply(self.brightness[view], self._display_span, out=display_w)
        np.add(self._display_base, display_w, out=display_w)
        display_w[~self.screen_on[view]] = 0.0
        radio_w = self.radio_w[view]
        np.multiply(self.radio_activity[view], self._radio_span, out=radio_w)
        np.add(self._radio_idle, radio_w, out=radio_w)
        np.multiply(0.65, display_w, out=self.screen_node_w[view])
        board_w = self.board_node_w[view]
        np.multiply(0.35, display_w, out=board_w)
        np.add(radio_w, board_w, out=board_w)

    def bind_power_constants(
        self,
        gpu_idle: float,
        gpu_span: float,
        display_base: float,
        display_span: float,
        radio_idle: float,
        radio_span: float,
    ) -> None:
        self._gpu_idle = gpu_idle
        self._gpu_span = gpu_span
        self._display_base = display_base
        self._display_span = display_span
        self._radio_idle = radio_idle
        self._radio_span = radio_span


def simulate_population(
    trace: WorkloadTrace,
    members: Sequence[PopulationMember],
    exact: bool = True,
    vectorize_managers: bool = True,
    window_steps: Optional[int] = None,
    max_window_bytes: Optional[int] = None,
    window_drain: Optional[object] = None,
) -> List[SimulationResult]:
    """Replay one shared trace against N device instances in lockstep.

    The same-trace special case of :func:`simulate_population_mixed`, kept as
    the historical entry point.  Semantically equivalent to
    ``[Simulator(m...).run(trace) for m in members]`` and — with
    ``exact=True`` — bit-for-bit identical to it.
    """
    return simulate_population_mixed(
        [trace] * len(members),
        members,
        exact=exact,
        vectorize_managers=vectorize_managers,
        window_steps=window_steps,
        max_window_bytes=max_window_bytes,
        window_drain=window_drain,
    )


def simulate_population_mixed(
    traces: Sequence[WorkloadTrace],
    members: Sequence[PopulationMember],
    exact: bool = True,
    vectorize_managers: bool = True,
    window_steps: Optional[int] = None,
    max_window_bytes: Optional[int] = None,
    window_drain: Optional[object] = None,
) -> List[SimulationResult]:
    """Advance a heterogeneous population — one trace per member — as one batch.

    Semantically equivalent to ``[Simulator(m...).run(t) for t, m in
    zip(traces, members)]`` and — with ``exact=True`` — bit-for-bit identical
    to it, but the per-step device work is evaluated across the whole live
    population at once:

    * traces of different lengths are padded; members are ordered internally
      by descending length so the live set is always a contiguous prefix, and
      a member simply drops out of it when its trace ends;
    * per-tick hand-contact state may differ across members; the thermal
      solve partitions the live set between the two canonical cached-LU
      factorizations (see :func:`_hand_state_solvers`);
    * per-step record data is staged columnar and materialised per member
      only at the end (:class:`~repro.sim.results.ColumnarRecordBuffer`).

    Args:
        traces: one workload trace per member (sharing one object is fine and
            materialises it once).  All traces must share the sample period.
        members: the population (platforms must share one hardware
            configuration; see :class:`VectorizationError`).
        exact: per-column thermal back-substitution for bitwise parity with
            the scalar engine (default); ``False`` uses blocked solves, which
            are faster for large populations but may differ in the last ulp.
        vectorize_managers: drive plane-eligible USTA-family managers through
            the vectorized policy plane (default; bit-identical).  ``False``
            forces every manager onto the scalar per-member ``observe()``
            loop — the per-member-manager baseline the benchmarks measure.
        window_steps: process the traces in windows of exactly this many
            steps, reusing one set of window-sized staging buffers (must be
            >= 2; bit-identical to the unwindowed run).  ``None`` defers to
            ``max_window_bytes``.
        max_window_bytes: size the window from this staging byte budget
            instead (see :func:`resolve_window_steps`).  With both ``None``
            the run is unwindowed.
        window_drain: optional record drain.  When given, the record buffer
            is window-sized and after each window every live member's rows
            flush through ``drain.emit_member_window(index, records, done)``
            (``index`` in input member order; the records iterator is only
            valid during the call); the returned results then carry *no*
            records — the drain owns them.

    Returns:
        One :class:`SimulationResult` per member, in member order.
    """
    n_members = len(members)
    if len(traces) != n_members:
        raise VectorizationError("one workload trace per member is required")
    if n_members == 0:
        raise VectorizationError("a population needs at least one member")
    _validate_window_args(window_steps, max_window_bytes)
    dt = traces[0].sample_period_s
    for trace in traces:
        if trace.sample_period_s != dt:
            raise VectorizationError("members have different trace sample periods")
        if len(trace) == 0:
            raise VectorizationError(f"trace {trace.name!r} is empty")

    # -- reset every member exactly like SimulationKernel.reset ---------------
    for member in members:
        member.platform.reset(dict(member.initial_temps) if member.initial_temps else None)
        member.governor.reset()
        if member.thermal_manager is not None:
            member.thermal_manager.reset()
        if member.logger is not None:
            member.logger.reset()

    # Validation runs on the freshly reset platforms (reset re-applies each
    # member's ambient and hand contact, which is exactly the state that must
    # agree for the shared factorizations); no trace step has executed yet, so
    # callers can still fall back to sequential execution safely.
    _validate_members(members)

    # -- internal ordering: longest trace first ---------------------------------
    lengths = np.array([len(trace) for trace in traces], dtype=np.int64)
    order = np.argsort(-lengths, kind="stable")
    position = np.empty(n_members, dtype=np.int64)
    position[order] = np.arange(n_members)
    s_members = [members[i] for i in order]
    s_traces = [traces[i] for i in order]
    s_lengths = lengths[order]
    max_steps = int(s_lengths[0])
    # Live-member count per step: lengths are descending, so the live set at
    # step t is the prefix of members whose length exceeds t.
    ascending = s_lengths[::-1]
    n_active_at = n_members - np.searchsorted(ascending, np.arange(max_steps), side="right")

    template = s_members[0].platform
    net = template.network
    table = template.freq_table
    cpu_model = template.power_model.cpu
    power_model = template.power_model
    charger = power_model.charger
    battery = template.battery
    carry_over = template.cpu.carry_over
    max_backlog = template.cpu.max_backlog
    solver_by_touch = _hand_state_solvers(template)
    if exact:
        # Prebound steppers: same bits as step_many(exact=True), without the
        # per-call validation/factorization lookups (600+ calls per run).
        step_touching = solver_by_touch[True].make_stepper(dt)
        step_free = solver_by_touch[False].make_stepper(dt)
    else:
        step_touching = lambda p, T: solver_by_touch[True].step_many(dt, p, T, exact=False)
        step_free = lambda p, T: solver_by_touch[False].step_many(dt, p, T, exact=False)
    step_by_touch = {True: step_touching, False: step_free}

    internal_index = {name: i for i, name in enumerate(net.internal_names)}
    cpu_i = internal_index["cpu"]
    battery_i = internal_index["battery"]
    back_i = internal_index["back_cover"]
    screen_i = internal_index["screen"]
    board_i = internal_index["board"]

    # -- shared per-level power constants (python-float exact) -----------------
    freqs_khz = np.array(table.frequencies_khz, dtype=np.int64)
    max_freq_khz = table.max_frequency_khz
    max_level = table.max_level
    # dynamic_power(opp, 1.0) == ((C_eff * V^2) * f) — the prefix of the
    # scalar expression ((C_eff * V^2) * f) * util, so multiplying by util
    # afterwards reproduces the scalar result bit-for-bit.
    dyn_k = np.array(
        [cpu_model.dynamic_power(table[level], 1.0) for level in range(len(table))]
    )
    volt_factor = np.array(
        [table[level].voltage_v / cpu_model.reference_voltage_v for level in range(len(table))]
    )
    leak_coeff = cpu_model.leakage_temp_coeff
    leak_ref = cpu_model.reference_temp_c
    leak0 = cpu_model.leakage_at_ref_w
    idle_w = cpu_model.idle_power_w
    gpu_idle = power_model.gpu.idle_power_w
    gpu_span = power_model.gpu.max_power_w - power_model.gpu.idle_power_w
    display_base = power_model.display.base_power_w
    display_span = power_model.display.max_backlight_power_w
    radio_idle = power_model.radio.idle_power_w
    radio_span = power_model.radio.max_power_w - power_model.radio.idle_power_w
    charge_heat_w = charger.charge_power_w * charger.charge_loss_fraction
    discharge_loss = charger.discharge_loss_fraction
    battery_charge_w = battery.charge_power_w * battery.charge_efficiency

    # -- per-member state (internal, longest-first order) ----------------------
    temps = np.stack(
        [member.platform.network.temperatures_vector for member in s_members], axis=1
    )
    levels = np.array([member.platform.cpu.level for member in s_members], dtype=np.int64)
    caps = np.full(n_members, max_level, dtype=np.int64)
    backlog = np.zeros(n_members)
    soc = np.array([member.platform.battery.state_of_charge for member in s_members])

    manager_rows = [
        (row, member) for row, member in enumerate(s_members) if member.thermal_manager is not None
    ]
    logger_rows = [
        (row, member.logger) for row, member in enumerate(s_members) if member.logger is not None
    ]
    has_managers = bool(manager_rows)

    # -- window plan -----------------------------------------------------------
    # The run advances in windows of window_len steps; unwindowed runs are the
    # single-window special case (w0 == 0, w_len == max_steps), so one loop
    # body serves both and r (window-relative step) == t (absolute step) when
    # unwindowed.
    n_noisy = sum(1 for s in template.sensors.sensors.values() if s.noise_std_c > 0)
    window_len = resolve_window_steps(
        n_members,
        max_steps,
        window_steps=window_steps,
        max_window_bytes=max_window_bytes,
        n_noisy_sensors=n_noisy,
        with_decisions=has_managers,
    )
    windowed = window_len < max_steps

    if windowed:
        # Window-sized staging buffers, refilled per window (bit-identical to
        # slicing the full matrices; see _WindowStage).
        stage = _WindowStage(s_traces, s_lengths, window_len)
        stage.bind_power_constants(
            gpu_idle, gpu_span, display_base, display_span, radio_idle, radio_span
        )
        demand_mat = stage.cpu_demand
        charging_mat = stage.charging
        touching_mat = stage.touching
        gpu_w_mat = stage.gpu_w
        display_w_mat = stage.display_w
        radio_w_mat = stage.radio_w
        screen_node_w_mat = stage.screen_node_w
        board_node_w_mat = stage.board_node_w
    else:
        cols = _stack_trace_arrays(s_traces, max_steps)
        demand_mat = cols["cpu_demand"]
        gpu_mat = cols["gpu_activity"]
        radio_mat = cols["radio_activity"]
        brightness_mat = cols["brightness"]
        screen_on_mat = cols["screen_on"]
        charging_mat = cols["charging"]
        touching_mat = cols["touching"]

        # GPU/display/radio power depend only on the trace, so the whole
        # (max_steps, N) matrices are computed once here instead of per tick.
        # Each element goes through exactly the scalar expression (elementwise
        # ops against python-float constants), so the values are bit-identical.
        gpu_w_mat = gpu_idle + gpu_mat * gpu_span
        display_w_mat = np.where(
            screen_on_mat, display_base + brightness_mat * display_span, 0.0
        )
        radio_w_mat = radio_idle + radio_mat * radio_span
        screen_node_w_mat = 0.65 * display_w_mat
        board_node_w_mat = radio_w_mat + 0.35 * display_w_mat

    # -- pre-drawn sensor noise ------------------------------------------------
    # One block draw per (member, sensor) consumes each seeded generator
    # exactly like the scalar engine's one-draw-per-step reads; a windowed run
    # draws the same stream in window-sized chunks, which consumes each
    # generator identically.  Noiseless sensors carry no matrix at all (the
    # scalar read skips the add too).
    sensor_specs = []  # (name, node_index, offset, quantization, noisy)
    for name in template.sensors.sensors:
        sensor0 = template.sensors.sensors[name]
        sensor_specs.append(
            (
                name,
                internal_index[sensor0.node],
                sensor0.offset_c,
                sensor0.quantization_c,
                sensor0.noise_std_c > 0,
            )
        )
    _noisy_specs = [spec for spec in sensor_specs if spec[4]]
    _clean_specs = [spec for spec in sensor_specs if not spec[4]]
    noise_block: Optional[np.ndarray] = None
    noisy_sensor_objs: List[List] = []
    if _noisy_specs:
        if windowed:
            # Refilled per window from the prebound per-(sensor, member)
            # generator objects.
            noise_block = np.zeros((n_noisy, window_len, n_members))
            noisy_sensor_objs = [
                [member.platform.sensors.sensors[spec[0]] for member in s_members]
                for spec in _noisy_specs
            ]
        else:
            noise_block = np.zeros((n_noisy, max_steps, n_members))
            for s_idx, spec in enumerate(_noisy_specs):
                name = spec[0]
                for row, member in enumerate(s_members):
                    count = int(s_lengths[row])
                    noise_block[s_idx, :count, row] = member.platform.sensors.sensors[
                        name
                    ].draw_noise(count)
    record_sensor_fields = (
        ("sensor_cpu_temp_c", "cpu", cpu_i),
        ("sensor_battery_temp_c", "battery", battery_i),
        ("sensor_skin_temp_c", "skin", back_i),
        ("sensor_screen_temp_c", "screen", screen_i),
    )

    # Block layout for the per-tick sensor reads: all sensors are read with a
    # handful of array ops on an (n_sensors, n_live) block instead of one
    # mini-pipeline per sensor.  Noisy sensors come first so the noise add is
    # a single slice over a prefix — noiseless rows never see a ``+ 0.0``,
    # exactly like the scalar read that skips the add altogether.
    block_specs = _noisy_specs + _clean_specs
    sensor_block_names = [spec[0] for spec in block_specs]
    sensor_block_nodes = np.array([spec[1] for spec in block_specs], dtype=np.int64)
    sensor_block_offsets = np.array([spec[2] for spec in block_specs])[:, None]
    _quants = [spec[3] for spec in block_specs]
    if all(q > 0 for q in _quants):
        sensor_block_quant: Optional[np.ndarray] = np.array(_quants)[:, None]
        quant_rows = []
    else:
        sensor_block_quant = None
        quant_rows = [(i, q) for i, q in enumerate(_quants) if q > 0]

    # -- policy plane: batch the eligible USTA-family managers -----------------
    # Eligible managers leave the scalar loop entirely; anything custom stays
    # on it (manager_vectorization_ineligibility knows why, for
    # --explain-batching).  Plane feature assembly needs the cpu and battery
    # sensors the scalar feature path reads.
    sensor_names = set(template.sensors.sensors)
    plane: Optional[_PolicyPlane] = None
    scalar_manager_rows = manager_rows
    if vectorize_managers and manager_rows and {"cpu", "battery"} <= sensor_names:
        plane_rows = []
        scalar_manager_rows = []
        for row, member in manager_rows:
            if manager_vectorization_ineligibility(member.thermal_manager, table) is None:
                plane_rows.append((row, member))
            else:
                scalar_manager_rows.append((row, member))
        if plane_rows:
            plane = _PolicyPlane(
                plane_rows, table, has_skin_sensor="skin" in sensor_names, exact=exact
            )
    needs_scalar_views = bool(scalar_manager_rows) or bool(logger_rows)

    # With a drain the record buffer is window-sized (rows are flushed at
    # every window boundary); otherwise it spans the whole run.
    buf_steps = window_len if window_drain is not None else max_steps
    buf = ColumnarRecordBuffer(n_members, buf_steps, with_decisions=has_managers)
    times: List[float] = []
    node_power = np.zeros((temps.shape[0], n_members))

    # The demand column is exactly the (clamped, padded) trace matrix the
    # engine reads from — alias it instead of copying it back tick by tick
    # whenever the shapes line up (unwindowed, or drained window-sized
    # buffer).  extend_result only ever reads buffer columns, so the memoised
    # trace stack is never written through this alias.  A windowed run
    # without a drain copies each window's staged demand into the full-size
    # buffer instead.
    copy_demand = windowed and window_drain is None
    if not copy_demand:
        buf.demand = demand_mat

    # Hoisted buffer columns: one attribute lookup per run instead of per tick.
    buf_frequency_khz = buf.frequency_khz
    buf_frequency_level = buf.frequency_level
    buf_utilization = buf.utilization
    buf_delivered = buf.delivered_work
    buf_power_w = buf.power_w
    buf_cpu_temp = buf.cpu_temp_c
    buf_battery_temp = buf.battery_temp_c
    buf_skin_temp = buf.skin_temp_c
    buf_screen_temp = buf.screen_temp_c
    buf_level_cap = buf.level_cap
    # (column, row in the sensor block or None when the platform lacks that
    # sensor, fallback node index).
    _block_row = {name: i for i, name in enumerate(sensor_block_names)}
    record_sensor_cols = [
        (getattr(buf, field), _block_row.get(sensor_name), node_idx)
        for field, sensor_name, node_idx in record_sensor_fields
    ]
    if plane is not None:
        plane.bind_sensor_rows(_block_row)

    # Homogeneous stock-ondemand populations take a fully vectorized governor
    # path (exact replica of OndemandGovernor._target_level + the level cap);
    # mixed or custom governors fall back to per-member select_level calls.
    governors = [member.governor for member in s_members]
    fast_ondemand = all(type(g) is OndemandGovernor for g in governors) and (
        len(
            {
                (g.up_threshold, g.down_threshold, g.down_step_levels)
                for g in governors
            }
        )
        == 1
    )
    if fast_ondemand:
        up_threshold = governors[0].up_threshold
        down_threshold = governors[0].down_threshold
        down_step_levels = governors[0].down_step_levels

    # The name->row dict of sensor readings is only consumed by the
    # scalar-view paths; the policy plane reads the block matrix directly
    # through its bound rows, and the pure fast path records straight from
    # the block matrix too.
    needs_sensor_dict = needs_scalar_views or not fast_ondemand

    # Local bindings for the tick loop (global lookups add up at 600+ ticks).
    np_minimum = np.minimum
    np_maximum = np.maximum
    np_where = np.where
    np_rint = np.rint
    np_divide = np.divide
    np_add = np.add
    np_fromiter = np.fromiter
    np_float64 = np.float64
    math_exp = math.exp

    time_s = 0.0
    for w0 in range(0, max_steps, window_len):
        w_len = min(window_len, max_steps - w0)
        n_live = int(n_active_at[w0])
        buf_base = 0 if window_drain is not None else w0
        if windowed:
            stage.load(w0, w_len, n_live)
            if noise_block is not None:
                for s_idx, sensor_objs in enumerate(noisy_sensor_objs):
                    block = noise_block[s_idx]
                    for row in range(n_live):
                        count = min(int(s_lengths[row]) - w0, w_len)
                        block[:count, row] = sensor_objs[row].draw_noise(count)
                        if count < w_len:
                            block[count:w_len, row] = 0.0
        if copy_demand:
            buf.demand[w0 : w0 + w_len, :n_live] = demand_mat[:w_len, :n_live]

        # Per-window trace classifications, hoisted: whether every / no live
        # member is touching (selects the thermal factorization without
        # per-tick reductions) and whether anyone charges (gates the charging
        # branches; trace padding is all-False, so whole-row reductions see
        # the live prefix's truth).  Unwindowed runs compute these once.
        act_w = n_active_at[w0 : w0 + w_len]
        _touch_prefix = np.cumsum(touching_mat[:w_len], axis=1)
        _touch_counts = _touch_prefix[np.arange(w_len), act_w - 1]
        all_touching_w = (_touch_counts == act_w).tolist()
        none_touching_w = (_touch_counts == 0).tolist()
        any_charging_w = charging_mat[:w_len].any(axis=1).tolist()
        n_active_w = act_w.tolist()

        for r in range(w_len):
            n_act = n_active_w[r]
            live = slice(0, n_act)
            bt = buf_base + r

            # -- CPU window (Cpu.run_window, vectorized) ---------------------------
            demand = demand_mat[r, live]
            total_demand = demand + backlog[live] if carry_over else demand
            live_levels = levels[live]
            freq_khz = freqs_khz[live_levels]
            capacity = freq_khz / max_freq_khz
            delivered = np_minimum(total_demand, capacity)
            utilization = np_minimum(1.0, total_demand / capacity)
            if carry_over:
                leftover = np_maximum(0.0, total_demand - delivered)
                backlog[live] = np_minimum(leftover, max_backlog)

            # -- power model (PlatformPowerModel.evaluate, vectorized) -------------
            die_temp = temps[cpu_i, live]
            # utilization is min(1.0, demand/capacity) with demand >= 0, so the
            # scalar model's [0, 1] clamp returns it unchanged — bit-identically.
            dyn_w = dyn_k[live_levels] * utilization
            # The exp argument vectorizes bit-exactly (IEEE subtract/multiply match
            # the scalar order), but the exp itself must be math.exp per element:
            # numpy's vectorized exp differs from libm in the last ulp.
            leak_arg = (die_temp - leak_ref) * leak_coeff
            temp_factor = np_fromiter(map(math_exp, leak_arg.tolist()), np_float64, n_act)
            leak_w = leak0 * temp_factor * volt_factor[live_levels]
            cpu_w = idle_w + dyn_w + leak_w
            gpu_w = gpu_w_mat[r, live]
            display_w = display_w_mat[r, live]
            radio_w = radio_w_mat[r, live]
            platform_draw = cpu_w + gpu_w + display_w + radio_w
            charging_now = any_charging_w[r]
            if charging_now:
                charging_t = charging_mat[r, live]
                battery_w = np_where(
                    charging_t, charge_heat_w, np_maximum(platform_draw, 0.0) * discharge_loss
                )
            else:
                # All-False charging: np_where would return the discharge branch
                # verbatim, so skip the select (same bits, two ops fewer).
                battery_w = np_maximum(platform_draw, 0.0) * discharge_loss
            total_w = platform_draw + battery_w

            # -- thermal (one solve per live hand-contact state) -------------------
            # node_power rows other than the four below stay zero for the whole run.
            np_add(cpu_w, gpu_w, out=node_power[cpu_i, live])
            node_power[screen_i, live] = screen_node_w_mat[r, live]
            node_power[board_i, live] = board_node_w_mat[r, live]
            node_power[battery_i, live] = battery_w
            if all_touching_w[r]:
                temps[:, live] = step_touching(node_power[:, live], temps[:, live])
            elif none_touching_w[r]:
                temps[:, live] = step_free(node_power[:, live], temps[:, live])
            else:
                touch_t = touching_mat[r, live]
                for state in (True, False):
                    members_in_state = np.flatnonzero(touch_t == state)
                    temps[:, members_in_state] = step_by_touch[state](
                        node_power[:, members_in_state], temps[:, members_in_state]
                    )

            # -- battery SoC (Battery.step, vectorized) ----------------------------
            draw_param = total_w - battery_w
            net_w = -np_maximum(draw_param, 0.0)
            live_soc = soc[live]
            if charging_now:
                # With no charger connected the scalar path adds an all-zero
                # term; net_w is strictly negative (idle power alone draws), so
                # skipping the add is bit-identical.
                net_w = net_w + np_where(
                    charging_t, np_where(live_soc >= 0.995, 0.0, battery_charge_w), 0.0
                )
            delta_wh = net_w * dt / 3600.0
            soc[live] = np_minimum(1.0, np_maximum(0.0, live_soc + delta_wh / battery.capacity_wh))

            # -- sensors (one block read; pre-drawn noise; vectorized quantization) -
            vals = temps[sensor_block_nodes, live]
            vals += sensor_block_offsets
            if noise_block is not None:
                vals[:n_noisy] += noise_block[:, r, live]
            if sensor_block_quant is not None:
                np_rint(np_divide(vals, sensor_block_quant, out=vals), out=vals)
                vals *= sensor_block_quant
            else:
                for i, quantization in quant_rows:
                    vals[i] = np_rint(vals[i] / quantization) * quantization
            if needs_sensor_dict:
                sensor_arrays: Dict[str, np.ndarray] = {
                    name: vals[i] for i, name in enumerate(sensor_block_names)
                }

            time_s += dt
            times.append(time_s)

            # -- columnar record staging (the hot loop builds no record objects) ---
            buf_frequency_khz[bt, live] = freq_khz
            buf_frequency_level[bt, live] = live_levels
            buf_utilization[bt, live] = utilization
            buf_delivered[bt, live] = delivered
            buf_power_w[bt, live] = total_w
            buf_cpu_temp[bt, live] = temps[cpu_i, live]
            buf_battery_temp[bt, live] = temps[battery_i, live]
            buf_skin_temp[bt, live] = temps[back_i, live]
            buf_screen_temp[bt, live] = temps[screen_i, live]
            for column, vals_row, node_idx in record_sensor_cols:
                column[bt, live] = vals[vals_row] if vals_row is not None else temps[node_idx, live]

            # Per-member Python views are only materialised for components that
            # genuinely cannot batch (managers, loggers, custom governors).
            if needs_scalar_views or not fast_ondemand:
                util_list = utilization.tolist()
                freq_list = freq_khz.tolist()
                level_list = live_levels.tolist()
                reading_lists = [
                    (name, sensor_arrays[name].tolist()) for name, _, _, _, _ in sensor_specs
                ]

            # -- managers observe (may install/remove frequency caps) --------------
            if plane is not None:
                plane.tick(
                    bt,
                    time_s,
                    n_act,
                    buf,
                    caps,
                    vals,
                    utilization,
                    freq_khz,
                    max_level,
                    sync_governors=not fast_ondemand,
                )
            if scalar_manager_rows:
                for row, member in scalar_manager_rows:
                    if row >= n_act:
                        break
                    readings = {name: values[row] for name, values in reading_lists}
                    decision = member.thermal_manager.observe(
                        time_s=time_s,
                        sensor_readings=readings,
                        utilization=util_list[row],
                        frequency_khz=float(freq_list[row]),
                    )
                    member.governor.set_level_cap(decision.level_cap)
                    caps[row] = member.governor.level_cap
                    buf.usta_active[bt, row] = decision.active and member.governor.is_capped
                    buf.predicted_skin_temp_c[bt, row] = decision.predicted_skin_temp_c
                    buf.predicted_screen_temp_c[bt, row] = decision.predicted_screen_temp_c
                    buf.comfort_limit_c[bt, row] = decision.comfort_limit_c
            buf_level_cap[bt, live] = caps[live]

            # -- loggers -----------------------------------------------------------
            for row, logger in logger_rows:
                if row >= n_act:
                    break
                readings = {name: values[row] for name, values in reading_lists}
                logger.maybe_log(
                    time_s=time_s,
                    benchmark=s_traces[row].name,
                    sensor_readings=readings,
                    utilization=util_list[row],
                    frequency_khz=float(freq_list[row]),
                )

            # -- governors pick the level for the next window ----------------------
            if fast_ondemand:
                # Exact vectorization of OndemandGovernor._target_level: jump to
                # the top above up_threshold, straight to the load-proportional
                # level below down_threshold, step down gradually in between —
                # then apply each member's current level cap.
                target_khz = np_rint((utilization / up_threshold) * max_freq_khz)
                proportional = np_minimum(
                    freqs_khz.searchsorted(target_khz, side="left"), max_level
                )
                stepped = np_where(
                    proportional < live_levels,
                    np_maximum(proportional, live_levels - down_step_levels),
                    proportional,
                )
                uncapped = np_where(
                    utilization >= up_threshold,
                    max_level,
                    np_where(utilization <= down_threshold, proportional, stepped),
                )
                if has_managers:
                    levels[live] = np_minimum(uncapped, caps[live])
                else:
                    # Without managers nothing ever installs a cap.
                    levels[live] = uncapped
            else:
                for row in range(n_act):
                    observation = GovernorObservation(
                        utilization=util_list[row],
                        current_level=level_list[row],
                        time_s=time_s,
                        dt_s=dt,
                    )
                    governor = governors[row]
                    levels[row] = governor.select_level(observation)
                    caps[row] = governor.level_cap

        # -- window boundary: flush completed record rows through the drain ----
        if window_drain is not None:
            for row in range(n_live):
                remaining = int(s_lengths[row]) - w0
                count = min(remaining, w_len)
                window_drain.emit_member_window(
                    int(order[row]),
                    buf.drain_window(row, times[w0 : w0 + count], count),
                    remaining <= w_len,
                )

    # -- batch boundary: plane state back into the controller objects ----------
    if plane is not None:
        plane.finish()

    # -- hand out the results (the batch/sink boundary) ------------------------
    # Records stay columnar in the buffer; each result materialises its
    # StepRecord list on first access (bit-identical to an eager build).
    # With a window drain the records already left through it at the window
    # boundaries, so the results carry none.
    results: List[SimulationResult] = []
    for index in range(n_members):
        row = int(position[index])
        member = members[index]
        result = SimulationResult(
            workload_name=traces[index].name,
            governor_name=member.governor_label(),
            dt_s=dt,
        )
        if window_drain is None:
            buf.extend_result(result, row, times, int(s_lengths[row]), defer=True)
        results.append(result)

    # -- write final state back to the member platforms ------------------------
    # A sequential run leaves every platform warm (final temperatures, SoC,
    # CPU level/backlog, hand contact, elapsed time); mirror that so warm
    # restarts and re-validation behave identically after a batched run.
    final_levels = levels.tolist()
    final_backlog = backlog.tolist()
    final_soc = soc.tolist()
    for row, member in enumerate(s_members):
        count = int(s_lengths[row])
        platform = member.platform
        platform.hand.touching = bool(s_traces[row][count - 1].touching)
        platform.hand.apply(platform.network)
        platform.network.apply_temperature_vector(temps[:, row])
        platform.cpu.level = final_levels[row]
        platform.cpu._backlog = final_backlog[row]
        platform.battery.state_of_charge = final_soc[row]
        platform._time_s = times[count - 1]

    return results
