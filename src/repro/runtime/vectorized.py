"""Vectorized same-trace population simulation.

The paper's sweeps repeatedly replay *one* workload trace against many device
instances that differ only in seed, governor configuration or USTA comfort
limit (Figs 2/4/5, and population-scale what-if studies).  Run serially, each
instance pays the full per-step Python cost; run here, the N instances march
through the trace in lockstep and the expensive parts of the device step —
the implicit thermal solve, the CPU window, the power model, the sensor
models — are evaluated once per step across the whole population with numpy.

Bit-exactness is a hard requirement (the batched runtime must be a drop-in
replacement for N sequential :meth:`Simulator.run` calls), which dictates a
few implementation choices:

* the thermal solve reuses the shared cached LU factorization but
  back-substitutes per column (`exact=True`), because blocked multi-RHS
  LAPACK calls differ from the scalar path in the last ulp;
* CPU leakage uses ``math.exp`` per instance (numpy's vectorized ``exp`` is
  not bit-identical to libm);
* sensor noise is pre-drawn per (instance, sensor) in one block from the same
  seeded generators the scalar path uses — a block draw consumes the
  generator stream exactly like repeated scalar draws;
* every elementwise expression mirrors the operation order of the scalar
  model code, because float addition and multiplication are not associative.

Governors and thermal managers keep their (cheap) per-instance Python
implementations, so any :class:`~repro.governors.base.Governor` subclass or
:class:`~repro.sim.engine.ThermalManager` works unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..device.platform import DevicePlatform
from ..governors.base import Governor, GovernorObservation
from ..governors.ondemand import OndemandGovernor
from ..sim.engine import ManagerDecision, ThermalManager
from ..sim.logger import SystemLogger
from ..sim.results import SimulationResult, StepRecord
from ..workloads.trace import WorkloadTrace

__all__ = ["PopulationMember", "VectorizationError", "simulate_population"]


class VectorizationError(RuntimeError):
    """The member set cannot be integrated as one population.

    Raised during validation, after the members have been reset but before
    any trace step has executed, so callers can safely fall back to
    sequential execution (which resets again).
    """


@dataclass
class PopulationMember:
    """One device instance of a same-trace population.

    Attributes:
        platform: the member's simulated handset (provides seeded sensors,
            initial state and the shared hardware configuration).
        governor: the member's DVFS policy (exclusive to this member).
        thermal_manager: optional USTA-style manager (exclusive to this member).
        logger: optional system logger filled during the run.
        initial_temps: optional initial *internal* node temperatures (°C).
    """

    platform: DevicePlatform
    governor: Governor
    thermal_manager: Optional[ThermalManager] = None
    logger: Optional[SystemLogger] = None
    initial_temps: Optional[Mapping[str, float]] = None

    def governor_label(self) -> str:
        """Same label :meth:`SimulationKernel.governor_label` produces."""
        label = self.governor.name
        if self.thermal_manager is not None:
            manager_name = getattr(
                self.thermal_manager, "name", type(self.thermal_manager).__name__
            )
            label = f"{manager_name}+{label}"
        return label


def _cpu_config(platform: DevicePlatform) -> Tuple:
    table = platform.freq_table
    return (
        table.frequencies_khz,
        tuple(table.voltage_at(level) for level in range(len(table))),
        platform.cpu.carry_over,
        platform.cpu.max_backlog,
    )


def _sensor_config(platform: DevicePlatform) -> Tuple:
    return tuple(
        (s.name, s.node, s.noise_std_c, s.quantization_c, s.offset_c)
        for s in platform.sensors.sensors.values()
    )


def _validate_members(members: Sequence[PopulationMember]) -> None:
    """Check that all members share one hardware configuration.

    The population shares a single thermal factorization and a single set of
    per-level power constants, so everything except seeds, governors,
    managers and initial internal temperatures must be identical.
    """
    if not members:
        raise VectorizationError("a population needs at least one member")
    template = members[0].platform
    net = template.network
    if template.solver.method != "implicit":
        raise VectorizationError("all members must use the implicit solver")
    for member in members[1:]:
        p = member.platform
        if p.solver.method != "implicit":
            raise VectorizationError("all members must use the implicit solver")
        if not (
            np.array_equal(p.network.capacitances, net.capacitances)
            and np.array_equal(p.network.conductance_matrix, net.conductance_matrix)
            and np.array_equal(p.network.boundary_coupling, net.boundary_coupling)
            and p.network.internal_names == net.internal_names
            and p.network.boundary_names == net.boundary_names
        ):
            raise VectorizationError("members have different thermal networks")
        if not np.array_equal(
            p.network.boundary_temperatures_vector, net.boundary_temperatures_vector
        ):
            raise VectorizationError(
                "members have different boundary temperatures (ambient/hand)"
            )
        if p.power_model != template.power_model:
            raise VectorizationError("members have different power models")
        if p.hand != template.hand:
            raise VectorizationError("members have different hand-contact models")
        if p.battery != template.battery:
            raise VectorizationError("members have different battery models")
        if _cpu_config(p) != _cpu_config(template):
            raise VectorizationError("members have different CPU/frequency tables")
        if _sensor_config(p) != _sensor_config(template):
            raise VectorizationError("members have different sensor configurations")
    internal = set(template.network.internal_names)
    for sensor in template.sensors.sensors.values():
        if sensor.node not in internal:
            raise VectorizationError(
                f"sensor {sensor.name!r} observes non-internal node {sensor.node!r}"
            )
    seen_governors: Dict[int, int] = {}
    seen_managers: Dict[int, int] = {}
    for member in members:
        if id(member.governor) in seen_governors:
            raise VectorizationError("two members share one governor instance")
        seen_governors[id(member.governor)] = 1
        if member.thermal_manager is not None:
            if id(member.thermal_manager) in seen_managers:
                raise VectorizationError("two members share one thermal manager instance")
            seen_managers[id(member.thermal_manager)] = 1
        if member.initial_temps:
            boundary = set(member.platform.network.boundary_names)
            if any(name in boundary for name in member.initial_temps):
                raise VectorizationError(
                    "per-member boundary temperatures break the shared factorization"
                )


def simulate_population(
    trace: WorkloadTrace,
    members: Sequence[PopulationMember],
    exact: bool = True,
) -> List[SimulationResult]:
    """Replay one trace against N device instances in lockstep.

    Semantically equivalent to ``[Simulator(m...).run(trace) for m in
    members]`` and — with ``exact=True`` — bit-for-bit identical to it, but
    the per-step device work is evaluated across the whole population at
    once.

    Args:
        trace: the shared workload trace.
        members: the population (platforms must share one hardware
            configuration; see :class:`VectorizationError`).
        exact: per-column thermal back-substitution for bitwise parity with
            the scalar engine (default); ``False`` uses one blocked solve per
            step, which is faster for large populations but may differ in the
            last ulp.

    Returns:
        One :class:`SimulationResult` per member, in member order.
    """
    n_members = len(members)
    dt = trace.sample_period_s
    n_steps = len(trace)

    # -- reset every member exactly like SimulationKernel.reset ---------------
    for member in members:
        member.platform.reset(dict(member.initial_temps) if member.initial_temps else None)
        member.governor.reset()
        if member.thermal_manager is not None:
            member.thermal_manager.reset()
        if member.logger is not None:
            member.logger.reset()

    # Validation runs on the freshly reset platforms (reset re-applies each
    # member's ambient and hand contact, which is exactly the state that must
    # agree for a shared factorization); no trace step has executed yet, so
    # callers can still fall back to sequential execution safely.
    _validate_members(members)

    template = members[0].platform
    net = template.network
    solver = template.solver
    table = template.freq_table
    cpu_model = template.power_model.cpu
    power_model = template.power_model
    charger = power_model.charger
    battery = template.battery
    carry_over = template.cpu.carry_over
    max_backlog = template.cpu.max_backlog

    internal_index = {name: i for i, name in enumerate(net.internal_names)}
    cpu_i = internal_index["cpu"]
    battery_i = internal_index["battery"]
    back_i = internal_index["back_cover"]
    screen_i = internal_index["screen"]
    board_i = internal_index["board"]

    # -- shared per-level power constants (python-float exact) -----------------
    freqs_khz = np.array(table.frequencies_khz, dtype=np.int64)
    max_freq_khz = table.max_frequency_khz
    # dynamic_power(opp, 1.0) == ((C_eff * V^2) * f) — the prefix of the
    # scalar expression ((C_eff * V^2) * f) * util, so multiplying by util
    # afterwards reproduces the scalar result bit-for-bit.
    dyn_k = np.array(
        [cpu_model.dynamic_power(table[level], 1.0) for level in range(len(table))]
    )
    volt_factor = np.array(
        [table[level].voltage_v / cpu_model.reference_voltage_v for level in range(len(table))]
    )
    leak_coeff = cpu_model.leakage_temp_coeff
    leak_ref = cpu_model.reference_temp_c
    leak0 = cpu_model.leakage_at_ref_w
    idle_w = cpu_model.idle_power_w

    # -- per-member state ------------------------------------------------------
    temps = np.stack(
        [member.platform.network.temperatures_vector for member in members], axis=1
    )
    levels = np.array([member.platform.cpu.level for member in members], dtype=np.int64)
    backlog = np.zeros(n_members)
    soc = np.array([member.platform.battery.state_of_charge for member in members])

    # -- pre-drawn sensor noise ------------------------------------------------
    # One block draw per (member, sensor) consumes each seeded generator
    # exactly like the scalar engine's one-draw-per-step reads.
    sensor_specs = []  # (name, node_index, offset, quantization, noise (N, n_steps))
    for s_idx, name in enumerate(template.sensors.sensors):
        sensor0 = template.sensors.sensors[name]
        noise = np.zeros((n_members, n_steps))
        if sensor0.noise_std_c > 0:
            for m_idx, member in enumerate(members):
                noise[m_idx] = member.platform.sensors.sensors[name].draw_noise(n_steps)
        sensor_specs.append(
            (name, internal_index[sensor0.node], sensor0.offset_c, sensor0.quantization_c, noise)
        )

    results = [
        SimulationResult(
            workload_name=trace.name,
            governor_name=member.governor_label(),
            dt_s=dt,
        )
        for member in members
    ]

    hand = template.hand
    time_s = 0.0
    no_decision = ManagerDecision(level_cap=None)
    has_managers = any(member.thermal_manager is not None for member in members)
    loggers = [
        (i, member.logger) for i, member in enumerate(members) if member.logger is not None
    ]
    node_power = np.zeros((temps.shape[0], n_members))

    # Homogeneous stock-ondemand populations take a fully vectorized governor
    # path (exact replica of OndemandGovernor._target_level + the level cap);
    # mixed or custom governors fall back to per-member select_level calls.
    governors = [member.governor for member in members]
    fast_ondemand = all(type(g) is OndemandGovernor for g in governors) and (
        len(
            {
                (g.up_threshold, g.down_threshold, g.down_step_levels)
                for g in governors
            }
        )
        == 1
    )
    if fast_ondemand:
        up_threshold = governors[0].up_threshold
        down_threshold = governors[0].down_threshold
        down_step_levels = governors[0].down_step_levels
        max_level = table.max_level

    for t, sample in enumerate(trace):
        # Hand contact can change between windows (shared trace — all members
        # toggle together); the conductance change bumps the network's matrix
        # version and the solver refactors on the next solve.
        if sample.touching != hand.touching:
            hand.touching = sample.touching
            hand.apply(net)

        # -- CPU window (Cpu.run_window, vectorized) ---------------------------
        demand = min(max(sample.cpu_demand, 0.0), 1.0)
        total_demand = demand + backlog if carry_over else np.full(n_members, demand)
        freq_khz = freqs_khz[levels]
        capacity = freq_khz / max_freq_khz
        delivered = np.minimum(total_demand, capacity)
        utilization = np.minimum(1.0, total_demand / capacity)
        leftover = np.maximum(0.0, total_demand - delivered)
        backlog = np.minimum(leftover, max_backlog) if carry_over else backlog

        # -- power model (PlatformPowerModel.evaluate, vectorized) -------------
        die_temp = temps[cpu_i]
        util_clamped = np.minimum(np.maximum(utilization, 0.0), 1.0)
        dyn_w = dyn_k[levels] * util_clamped
        # math.exp, not np.exp: numpy's vectorized exp differs from libm in
        # the last ulp, which would break bitwise parity with the scalar path.
        temp_factor = np.array(
            [math.exp(leak_coeff * (td - leak_ref)) for td in die_temp.tolist()]
        )
        leak_w = leak0 * temp_factor * volt_factor[levels]
        cpu_w = idle_w + dyn_w + leak_w
        gpu_w = power_model.gpu.power(sample.gpu_activity)
        display_w = power_model.display.power(sample.screen_on, sample.brightness)
        radio_w = power_model.radio.power(sample.radio_activity)
        platform_draw = cpu_w + gpu_w + display_w + radio_w
        if sample.charging:
            battery_w = np.full(n_members, charger.charge_power_w * charger.charge_loss_fraction)
        else:
            battery_w = np.maximum(platform_draw, 0.0) * charger.discharge_loss_fraction
        total_w = platform_draw + battery_w
        soc_w = cpu_w + gpu_w

        # -- thermal (one population solve) ------------------------------------
        # node_power rows other than the four below stay zero for the whole run.
        node_power[cpu_i] = soc_w
        node_power[screen_i] = 0.65 * display_w
        node_power[board_i] = radio_w + 0.35 * display_w
        node_power[battery_i] = battery_w
        temps = solver.step_many(dt, node_power, temps, exact=exact)

        # -- battery SoC (Battery.step, vectorized) ----------------------------
        draw_param = total_w - battery_w
        net_w = -np.maximum(draw_param, 0.0)
        if sample.charging:
            net_w = net_w + np.where(
                soc >= 0.995, 0.0, battery.charge_power_w * battery.charge_efficiency
            )
        delta_wh = net_w * dt / 3600.0
        soc = np.minimum(1.0, np.maximum(0.0, soc + delta_wh / battery.capacity_wh))

        # -- sensors (pre-drawn noise, vectorized quantization) ----------------
        reading_arrays = []
        for name, node_idx, offset, quantization, noise in sensor_specs:
            value = temps[node_idx] + offset
            value = value + noise[:, t]
            if quantization > 0:
                value = np.rint(value / quantization) * quantization
            reading_arrays.append((name, value))

        time_s += dt

        # Bulk-convert the per-member arrays once per step; .tolist() yields
        # python ints/floats with the exact same values as scalar extraction.
        util_list = utilization.tolist()
        freq_list = freq_khz.tolist()
        level_list = levels.tolist()
        delivered_list = delivered.tolist()
        total_w_list = total_w.tolist()
        cpu_temp_list = temps[cpu_i].tolist()
        battery_temp_list = temps[battery_i].tolist()
        skin_temp_list = temps[back_i].tolist()
        screen_temp_list = temps[screen_i].tolist()
        reading_lists = [(name, value.tolist()) for name, value in reading_arrays]
        sensor_values = dict(reading_lists)
        sens_cpu = sensor_values.get("cpu", cpu_temp_list)
        sens_battery = sensor_values.get("battery", battery_temp_list)
        sens_skin = sensor_values.get("skin", skin_temp_list)
        sens_screen = sensor_values.get("screen", screen_temp_list)

        # -- managers observe (may install/remove frequency caps) --------------
        decisions = None
        if has_managers:
            decisions = []
            for i, member in enumerate(members):
                if member.thermal_manager is None:
                    decisions.append(no_decision)
                    continue
                readings = {name: values[i] for name, values in reading_lists}
                decision = member.thermal_manager.observe(
                    time_s=time_s,
                    sensor_readings=readings,
                    utilization=util_list[i],
                    frequency_khz=float(freq_list[i]),
                )
                member.governor.set_level_cap(decision.level_cap)
                decisions.append(decision)

        # -- loggers -----------------------------------------------------------
        for i, logger in loggers:
            readings = {name: values[i] for name, values in reading_lists}
            logger.maybe_log(
                time_s=time_s,
                benchmark=trace.name,
                sensor_readings=readings,
                utilization=util_list[i],
                frequency_khz=float(freq_list[i]),
            )

        # -- governors pick the level for the next window ----------------------
        if fast_ondemand:
            # Exact vectorization of OndemandGovernor._target_level: jump to
            # the top above up_threshold, straight to the load-proportional
            # level below down_threshold, step down gradually in between —
            # then apply each member's current level cap.
            target_khz = np.rint((utilization / up_threshold) * max_freq_khz)
            proportional = np.minimum(
                np.searchsorted(freqs_khz, target_khz, side="left"), max_level
            )
            stepped = np.where(
                proportional < levels,
                np.maximum(proportional, levels - down_step_levels),
                proportional,
            )
            uncapped = np.where(
                utilization >= up_threshold,
                max_level,
                np.where(utilization <= down_threshold, proportional, stepped),
            )
            if has_managers:
                caps = np.array([g.level_cap for g in governors], dtype=np.int64)
                levels = np.minimum(uncapped, caps)
            else:
                # Without managers nothing ever installs a cap.
                levels = uncapped
        else:
            for i, member in enumerate(members):
                observation = GovernorObservation(
                    utilization=util_list[i],
                    current_level=level_list[i],
                    time_s=time_s,
                    dt_s=dt,
                )
                levels[i] = member.governor.select_level(observation)

        # -- per-member step records -------------------------------------------
        for i, member in enumerate(members):
            governor = member.governor
            decision = decisions[i] if decisions is not None else no_decision
            results[i].append(
                StepRecord(
                    time_s=time_s,
                    frequency_khz=freq_list[i],
                    frequency_level=level_list[i],
                    level_cap=governor.level_cap,
                    utilization=util_list[i],
                    demand=demand,
                    delivered_work=delivered_list[i],
                    power_w=total_w_list[i],
                    cpu_temp_c=cpu_temp_list[i],
                    battery_temp_c=battery_temp_list[i],
                    skin_temp_c=skin_temp_list[i],
                    screen_temp_c=screen_temp_list[i],
                    sensor_cpu_temp_c=sens_cpu[i],
                    sensor_battery_temp_c=sens_battery[i],
                    sensor_skin_temp_c=sens_skin[i],
                    sensor_screen_temp_c=sens_screen[i],
                    predicted_skin_temp_c=decision.predicted_skin_temp_c,
                    predicted_screen_temp_c=decision.predicted_screen_temp_c,
                    usta_active=decision.active and governor.is_capped,
                    comfort_limit_c=decision.comfort_limit_c,
                )
            )

    # -- write final state back to the member platforms ------------------------
    # A sequential run leaves every platform warm (final temperatures, SoC,
    # CPU level/backlog, hand contact, elapsed time); mirror that so warm
    # restarts and re-validation behave identically after a batched run.
    final_levels = levels.tolist()
    final_backlog = backlog.tolist()
    final_soc = soc.tolist()
    for i, member in enumerate(members):
        platform = member.platform
        platform.hand.touching = hand.touching
        if platform.hand is not hand:
            platform.hand.apply(platform.network)
        platform.network.apply_temperature_vector(temps[:, i])
        platform.cpu.level = final_levels[i]
        platform.cpu._backlog = final_backlog[i]
        platform.battery.state_of_charge = final_soc[i]
        platform._time_s = time_s

    return results
