"""Vectorized population simulation — heterogeneous structure-of-arrays batching.

The paper's sweeps replay workload traces against many device instances that
differ in seed, governor configuration, USTA comfort limit — and, in any
realistic evaluation grid, in the *trace itself*.  Run serially, each instance
pays the full per-step Python cost; run here, the N instances march through
their traces in lockstep and the expensive parts of the device step — the
implicit thermal solve, the CPU window, the power model, the sensor models —
are evaluated once per tick across the whole population with numpy.

:func:`simulate_population_mixed` is the general engine: every member brings
its own trace (materialised up front into :class:`~repro.workloads.trace.
TraceArrays` columns and stacked into padded step-major ``(n_steps,
n_members)`` matrices, so each tick reads one contiguous row across the live
members), members whose traces end early drop out of the live prefix instead
of forcing the batch to its longest member, and per-tick hand-contact state is
allowed to differ across members — the thermal solve partitions the live set
between two canonical cached-LU factorizations (touching / not touching).
:func:`simulate_population` is the same-trace special case, kept as the
historical entry point.

Per-step record data is staged in a :class:`~repro.sim.results.
ColumnarRecordBuffer` (one numpy column per :class:`StepRecord` field);
records are only materialised per member at the end, so the hot loop
allocates ~zero Python objects per member-step.

Bit-exactness is a hard requirement (the batched runtime must be a drop-in
replacement for N sequential :meth:`Simulator.run` calls), which dictates a
few implementation choices:

* the thermal solve reuses cached LU factorizations but back-substitutes per
  column (`exact=True`), because blocked multi-RHS LAPACK calls differ from
  the scalar path in the last ulp;
* hand-contact toggling must round-trip bitwise on the conductance matrices
  (verified up front), so the two canonical factorizations reproduce exactly
  the matrices a scalar run re-factors after each toggle;
* CPU leakage uses ``math.exp`` per instance (numpy's vectorized ``exp`` is
  not bit-identical to libm);
* sensor noise is pre-drawn per (instance, sensor) in one block from the same
  seeded generators the scalar path uses — a block draw consumes the
  generator stream exactly like repeated scalar draws;
* every elementwise expression mirrors the operation order of the scalar
  model code, because float addition and multiplication are not associative.

Governors and thermal managers keep their (cheap) per-instance Python
implementations, so any :class:`~repro.governors.base.Governor` subclass or
:class:`~repro.sim.engine.ThermalManager` works unchanged; homogeneous stock
ondemand populations additionally take a fully vectorized governor path.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..device.platform import DevicePlatform
from ..governors.base import Governor, GovernorObservation
from ..governors.ondemand import OndemandGovernor
from ..sim.engine import ThermalManager
from ..sim.logger import SystemLogger
from ..sim.results import ColumnarRecordBuffer, SimulationResult
from ..thermal.ambient import HandContact
from ..thermal.solver import ThermalSolver
from ..workloads.trace import WorkloadTrace

__all__ = [
    "PopulationMember",
    "VectorizationError",
    "simulate_population",
    "simulate_population_mixed",
]


class VectorizationError(RuntimeError):
    """The member set cannot be integrated as one population.

    Raised during validation, after the members have been reset but before
    any trace step has executed, so callers can safely fall back to
    sequential execution (which resets again).
    """


@dataclass
class PopulationMember:
    """One device instance of a batched population.

    Attributes:
        platform: the member's simulated handset (provides seeded sensors,
            initial state and the shared hardware configuration).
        governor: the member's DVFS policy (exclusive to this member).
        thermal_manager: optional USTA-style manager (exclusive to this member).
        logger: optional system logger filled during the run.
        initial_temps: optional initial *internal* node temperatures (°C).
    """

    platform: DevicePlatform
    governor: Governor
    thermal_manager: Optional[ThermalManager] = None
    logger: Optional[SystemLogger] = None
    initial_temps: Optional[Mapping[str, float]] = None

    def governor_label(self) -> str:
        """Same label :meth:`SimulationKernel.governor_label` produces."""
        label = self.governor.name
        if self.thermal_manager is not None:
            manager_name = getattr(
                self.thermal_manager, "name", type(self.thermal_manager).__name__
            )
            label = f"{manager_name}+{label}"
        return label


def _cpu_config(platform: DevicePlatform) -> Tuple:
    table = platform.freq_table
    return (
        table.frequencies_khz,
        tuple(table.voltage_at(level) for level in range(len(table))),
        platform.cpu.carry_over,
        platform.cpu.max_backlog,
    )


def _sensor_config(platform: DevicePlatform) -> Tuple:
    return tuple(
        (s.name, s.node, s.noise_std_c, s.quantization_c, s.offset_c)
        for s in platform.sensors.sensors.values()
    )


def _validate_members(members: Sequence[PopulationMember]) -> None:
    """Check that all members share one hardware configuration.

    The population shares the canonical thermal factorizations and a single
    set of per-level power constants, so everything except seeds, traces,
    governors, managers and initial internal temperatures must be identical.
    Feedback models, adapters and other *per-member state* inside the
    managers are deliberately not compared — seeds and learned limits are
    state, not structure, and managers run per member anyway.
    """
    if not members:
        raise VectorizationError("a population needs at least one member")
    template = members[0].platform
    net = template.network
    if template.solver.method != "implicit":
        raise VectorizationError("all members must use the implicit solver")
    for member in members[1:]:
        p = member.platform
        if p.solver.method != "implicit":
            raise VectorizationError("all members must use the implicit solver")
        if not (
            np.array_equal(p.network.capacitances, net.capacitances)
            and np.array_equal(p.network.conductance_matrix, net.conductance_matrix)
            and np.array_equal(p.network.boundary_coupling, net.boundary_coupling)
            and p.network.internal_names == net.internal_names
            and p.network.boundary_names == net.boundary_names
        ):
            raise VectorizationError("members have different thermal networks")
        if not np.array_equal(
            p.network.boundary_temperatures_vector, net.boundary_temperatures_vector
        ):
            raise VectorizationError(
                "members have different boundary temperatures (ambient/hand)"
            )
        if p.power_model != template.power_model:
            raise VectorizationError("members have different power models")
        if p.hand != template.hand:
            raise VectorizationError("members have different hand-contact models")
        if p.battery != template.battery:
            raise VectorizationError("members have different battery models")
        if _cpu_config(p) != _cpu_config(template):
            raise VectorizationError("members have different CPU/frequency tables")
        if _sensor_config(p) != _sensor_config(template):
            raise VectorizationError("members have different sensor configurations")
    internal = set(template.network.internal_names)
    for sensor in template.sensors.sensors.values():
        if sensor.node not in internal:
            raise VectorizationError(
                f"sensor {sensor.name!r} observes non-internal node {sensor.node!r}"
            )
    seen_governors: Dict[int, int] = {}
    seen_managers: Dict[int, int] = {}
    for member in members:
        if id(member.governor) in seen_governors:
            raise VectorizationError("two members share one governor instance")
        seen_governors[id(member.governor)] = 1
        if member.thermal_manager is not None:
            if id(member.thermal_manager) in seen_managers:
                raise VectorizationError("two members share one thermal manager instance")
            seen_managers[id(member.thermal_manager)] = 1
        if member.initial_temps:
            boundary = set(member.platform.network.boundary_names)
            if any(name in boundary for name in member.initial_temps):
                raise VectorizationError(
                    "per-member boundary temperatures break the shared factorization"
                )


def _hand_state_solvers(template: DevicePlatform) -> Dict[bool, ThermalSolver]:
    """The two canonical thermal solvers (hand touching / not touching).

    A scalar run toggles the hand coupling on its own network in place, which
    rewrites the conductance matrices with ``+=`` deltas; for the batch to
    share one factorization per touch state, those toggles must round-trip
    bitwise (so every member in a given touch state sits on the *same*
    matrix, however many times its trace has toggled).  The round trip is
    probed on a deep copy of the template network — the members' own networks
    are never touched — and a drift raises :class:`VectorizationError` so
    callers fall back to the scalar engine instead of silently diverging.
    """
    net = template.network
    hand = template.hand
    base_state = hand.touching
    probe = copy.deepcopy(net)
    probe_hand = HandContact(
        contact_node=hand.contact_node,
        conductance_w_per_c=hand.conductance_w_per_c,
        touching=not base_state,
    )
    probe_hand.apply(probe)
    probe_hand.touching = base_state
    probe_hand.apply(probe)
    if not (
        np.array_equal(probe.conductance_matrix, net.conductance_matrix)
        and np.array_equal(probe.boundary_coupling, net.boundary_coupling)
    ):
        raise VectorizationError(
            "hand-contact toggling does not round-trip bitwise on this network; "
            "falling back to scalar execution"
        )
    # Toggling is deterministic, so re-applying the flip reproduces the
    # once-toggled matrices exactly.
    probe_hand.touching = not base_state
    probe_hand.apply(probe)
    return {
        base_state: ThermalSolver(copy.deepcopy(net)),
        (not base_state): ThermalSolver(probe),
    }


def _stack_trace_arrays(traces: Sequence[WorkloadTrace], max_steps: int) -> Dict[str, np.ndarray]:
    """Pad and stack every member's trace columns, step-major: (n_steps, n_members).

    Step-major layout makes the per-tick access pattern — one step across the
    live member prefix — a contiguous row view instead of a strided column.
    """
    n = len(traces)
    stacked = {
        "cpu_demand": np.zeros((max_steps, n)),
        "gpu_activity": np.zeros((max_steps, n)),
        "radio_activity": np.zeros((max_steps, n)),
        "brightness": np.zeros((max_steps, n)),
        "screen_on": np.zeros((max_steps, n), dtype=bool),
        "charging": np.zeros((max_steps, n), dtype=bool),
        "touching": np.zeros((max_steps, n), dtype=bool),
    }
    for member, trace in enumerate(traces):
        arrays = trace.as_arrays()
        count = len(arrays)
        for name, column in stacked.items():
            column[:count, member] = getattr(arrays, name)
    # The scalar CPU window clamps demand into [0, 1]; samples are validated
    # into that range already, so this is a bitwise no-op kept for mirroring.
    stacked["cpu_demand"] = np.minimum(np.maximum(stacked["cpu_demand"], 0.0), 1.0)
    return stacked


def simulate_population(
    trace: WorkloadTrace,
    members: Sequence[PopulationMember],
    exact: bool = True,
) -> List[SimulationResult]:
    """Replay one shared trace against N device instances in lockstep.

    The same-trace special case of :func:`simulate_population_mixed`, kept as
    the historical entry point.  Semantically equivalent to
    ``[Simulator(m...).run(trace) for m in members]`` and — with
    ``exact=True`` — bit-for-bit identical to it.
    """
    return simulate_population_mixed([trace] * len(members), members, exact=exact)


def simulate_population_mixed(
    traces: Sequence[WorkloadTrace],
    members: Sequence[PopulationMember],
    exact: bool = True,
) -> List[SimulationResult]:
    """Advance a heterogeneous population — one trace per member — as one batch.

    Semantically equivalent to ``[Simulator(m...).run(t) for t, m in
    zip(traces, members)]`` and — with ``exact=True`` — bit-for-bit identical
    to it, but the per-step device work is evaluated across the whole live
    population at once:

    * traces of different lengths are padded; members are ordered internally
      by descending length so the live set is always a contiguous prefix, and
      a member simply drops out of it when its trace ends;
    * per-tick hand-contact state may differ across members; the thermal
      solve partitions the live set between the two canonical cached-LU
      factorizations (see :func:`_hand_state_solvers`);
    * per-step record data is staged columnar and materialised per member
      only at the end (:class:`~repro.sim.results.ColumnarRecordBuffer`).

    Args:
        traces: one workload trace per member (sharing one object is fine and
            materialises it once).  All traces must share the sample period.
        members: the population (platforms must share one hardware
            configuration; see :class:`VectorizationError`).
        exact: per-column thermal back-substitution for bitwise parity with
            the scalar engine (default); ``False`` uses blocked solves, which
            are faster for large populations but may differ in the last ulp.

    Returns:
        One :class:`SimulationResult` per member, in member order.
    """
    n_members = len(members)
    if len(traces) != n_members:
        raise VectorizationError("one workload trace per member is required")
    if n_members == 0:
        raise VectorizationError("a population needs at least one member")
    dt = traces[0].sample_period_s
    for trace in traces:
        if trace.sample_period_s != dt:
            raise VectorizationError("members have different trace sample periods")
        if len(trace) == 0:
            raise VectorizationError(f"trace {trace.name!r} is empty")

    # -- reset every member exactly like SimulationKernel.reset ---------------
    for member in members:
        member.platform.reset(dict(member.initial_temps) if member.initial_temps else None)
        member.governor.reset()
        if member.thermal_manager is not None:
            member.thermal_manager.reset()
        if member.logger is not None:
            member.logger.reset()

    # Validation runs on the freshly reset platforms (reset re-applies each
    # member's ambient and hand contact, which is exactly the state that must
    # agree for the shared factorizations); no trace step has executed yet, so
    # callers can still fall back to sequential execution safely.
    _validate_members(members)

    # -- internal ordering: longest trace first ---------------------------------
    lengths = np.array([len(trace) for trace in traces], dtype=np.int64)
    order = np.argsort(-lengths, kind="stable")
    position = np.empty(n_members, dtype=np.int64)
    position[order] = np.arange(n_members)
    s_members = [members[i] for i in order]
    s_traces = [traces[i] for i in order]
    s_lengths = lengths[order]
    max_steps = int(s_lengths[0])
    # Live-member count per step: lengths are descending, so the live set at
    # step t is the prefix of members whose length exceeds t.
    ascending = s_lengths[::-1]
    n_active_at = n_members - np.searchsorted(ascending, np.arange(max_steps), side="right")

    template = s_members[0].platform
    net = template.network
    table = template.freq_table
    cpu_model = template.power_model.cpu
    power_model = template.power_model
    charger = power_model.charger
    battery = template.battery
    carry_over = template.cpu.carry_over
    max_backlog = template.cpu.max_backlog
    solver_by_touch = _hand_state_solvers(template)

    internal_index = {name: i for i, name in enumerate(net.internal_names)}
    cpu_i = internal_index["cpu"]
    battery_i = internal_index["battery"]
    back_i = internal_index["back_cover"]
    screen_i = internal_index["screen"]
    board_i = internal_index["board"]

    # -- shared per-level power constants (python-float exact) -----------------
    freqs_khz = np.array(table.frequencies_khz, dtype=np.int64)
    max_freq_khz = table.max_frequency_khz
    max_level = table.max_level
    # dynamic_power(opp, 1.0) == ((C_eff * V^2) * f) — the prefix of the
    # scalar expression ((C_eff * V^2) * f) * util, so multiplying by util
    # afterwards reproduces the scalar result bit-for-bit.
    dyn_k = np.array(
        [cpu_model.dynamic_power(table[level], 1.0) for level in range(len(table))]
    )
    volt_factor = np.array(
        [table[level].voltage_v / cpu_model.reference_voltage_v for level in range(len(table))]
    )
    leak_coeff = cpu_model.leakage_temp_coeff
    leak_ref = cpu_model.reference_temp_c
    leak0 = cpu_model.leakage_at_ref_w
    idle_w = cpu_model.idle_power_w
    gpu_idle = power_model.gpu.idle_power_w
    gpu_span = power_model.gpu.max_power_w - power_model.gpu.idle_power_w
    display_base = power_model.display.base_power_w
    display_span = power_model.display.max_backlight_power_w
    radio_idle = power_model.radio.idle_power_w
    radio_span = power_model.radio.max_power_w - power_model.radio.idle_power_w
    charge_heat_w = charger.charge_power_w * charger.charge_loss_fraction
    discharge_loss = charger.discharge_loss_fraction
    battery_charge_w = battery.charge_power_w * battery.charge_efficiency

    # -- per-member state (internal, longest-first order) ----------------------
    temps = np.stack(
        [member.platform.network.temperatures_vector for member in s_members], axis=1
    )
    levels = np.array([member.platform.cpu.level for member in s_members], dtype=np.int64)
    caps = np.full(n_members, max_level, dtype=np.int64)
    backlog = np.zeros(n_members)
    soc = np.array([member.platform.battery.state_of_charge for member in s_members])

    cols = _stack_trace_arrays(s_traces, max_steps)
    demand_mat = cols["cpu_demand"]
    gpu_mat = cols["gpu_activity"]
    radio_mat = cols["radio_activity"]
    brightness_mat = cols["brightness"]
    screen_on_mat = cols["screen_on"]
    charging_mat = cols["charging"]
    touching_mat = cols["touching"]

    # -- pre-drawn sensor noise ------------------------------------------------
    # One block draw per (member, sensor) consumes each seeded generator
    # exactly like the scalar engine's one-draw-per-step reads.
    sensor_specs = []  # (name, node_index, offset, quantization, noise (N, n_steps))
    for name in template.sensors.sensors:
        sensor0 = template.sensors.sensors[name]
        noise = np.zeros((max_steps, n_members))
        if sensor0.noise_std_c > 0:
            for row, member in enumerate(s_members):
                count = int(s_lengths[row])
                noise[:count, row] = member.platform.sensors.sensors[name].draw_noise(count)
        sensor_specs.append(
            (name, internal_index[sensor0.node], sensor0.offset_c, sensor0.quantization_c, noise)
        )
    record_sensor_fields = (
        ("sensor_cpu_temp_c", "cpu", cpu_i),
        ("sensor_battery_temp_c", "battery", battery_i),
        ("sensor_skin_temp_c", "skin", back_i),
        ("sensor_screen_temp_c", "screen", screen_i),
    )

    manager_rows = [
        (row, member) for row, member in enumerate(s_members) if member.thermal_manager is not None
    ]
    logger_rows = [
        (row, member.logger) for row, member in enumerate(s_members) if member.logger is not None
    ]
    has_managers = bool(manager_rows)
    needs_scalar_views = bool(manager_rows) or bool(logger_rows)

    buf = ColumnarRecordBuffer(n_members, max_steps, with_decisions=has_managers)
    times: List[float] = []
    node_power = np.zeros((temps.shape[0], n_members))

    # Homogeneous stock-ondemand populations take a fully vectorized governor
    # path (exact replica of OndemandGovernor._target_level + the level cap);
    # mixed or custom governors fall back to per-member select_level calls.
    governors = [member.governor for member in s_members]
    fast_ondemand = all(type(g) is OndemandGovernor for g in governors) and (
        len(
            {
                (g.up_threshold, g.down_threshold, g.down_step_levels)
                for g in governors
            }
        )
        == 1
    )
    if fast_ondemand:
        up_threshold = governors[0].up_threshold
        down_threshold = governors[0].down_threshold
        down_step_levels = governors[0].down_step_levels

    time_s = 0.0
    for t in range(max_steps):
        n_act = int(n_active_at[t])
        live = slice(0, n_act)

        # -- CPU window (Cpu.run_window, vectorized) ---------------------------
        demand = demand_mat[t, live]
        total_demand = demand + backlog[live] if carry_over else demand
        live_levels = levels[live]
        freq_khz = freqs_khz[live_levels]
        capacity = freq_khz / max_freq_khz
        delivered = np.minimum(total_demand, capacity)
        utilization = np.minimum(1.0, total_demand / capacity)
        leftover = np.maximum(0.0, total_demand - delivered)
        if carry_over:
            backlog[live] = np.minimum(leftover, max_backlog)

        # -- power model (PlatformPowerModel.evaluate, vectorized) -------------
        die_temp = temps[cpu_i, live]
        util_clamped = np.minimum(np.maximum(utilization, 0.0), 1.0)
        dyn_w = dyn_k[live_levels] * util_clamped
        # math.exp, not np.exp: numpy's vectorized exp differs from libm in
        # the last ulp, which would break bitwise parity with the scalar path.
        temp_factor = np.array(
            [math.exp(leak_coeff * (td - leak_ref)) for td in die_temp.tolist()]
        )
        leak_w = leak0 * temp_factor * volt_factor[live_levels]
        cpu_w = idle_w + dyn_w + leak_w
        gpu_w = gpu_idle + gpu_mat[t, live] * gpu_span
        display_w = np.where(
            screen_on_mat[t, live], display_base + brightness_mat[t, live] * display_span, 0.0
        )
        radio_w = radio_idle + radio_mat[t, live] * radio_span
        platform_draw = cpu_w + gpu_w + display_w + radio_w
        charging_t = charging_mat[t, live]
        battery_w = np.where(
            charging_t, charge_heat_w, np.maximum(platform_draw, 0.0) * discharge_loss
        )
        total_w = platform_draw + battery_w
        soc_w = cpu_w + gpu_w

        # -- thermal (one solve per live hand-contact state) -------------------
        # node_power rows other than the four below stay zero for the whole run.
        node_power[cpu_i, live] = soc_w
        node_power[screen_i, live] = 0.65 * display_w
        node_power[board_i, live] = radio_w + 0.35 * display_w
        node_power[battery_i, live] = battery_w
        touch_t = touching_mat[t, live]
        if touch_t.all():
            temps[:, live] = solver_by_touch[True].step_many(
                dt, node_power[:, live], temps[:, live], exact=exact
            )
        elif not touch_t.any():
            temps[:, live] = solver_by_touch[False].step_many(
                dt, node_power[:, live], temps[:, live], exact=exact
            )
        else:
            for state in (True, False):
                members_in_state = np.flatnonzero(touch_t == state)
                temps[:, members_in_state] = solver_by_touch[state].step_many(
                    dt, node_power, temps, exact=exact, columns=members_in_state
                )

        # -- battery SoC (Battery.step, vectorized) ----------------------------
        draw_param = total_w - battery_w
        net_w = -np.maximum(draw_param, 0.0)
        live_soc = soc[live]
        net_w = net_w + np.where(
            charging_t, np.where(live_soc >= 0.995, 0.0, battery_charge_w), 0.0
        )
        delta_wh = net_w * dt / 3600.0
        soc[live] = np.minimum(1.0, np.maximum(0.0, live_soc + delta_wh / battery.capacity_wh))

        # -- sensors (pre-drawn noise, vectorized quantization) ----------------
        sensor_arrays: Dict[str, np.ndarray] = {}
        for name, node_idx, offset, quantization, noise in sensor_specs:
            value = temps[node_idx, live] + offset
            value = value + noise[t, live]
            if quantization > 0:
                value = np.rint(value / quantization) * quantization
            sensor_arrays[name] = value

        time_s += dt
        times.append(time_s)

        # -- columnar record staging (the hot loop builds no record objects) ---
        buf.frequency_khz[t, live] = freq_khz
        buf.frequency_level[t, live] = live_levels
        buf.utilization[t, live] = utilization
        buf.demand[t, live] = demand
        buf.delivered_work[t, live] = delivered
        buf.power_w[t, live] = total_w
        buf.cpu_temp_c[t, live] = temps[cpu_i, live]
        buf.battery_temp_c[t, live] = temps[battery_i, live]
        buf.skin_temp_c[t, live] = temps[back_i, live]
        buf.screen_temp_c[t, live] = temps[screen_i, live]
        for field, sensor_name, node_idx in record_sensor_fields:
            column = sensor_arrays.get(sensor_name)
            getattr(buf, field)[t, live] = column if column is not None else temps[node_idx, live]

        # Per-member Python views are only materialised for components that
        # genuinely cannot batch (managers, loggers, custom governors).
        if needs_scalar_views or not fast_ondemand:
            util_list = utilization.tolist()
            freq_list = freq_khz.tolist()
            level_list = live_levels.tolist()
            reading_lists = [
                (name, sensor_arrays[name].tolist()) for name, _, _, _, _ in sensor_specs
            ]

        # -- managers observe (may install/remove frequency caps) --------------
        if has_managers:
            for row, member in manager_rows:
                if row >= n_act:
                    break
                readings = {name: values[row] for name, values in reading_lists}
                decision = member.thermal_manager.observe(
                    time_s=time_s,
                    sensor_readings=readings,
                    utilization=util_list[row],
                    frequency_khz=float(freq_list[row]),
                )
                member.governor.set_level_cap(decision.level_cap)
                caps[row] = member.governor.level_cap
                buf.usta_active[t, row] = decision.active and member.governor.is_capped
                buf.predicted_skin_temp_c[t, row] = decision.predicted_skin_temp_c
                buf.predicted_screen_temp_c[t, row] = decision.predicted_screen_temp_c
                buf.comfort_limit_c[t, row] = decision.comfort_limit_c
        buf.level_cap[t, live] = caps[live]

        # -- loggers -----------------------------------------------------------
        for row, logger in logger_rows:
            if row >= n_act:
                break
            readings = {name: values[row] for name, values in reading_lists}
            logger.maybe_log(
                time_s=time_s,
                benchmark=s_traces[row].name,
                sensor_readings=readings,
                utilization=util_list[row],
                frequency_khz=float(freq_list[row]),
            )

        # -- governors pick the level for the next window ----------------------
        if fast_ondemand:
            # Exact vectorization of OndemandGovernor._target_level: jump to
            # the top above up_threshold, straight to the load-proportional
            # level below down_threshold, step down gradually in between —
            # then apply each member's current level cap.
            target_khz = np.rint((utilization / up_threshold) * max_freq_khz)
            proportional = np.minimum(
                np.searchsorted(freqs_khz, target_khz, side="left"), max_level
            )
            stepped = np.where(
                proportional < live_levels,
                np.maximum(proportional, live_levels - down_step_levels),
                proportional,
            )
            uncapped = np.where(
                utilization >= up_threshold,
                max_level,
                np.where(utilization <= down_threshold, proportional, stepped),
            )
            if has_managers:
                levels[live] = np.minimum(uncapped, caps[live])
            else:
                # Without managers nothing ever installs a cap.
                levels[live] = uncapped
        else:
            for row in range(n_act):
                observation = GovernorObservation(
                    utilization=util_list[row],
                    current_level=level_list[row],
                    time_s=time_s,
                    dt_s=dt,
                )
                governor = governors[row]
                levels[row] = governor.select_level(observation)
                caps[row] = governor.level_cap

    # -- materialise records per member (the batch/sink boundary) --------------
    results: List[SimulationResult] = []
    for index in range(n_members):
        row = int(position[index])
        member = members[index]
        result = SimulationResult(
            workload_name=traces[index].name,
            governor_name=member.governor_label(),
            dt_s=dt,
        )
        buf.extend_result(result, row, times, int(s_lengths[row]))
        results.append(result)

    # -- write final state back to the member platforms ------------------------
    # A sequential run leaves every platform warm (final temperatures, SoC,
    # CPU level/backlog, hand contact, elapsed time); mirror that so warm
    # restarts and re-validation behave identically after a batched run.
    final_levels = levels.tolist()
    final_backlog = backlog.tolist()
    final_soc = soc.tolist()
    for row, member in enumerate(s_members):
        count = int(s_lengths[row])
        platform = member.platform
        platform.hand.touching = bool(touching_mat[count - 1, row])
        platform.hand.apply(platform.network)
        platform.network.apply_temperature_vector(temps[:, row])
        platform.cpu.level = final_levels[row]
        platform.cpu._backlog = final_backlog[row]
        platform.battery.state_of_charge = final_soc[row]
        platform._time_s = times[count - 1]

    return results
