"""The batch runner: executes an :class:`ExperimentPlan` through an executor.

:func:`run_cell` is the single-cell unit of work — a module-level function so
the process-pool executor can pickle it — and :class:`BatchRunner` streams a
plan through a pluggable executor into a :class:`~repro.runtime.store.ResultStore`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..device.platform import DevicePlatform
from ..sim.engine import Simulator
from ..sim.logger import SystemLogger
from .plan import ExperimentCell, ExperimentPlan
from .store import CellResult, ResultStore

__all__ = ["run_cell", "BatchRunner"]


def _build_platform(cell: ExperimentCell) -> DevicePlatform:
    if cell.platform_factory is not None:
        return cell.platform_factory()
    return DevicePlatform(seed=cell.seed)


def run_cell(cell: ExperimentCell) -> CellResult:
    """Execute one experiment cell from scratch and return its result.

    Builds the trace, a fresh seeded platform, the governor and (optionally)
    the thermal manager and logger described by the cell — whether wired by
    name/factory or declared by a :class:`~repro.api.specs.PolicySpec` —
    then replays the trace through :class:`~repro.sim.engine.Simulator`.
    Deterministic: the same cell always produces the same
    :class:`StepRecord` stream, which is what lets the serial, process-pool
    and vectorized executors be used interchangeably.
    """
    start = time.perf_counter()
    trace = cell.build_trace()
    platform = _build_platform(cell)
    governor = cell.build_governor(table=platform.freq_table)
    manager = cell.build_manager()
    logger = SystemLogger(period_s=cell.log_period_s) if cell.log_period_s is not None else None
    simulator = Simulator(
        platform=platform,
        governor=governor,
        thermal_manager=manager,
        logger=logger,
    )
    result = simulator.run(
        trace,
        initial_temps=dict(cell.initial_temps) if cell.initial_temps else None,
    )
    return CellResult(
        cell=cell,
        result=result,
        logger=logger,
        wall_time_s=time.perf_counter() - start,
    )


#: An executor turns a sequence of cells into a stream of results, preserving
#: input order.  See :mod:`repro.runtime.executors` for implementations.
CellExecutor = Callable[[Iterable[ExperimentCell]], Iterable[CellResult]]


@dataclass
class BatchRunner:
    """Executes experiment plans through a pluggable cell executor.

    Attributes:
        executor: object with an ``execute(cells) -> iterable of CellResult``
            method (``SerialExecutor`` by default — see
            :mod:`repro.runtime.executors` for the process-pool and vectorized
            alternatives).
    """

    executor: Optional[object] = None

    def __post_init__(self) -> None:
        if self.executor is None:
            from .executors import SerialExecutor

            self.executor = SerialExecutor()

    def run(self, plan: ExperimentPlan) -> ResultStore:
        """Execute every cell of the plan and collect the results.

        Results are streamed into the store in plan order regardless of the
        executor's internal scheduling.
        """
        store = ResultStore()
        for cell_result in self.executor.execute(list(plan)):
            store.append(cell_result)
        return store

    @classmethod
    def for_jobs(cls, jobs: Optional[int], approx_solve: bool = False) -> "BatchRunner":
        """A runner matching a CLI ``--jobs`` setting.

        ``jobs`` of ``None``/``0``/``1`` selects the vectorized in-process
        executor (which batches same-trace cells and runs the rest serially);
        anything above 1 selects a process pool of that many workers.

        Args:
            jobs: worker-process count (``None``/``0``/``1`` = in-process).
            approx_solve: let the vectorized executor use the blocked
                (``exact=False``) multi-RHS thermal solve — faster for large
                populations, bit-parity with the scalar engine traded for
                last-ulp-level differences.  Ignored by the process pool.
        """
        from .executors import ProcessPoolCellExecutor, VectorizedExecutor

        if jobs is not None and jobs > 1:
            return cls(executor=ProcessPoolCellExecutor(max_workers=jobs))
        return cls(executor=VectorizedExecutor(exact=not approx_solve))
