"""The batch runner: executes an :class:`ExperimentPlan` through an executor.

:func:`stream_cell` is the single-cell unit of work — it replays one cell and
pushes every step record into a :class:`~repro.runtime.stream.RecordSink` as
it is produced.  :func:`run_cell` is the batch form (stream into an in-memory
collector), kept as a module-level function so the process-pool executor can
pickle it.  :class:`BatchRunner` runs a plan through a pluggable executor,
either collecting a :class:`~repro.runtime.store.ResultStore` (:meth:`run`)
or streaming completed cells into any sink (:meth:`run_stream`) so sweeps
never hold more than ~one cell's records in memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Collection, Iterable, Optional

from ..device.platform import DevicePlatform
from ..sim.engine import Simulator
from ..sim.logger import SystemLogger
from ..workloads.trace import WorkloadTrace
from .plan import ExperimentCell, ExperimentPlan
from .store import CellResult, ResultStore
from .stream import CollectorSink, RecordSink, push_cell_result

__all__ = ["run_cell", "stream_cell", "BatchRunner"]


def _build_platform(cell: ExperimentCell) -> DevicePlatform:
    if cell.platform_factory is not None:
        return cell.platform_factory()
    return DevicePlatform(seed=cell.seed)


def stream_cell(
    cell: ExperimentCell,
    sink: RecordSink,
    trace: Optional["WorkloadTrace"] = None,
) -> None:
    """Execute one experiment cell from scratch, streaming records into a sink.

    Builds the trace, a fresh seeded platform, the governor and (optionally)
    the thermal manager and logger described by the cell — whether wired by
    name/factory or declared by a :class:`~repro.api.specs.PolicySpec` —
    then replays the trace through :meth:`Simulator.iter_records`, emitting
    each :class:`StepRecord` as it is produced.  Deterministic: the same cell
    always produces the same record stream, so streamed and collected
    executions are bit-identical.

    Args:
        cell: the cell to execute.
        sink: destination for the record stream.
        trace: optional pre-built workload trace (must be the cell's own —
            batch planning passes it so fallback cells do not rebuild what
            planning already materialised).
    """
    start = time.perf_counter()
    if trace is None:
        trace = cell.build_trace()
    platform = _build_platform(cell)
    governor = cell.build_governor(table=platform.freq_table)
    manager = cell.build_manager()
    logger = SystemLogger(period_s=cell.log_period_s) if cell.log_period_s is not None else None
    simulator = Simulator(
        platform=platform,
        governor=governor,
        thermal_manager=manager,
        logger=logger,
    )
    sink.begin_cell(
        cell,
        workload_name=trace.name,
        governor_name=simulator.kernel.governor_label(),
        dt_s=trace.sample_period_s,
    )
    for record in simulator.iter_records(
        trace,
        initial_temps=dict(cell.initial_temps) if cell.initial_temps else None,
    ):
        sink.emit(record)
    sink.end_cell(wall_time_s=time.perf_counter() - start, logger=logger)


def run_cell(cell: ExperimentCell, trace: Optional["WorkloadTrace"] = None) -> CellResult:
    """Execute one experiment cell from scratch and return its result.

    The batch form of :func:`stream_cell`: the record stream is collected
    into an in-memory :class:`CellResult`.  Both forms share one execution
    path, which is what keeps them bit-identical.
    """
    collector = CollectorSink()
    stream_cell(cell, collector, trace=trace)
    return collector.results[0]


#: An executor turns a sequence of cells into a stream of results, preserving
#: input order.  See :mod:`repro.runtime.executors` for implementations.
CellExecutor = Callable[[Iterable[ExperimentCell]], Iterable[CellResult]]


@dataclass
class BatchRunner:
    """Executes experiment plans through a pluggable cell executor.

    Attributes:
        executor: object with an ``execute(cells) -> iterable of CellResult``
            method (``SerialExecutor`` by default — see
            :mod:`repro.runtime.executors` for the process-pool and vectorized
            alternatives).  Executors may additionally implement
            ``execute_stream(cells, sink)`` for cell-at-a-time delivery;
            :meth:`run_stream` falls back to forwarding ``execute`` results
            otherwise.
    """

    executor: Optional[object] = None

    def __post_init__(self) -> None:
        if self.executor is None:
            from .executors import SerialExecutor

            self.executor = SerialExecutor()

    def run(self, plan: ExperimentPlan) -> ResultStore:
        """Execute every cell of the plan and collect the results.

        Results are streamed into the store in plan order regardless of the
        executor's internal scheduling.
        """
        store = ResultStore()
        for cell_result in self.executor.execute(list(plan)):
            store.append(cell_result)
        return store

    def run_stream(
        self,
        plan: ExperimentPlan,
        sink: RecordSink,
        skip: Collection[str] = (),
    ) -> int:
        """Execute a plan, streaming completed cells into a sink.

        Unlike :meth:`run`, nothing is accumulated here: each cell's records
        flow into the sink as they complete (record-by-record under the
        serial executor), so the live footprint stays bounded by roughly one
        cell whatever the plan size.

        Args:
            plan: the experiment plan.
            sink: destination for the record stream (e.g. a
                :class:`~repro.runtime.streamstore.StreamingResultStore`).
            skip: cell ids to leave out — pass a streaming store's
                ``completed_cell_ids`` to resume a crashed sweep.

        Returns:
            The number of cells executed (excluding skipped ones).
        """
        skip_set = frozenset(skip)
        cells = [cell for cell in plan if cell.cell_id not in skip_set]
        execute_stream = getattr(self.executor, "execute_stream", None)
        if execute_stream is not None:
            execute_stream(cells, sink)
        else:
            for cell_result in self.executor.execute(cells):
                push_cell_result(sink, cell_result)
        return len(cells)

    @classmethod
    def for_jobs(
        cls,
        jobs: Optional[int],
        approx_solve: bool = False,
        window_steps: Optional[int] = None,
        window_bytes: Optional[int] = None,
    ) -> "BatchRunner":
        """A runner matching a CLI ``--jobs`` setting.

        ``jobs`` of ``None``/``0``/``1`` selects the vectorized in-process
        executor (which batches same-trace cells and runs the rest serially);
        anything above 1 selects a process pool of that many workers.

        Args:
            jobs: worker-process count (``None``/``0``/``1`` = in-process).
            approx_solve: let the vectorized executor use the blocked
                (``exact=False``) multi-RHS thermal solve — faster for large
                populations, bit-parity with the scalar engine traded for
                last-ulp-level differences.  Ignored by the process pool.
            window_steps: explicit step-window length for the vectorized
                executor (``--window-steps``); ``None`` keeps the executor's
                byte-budget default.  Ignored by the process pool.
            window_bytes: staging byte budget for the vectorized executor
                (``--window-bytes``); ``None`` keeps the default.  Ignored by
                the process pool.
        """
        from .executors import ProcessPoolCellExecutor, VectorizedExecutor

        if jobs is not None and jobs > 1:
            return cls(executor=ProcessPoolCellExecutor(max_workers=jobs))
        kwargs = {}
        if window_steps is not None:
            kwargs["window_steps"] = window_steps
        if window_bytes is not None:
            kwargs["max_window_bytes"] = window_bytes
        return cls(executor=VectorizedExecutor(exact=not approx_solve, **kwargs))
