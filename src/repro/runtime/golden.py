"""Golden regression scenarios: committed bit-exact expectations.

The batched runtime's contract is bitwise determinism: the same plan must
produce the same :class:`~repro.sim.results.StepRecord` stream under every
executor, today and after any refactor.  The parity tests check executors
against *each other*; the golden suite additionally pins the records against
**committed** JSONL files (``tests/golden/``), so a change that shifts all
executors together — a reordered float expression, a solver tweak, a changed
default — still trips a test instead of silently rewriting the physics.

Two scenarios, chosen to cover the whole policy stack cheaply:

* ``table1`` — two benchmarks × {baseline ondemand, static default-user
  USTA}, the shape of the paper's headline table;
* ``sweep`` — a three-user same-trace population under *adaptive* USTA
  (``feedback_step`` from a warm start), which exercises the user-feedback
  loop: feedback events, live-limit updates and the adapter spec round-trip.

Both scenarios are fully declarative (policy specs with a deterministic
``trained`` predictor recipe), so the committed cell descriptions are
self-contained and the process-pool executor reproduces them from scratch.

Regenerate after an *intended* numeric change with::

    python -m repro golden --update

The files pin exact float bits for one toolchain (numpy/BLAS); a different
LAPACK build may legitimately differ in the last ulp — regenerate there too.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..api.specs import AdapterSpec, ManagerSpec, PolicySpec, PredictorSpec
from .plan import ExperimentCell, ExperimentPlan
from .runner import BatchRunner
from .store import ResultStore

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_SCENARIOS",
    "golden_plan",
    "run_golden",
    "golden_lines",
    "write_golden",
    "verify_golden",
]

#: Default location of the committed expectation files — anchored to the
#: repository root (three levels above this package), not the CWD, so
#: `repro golden` works from any directory.
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

#: Scenario name → golden file name.
GOLDEN_SCENARIOS: Tuple[str, ...] = ("table1", "sweep")

#: Deterministic, cheap predictor recipe shared by every golden cell: collect
#: one short skype run under the baseline governor, fit linear regression.
_GOLDEN_PREDICTOR = PredictorSpec(
    kind="trained",
    params={
        "model": "linear_regression",
        "seed": 0,
        "duration_scale": 0.05,
        "benchmarks": ["skype"],
    },
)

def _usta_policy(skin_limit_c: float) -> PolicySpec:
    return PolicySpec(
        manager=ManagerSpec(
            "usta",
            params={"skin_limit_c": skin_limit_c},
            predictor=_GOLDEN_PREDICTOR,
        )
    )


def _table1_plan() -> ExperimentPlan:
    plan = ExperimentPlan()
    schemes = (
        ("baseline", PolicySpec()),
        ("usta", _usta_policy(37.0)),
    )
    for benchmark in ("skype", "youtube"):
        for scheme, policy in schemes:
            plan.add(
                ExperimentCell(
                    cell_id=f"{benchmark}/{scheme}",
                    benchmark=benchmark,
                    duration_s=90.0,
                    policy=policy,
                    seed=0,
                    metadata={"benchmark": benchmark, "scheme": scheme},
                )
            )
    return plan


def _sweep_plan() -> ExperimentPlan:
    from ..users.adaptation import WARM_START_TEMPS
    from ..users.population import paper_population

    population = paper_population()
    adapter = AdapterSpec("feedback_step", feedback={"report_period_s": 9.0})
    base = replace(_usta_policy(37.0), adapter=adapter)
    plan = ExperimentPlan()
    for user_id in ("b", "g", "default"):
        plan.add(
            ExperimentCell(
                cell_id=user_id,
                benchmark="skype",
                duration_s=120.0,
                policy=base.for_user(population[user_id]),
                seed=0,
                initial_temps=WARM_START_TEMPS,
                metadata={"user_id": user_id, "scheme": "feedback_step"},
            )
        )
    return plan


def golden_plan(scenario: str) -> ExperimentPlan:
    """The experiment plan behind one golden scenario."""
    if scenario == "table1":
        return _table1_plan()
    if scenario == "sweep":
        return _sweep_plan()
    raise ValueError(
        f"unknown golden scenario {scenario!r}; known: {', '.join(GOLDEN_SCENARIOS)}"
    )


def run_golden(scenario: str, executor: Optional[object] = None) -> ResultStore:
    """Execute one golden scenario (vectorized in-process by default)."""
    runner = BatchRunner(executor=executor) if executor is not None else BatchRunner.for_jobs(None)
    return runner.run(golden_plan(scenario))


def golden_lines(store: ResultStore) -> List[str]:
    """Canonical JSONL lines for a store (wall time zeroed, keys sorted).

    Wall-clock time is the one field of a cell result that legitimately
    differs between runs, so it is stripped before comparison; everything
    else — cell identity, policy spec, every float of every record — must
    match the committed file byte for byte.
    """
    lines = []
    for entry in store:
        stable = replace(entry, wall_time_s=0.0)
        payload = ResultStore._entry_to_jsonable(stable)
        lines.append(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    return lines


def write_golden(directory: Path = GOLDEN_DIR, executor: Optional[object] = None) -> List[Path]:
    """(Re)generate every golden file; returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for scenario in GOLDEN_SCENARIOS:
        path = directory / f"{scenario}.jsonl"
        lines = golden_lines(run_golden(scenario, executor=executor))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        paths.append(path)
    return paths


def verify_golden(
    directory: Path = GOLDEN_DIR, executor: Optional[object] = None
) -> Dict[str, str]:
    """Re-run every scenario and diff against the committed files.

    Returns a mapping of scenario → human-readable problem for every
    mismatch (empty when everything is bit-identical).
    """
    directory = Path(directory)
    problems: Dict[str, str] = {}
    for scenario in GOLDEN_SCENARIOS:
        path = directory / f"{scenario}.jsonl"
        if not path.exists():
            problems[scenario] = f"missing golden file {path} (run golden --update)"
            continue
        expected = path.read_text(encoding="utf-8").splitlines()
        actual = golden_lines(run_golden(scenario, executor=executor))
        if len(actual) != len(expected):
            problems[scenario] = (
                f"{path.name}: {len(expected)} committed cells vs {len(actual)} produced"
            )
            continue
        for index, (want, got) in enumerate(zip(expected, actual)):
            if want != got:
                problems[scenario] = (
                    f"{path.name}: cell #{index} drifted from the committed records"
                )
                break
    return problems
