"""Shared SoA kernels for the USTA policy planes (batch *and* serving).

Two engines keep USTA-family manager state in columnar arrays: the batch
engine's :class:`~repro.runtime.vectorized._PolicyPlane` (owns its members
for one ``simulate_population_mixed`` run) and the serving path's resident
:class:`~repro.api.plane.SessionPlane` (state persists across
``SessionPool.feed_many`` calls).  Both must reproduce the scalar
``observe()`` chain bit-for-bit, so the math they share lives here exactly
once:

* :func:`manager_vectorization_ineligibility` — the eligibility contract;
* :func:`columnwise_linear_form` / :func:`linear_kernel` /
  :func:`predictor_fast_kernel` — the probe-verified column-sweep predictor
  fast path;
* :func:`compile_policy_steps` / :func:`caps_from_margins` — the inlined
  ``ThrottlePolicy`` cap computation over precompiled step tables;
* :class:`AdapterArrays` — columnar comfort-adapter state (live limit plus
  FeedbackStep/QuantileTracker internals) with the grouped bit-exact event
  updates.

Bit-exactness notes carry over from ``vectorized.py``: every elementwise
expression mirrors the scalar model code's operation order, the linear fast
path is *verified* on a magnitude-spread probe rather than assumed, and
elementwise IEEE multiply/add are shape-independent so batching rows never
changes any row's bits.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..core.policy import ThrottlePolicy
from ..core.predictor import RuntimePredictor
from ..core.usta import USTAController
from ..ml.linear import LinearRegression
from ..users.adaptation import (
    AdaptiveComfortManager,
    FeedbackStep,
    FixedLimit,
    QuantileTracker,
    UserFeedbackModel,
)

__all__ = [
    "ADAPTER_FIXED",
    "ADAPTER_NONE",
    "ADAPTER_QUANTILE",
    "ADAPTER_STEP",
    "AdapterArrays",
    "LINEAR_PROBE_ROWS",
    "NO_CAP",
    "NO_CAP_64",
    "caps_from_margins",
    "columnwise_linear_form",
    "compile_policy_steps",
    "linear_kernel",
    "manager_vectorization_ineligibility",
    "predictor_fast_kernel",
]


def manager_vectorization_ineligibility(manager, table=None) -> Optional[str]:
    """Why ``manager`` cannot ride a vectorized policy plane (``None`` = it can).

    The planes mirror controller state in arrays, so they only accept
    combinations whose per-tick math they replicate bit-for-bit: a stock
    :class:`~repro.core.usta.USTAController` (or a subclass that overrides
    none of the prediction protocol), optionally wrapped in a stock
    :class:`~repro.users.adaptation.AdaptiveComfortManager` with a stock
    adapter (:class:`FixedLimit` / :class:`FeedbackStep` /
    :class:`QuantileTracker`) and at most a stock
    :class:`UserFeedbackModel`.  Anything else falls back to the scalar
    per-member ``observe()`` loop; the returned reason is what
    ``--explain-batching`` / ``--explain-plane`` report.
    """
    if manager is None:
        return None
    inner = manager
    if isinstance(manager, AdaptiveComfortManager):
        if type(manager) is not AdaptiveComfortManager:
            return f"{type(manager).__name__} subclasses AdaptiveComfortManager"
        if type(manager.adapter) not in (FixedLimit, FeedbackStep, QuantileTracker):
            return f"custom comfort adapter {type(manager.adapter).__name__}"
        if manager.feedback is not None and type(manager.feedback) is not UserFeedbackModel:
            return f"custom feedback model {type(manager.feedback).__name__}"
        inner = manager.inner
    if not isinstance(inner, USTAController):
        return f"{type(inner).__name__} is not a USTA-family controller"
    if type(inner) is not USTAController:
        for method in ("observe", "prediction_due", "apply_prediction", "_cap_for", "set_skin_limit"):
            if getattr(type(inner), method) is not getattr(USTAController, method):
                return f"{type(inner).__name__} overrides USTAController.{method}"
    if type(inner.policy) is not ThrottlePolicy:
        return f"custom throttle policy {type(inner.policy).__name__}"
    if type(inner.predictor) is not RuntimePredictor:
        return f"custom predictor {type(inner.predictor).__name__}"
    if table is not None and tuple(inner.table.frequencies_khz) != tuple(table.frequencies_khz):
        return "manager frequency table differs from the platform's"
    return None


#: Adapter-kind tags used to route feedback events to the grouped updates.
ADAPTER_NONE, ADAPTER_FIXED, ADAPTER_STEP, ADAPTER_QUANTILE = 0, 1, 2, 3

NO_CAP = ThrottlePolicy.NO_CAP
NO_CAP_64 = np.int64(NO_CAP)

#: Probe size for :func:`columnwise_linear_form`.  The probe rows spread
#: operand magnitudes over ~50 binary orders, so two genuinely different
#: float evaluation orders disagree on most rows — a handful suffice.
LINEAR_PROBE_ROWS = 64


def columnwise_linear_form(model):
    """``(coefficients, intercept)`` for a column-sweep evaluation of a
    fitted stock LinearRegression, or None.

    The policy planes' parity contract is against the scalar path's one-row
    ``model.predict(row)`` calls.  :meth:`LinearRegression._predict` is an
    order-fixed left-to-right column sweep (never a BLAS dot), so a plane
    can evaluate the same sweep over its own feature columns and land on
    identical bits for every row.  That equivalence is still *verified* here
    on a magnitude-spread probe matrix rather than assumed, so a future edit
    to the model's evaluation order degrades the plane to the (bit-exact)
    batched-predict path instead of silently breaking parity.
    """
    if type(model) is not LinearRegression or not model.is_fitted:
        return None
    coef = model.coefficients
    if coef.shape != (4,):
        return None
    intercept = model.intercept
    rng = np.random.default_rng(0x5BA7C)
    probe = rng.uniform(-1.0, 1.0, (LINEAR_PROBE_ROWS, 4)) * np.exp2(
        rng.integers(-25, 26, (LINEAR_PROBE_ROWS, 4)).astype(float)
    )
    c0, c1, c2, c3 = coef.tolist()
    f0, f1, f2, f3 = probe.T
    sweep = ((f0 * c0 + f1 * c1) + f2 * c2) + f3 * c3 + intercept
    if not np.array_equal(sweep, model.predict(probe)):
        return None
    return coef, intercept


def linear_kernel(coef_rows: np.ndarray, intercepts: np.ndarray):
    """Build the column-sweep callable for one or more stacked linear models.

    ``coef_rows`` is ``(m, 4)`` and ``intercepts`` ``(m, 1)``: evaluating m
    models over n feature columns in one ``(m, n)`` broadcast sweep costs the
    same number of ufunc dispatches as evaluating one.  Elementwise IEEE
    multiply/add are shape-independent, so each output element carries
    exactly the bits of the per-model column sweep the probe verified.
    """
    c0 = coef_rows[:, 0:1]
    c1 = coef_rows[:, 1:2]
    c2 = coef_rows[:, 2:3]
    c3 = coef_rows[:, 3:4]
    return lambda a, b, u, f: ((a * c0 + b * c1) + u * c2) + f * c3 + intercepts


def predictor_fast_kernel(predictor, predict_screen: bool):
    """Probe-verified ``(kernel, has_screen)`` for a predictor group, or None.

    Skin and screen models probing to the same sweep order share one stacked
    kernel call; a predictor whose models do not probe clean must go through
    :meth:`RuntimePredictor.predict_batch_arrays` instead.
    """
    if type(predictor) is not RuntimePredictor:
        return None
    form = columnwise_linear_form(predictor.skin_model)
    if form is None:
        return None
    coef, intercept = form
    if predict_screen and predictor.screen_model is not None:
        sform = columnwise_linear_form(predictor.screen_model)
        if sform is None:
            return None
        return (
            linear_kernel(np.vstack([coef, sform[0]]), np.array([[intercept], [sform[1]]])),
            True,
        )
    return (linear_kernel(coef[None, :], np.array([[intercept]])), False)


def compile_policy_steps(policy: ThrottlePolicy, table) -> Tuple[np.ndarray, np.ndarray, float]:
    """Precompile one policy's step table for :func:`caps_from_margins`.

    ``(step_caps, thresholds, activation_margin_c)`` are what the scalar
    ``cap_for_prediction`` rebuilds per call; hoisting them lets a plane
    inline the (bit-identical) count-of-crossed-rules cap computation.
    """
    step_caps = np.array(
        [
            table.min_level
            if step.levels_below_max is None
            else table.clamp_level(table.max_level - step.levels_below_max)
            for step in policy.steps
        ],
        dtype=np.int64,
    )
    thresholds = np.array([step.margin_above_c for step in policy.steps], dtype=float)
    return step_caps, thresholds, policy.activation_margin_c


def caps_from_margins(
    margins: np.ndarray,
    step_caps: np.ndarray,
    thresholds: np.ndarray,
    activation: float,
) -> np.ndarray:
    """Array-wide ``ThrottlePolicy`` cap computation (``NO_CAP`` = no cap).

    Bit-identical to the scalar ``cap_for_prediction``: same comparison
    expressions over the same float values, constant arrays hoisted by
    :func:`compile_policy_steps`.
    """
    counts = (margins[:, None] <= thresholds).sum(axis=1)
    step_idx = counts - 1
    np.maximum(step_idx, 0, out=step_idx)
    return np.where(margins >= activation, NO_CAP_64, step_caps[step_idx])


class AdapterArrays:
    """Columnar comfort-adapter state shared by both policy planes.

    Owns the live comfort limit (the master copy shared by the adapter
    updates and the cap computation — the scalar path keeps the two in sync
    through ``set_skin_limit``) plus the per-strategy parameter/state arrays
    for the stock adapters, and applies grouped feedback events with the
    exact arithmetic of the scalar ``observe()`` implementations.

    ``limit_obj`` mirrors ``limit`` as Python floats (records and
    ``CapDecision`` objects must serialize like scalar runs).
    """

    #: (array attribute name, dtype, fill) — the schema both planes share.
    _FIELDS = (
        ("kind", np.int64, 0),
        ("limit", float, 0.0),
        ("step_down", float, 0.0),
        ("step_up", float, 0.0),
        ("step_hold", float, 0.0),
        ("step_min", float, 0.0),
        ("step_max", float, 0.0),
        ("step_last_change", float, np.nan),
        ("q_quant", float, 0.0),
        ("q_gain", float, 0.0),
        ("q_decay", float, 0.0),
        ("q_min", float, 0.0),
        ("q_max", float, 0.0),
        ("q_window", float, np.nan),
        ("q_streak_limit", np.int64, 0),
        ("q_count", np.int64, 0),
        ("q_streak", np.int64, 0),
    )

    def __init__(self, n: int) -> None:
        for name, dtype, fill in self._FIELDS:
            setattr(self, name, np.full(n, fill, dtype=dtype))
        self.limit_obj = np.full(n, None, dtype=object)

    def grow(self, n: int) -> None:
        """Reallocate to capacity ``n`` rows, preserving the existing prefix."""
        old = self.kind.size
        if n <= old:
            return
        for name, dtype, fill in self._FIELDS:
            fresh = np.full(n, fill, dtype=dtype)
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        fresh_obj = np.full(n, None, dtype=object)
        fresh_obj[:old] = self.limit_obj
        self.limit_obj = fresh_obj

    def move_row(self, dst: int, src: int) -> None:
        """Copy row ``src`` over row ``dst`` (swap-remove support)."""
        for name, _, _ in self._FIELDS:
            column = getattr(self, name)
            column[dst] = column[src]
        self.limit_obj[dst] = self.limit_obj[src]

    def load(self, i: int, adapter, limit_c: float) -> None:
        """Mirror one adapter's (and the controller's live-limit) state at row i."""
        self.limit[i] = limit_c
        self.limit_obj[i] = float(limit_c)
        self.step_last_change[i] = np.nan
        if isinstance(adapter, FeedbackStep):
            self.kind[i] = ADAPTER_STEP
            self.step_down[i] = adapter.step_down_c
            self.step_up[i] = adapter.step_up_c
            self.step_hold[i] = adapter.hold_off_s
            self.step_min[i] = adapter.min_limit_c
            self.step_max[i] = adapter.max_limit_c
            if adapter._last_change_s is not None:
                self.step_last_change[i] = adapter._last_change_s
        elif isinstance(adapter, QuantileTracker):
            self.kind[i] = ADAPTER_QUANTILE
            self.q_quant[i] = adapter.quantile
            self.q_gain[i] = adapter.gain_c
            self.q_decay[i] = adapter.decay
            self.q_min[i] = adapter.min_limit_c
            self.q_max[i] = adapter.max_limit_c
            self.q_window[i] = (
                np.nan if adapter.trust_window_c is None else adapter.trust_window_c
            )
            self.q_streak_limit[i] = adapter.trust_streak_limit
            self.q_count[i] = adapter._event_count
            self.q_streak[i] = adapter._rejection_streak
        elif isinstance(adapter, FixedLimit):
            self.kind[i] = ADAPTER_FIXED
        else:
            self.kind[i] = ADAPTER_NONE

    def writeback(self, i: int, adapter) -> None:
        """Restore one adapter object from row ``i`` (inverse of :meth:`load`)."""
        if isinstance(adapter, FeedbackStep):
            last_change = self.step_last_change[i]
            adapter.restore_batch_state(
                limit_c=float(self.limit[i]),
                last_change_s=None if math.isnan(last_change) else float(last_change),
            )
        elif isinstance(adapter, QuantileTracker):
            adapter.restore_batch_state(
                limit_c=float(self.limit[i]),
                event_count=int(self.q_count[i]),
                rejection_streak=int(self.q_streak[i]),
            )

    # -- grouped bit-exact event updates ---------------------------------------

    def apply_step_events(self, events: List[Tuple[int, object]]) -> None:
        """Grouped FeedbackStep.observe over one tick's events (bit-exact).

        At most one event per row per call (the feedback gate emits one event
        per model per tick), so the fancy-index scatters never collide.
        """
        loc = np.array([i for i, _ in events], dtype=np.int64)
        times = np.array([event.time_s for _, event in events], dtype=float)
        discomfort = np.array([event.is_discomfort for _, event in events], dtype=bool)
        limit = self.limit[loc]
        last_change = self.step_last_change[loc]
        blocked = ~np.isnan(last_change) & (times - last_change < self.step_hold[loc])
        down = np.maximum(self.step_min[loc], limit - self.step_down[loc])
        up = np.minimum(self.step_max[loc], limit + self.step_up[loc])
        adjusted = np.where(discomfort, down, up)
        changed = ~blocked & (adjusted != limit)
        new_limit = np.where(changed, adjusted, limit)
        self.limit[loc] = new_limit
        self.step_last_change[loc[changed]] = times[changed]
        self.limit_obj[loc] = new_limit.tolist()

    def apply_quantile_events(self, events: List[Tuple[int, object]]) -> None:
        """Grouped QuantileTracker.observe over one tick's events (bit-exact)."""
        loc = np.array([i for i, _ in events], dtype=np.int64)
        discomfort = np.array([event.is_discomfort for _, event in events], dtype=bool)
        temp = np.array([event.skin_temp_c for _, event in events], dtype=float)
        limit = self.limit[loc]
        window = self.q_window[loc]
        streak_after = self.q_streak[loc] + 1
        far = ~np.isnan(window) & (np.abs(temp - limit) > window)
        rejected = far & (streak_after < self.q_streak_limit[loc])
        accepted = ~rejected
        self.q_streak[loc] = np.where(rejected, streak_after, 0)
        new_count = np.where(accepted, self.q_count[loc] + 1, self.q_count[loc])
        self.q_count[loc] = new_count
        gain = self.q_gain[loc] / (1.0 + self.q_decay[loc] * new_count)
        pull_down = accepted & discomfort & (temp < limit)
        pull_up = accepted & ~discomfort & (temp > limit)
        moved = np.where(
            pull_down,
            limit + (1.0 - self.q_quant[loc]) * gain * (temp - limit),
            np.where(pull_up, limit + self.q_quant[loc] * gain * (temp - limit), limit),
        )
        # The scalar path clamps on every accepted event, moved or not.
        new_limit = np.where(
            accepted, np.minimum(self.q_max[loc], np.maximum(self.q_min[loc], moved)), moved
        )
        self.limit[loc] = new_limit
        self.limit_obj[loc] = new_limit.tolist()
