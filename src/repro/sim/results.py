"""Simulation results: per-step records and summary metrics.

The summary metrics mirror the three rows of the paper's Table 1 (maximum
screen temperature, maximum skin temperature, average frequency) plus the
quantities needed by Figures 2 and 4 (time series, time over a comfort limit)
and by the satisfaction model (delivered vs demanded work).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..users.comfort import ComfortAnalysis, analyse_comfort

__all__ = ["ColumnarRecordBuffer", "StepRecord", "SimulationResult"]


@dataclass(frozen=True)
class StepRecord:
    """Everything recorded about one simulation step."""

    time_s: float
    frequency_khz: int
    frequency_level: int
    level_cap: int
    utilization: float
    demand: float
    delivered_work: float
    power_w: float
    cpu_temp_c: float
    battery_temp_c: float
    skin_temp_c: float
    screen_temp_c: float
    sensor_cpu_temp_c: float
    sensor_battery_temp_c: float
    sensor_skin_temp_c: float
    sensor_screen_temp_c: float
    predicted_skin_temp_c: Optional[float] = None
    predicted_screen_temp_c: Optional[float] = None
    usta_active: bool = False
    #: Live skin comfort limit the manager decided against (None = no manager
    #: or a manager without one); adaptive policies move it over the run.
    comfort_limit_c: Optional[float] = None


class ColumnarRecordBuffer:
    """Structure-of-arrays staging area for a batch of record streams.

    The hot loop of the heterogeneous population engine writes one numpy
    column per :class:`StepRecord` field and allocates no per-member-step
    Python objects; :class:`StepRecord` instances are only constructed at
    the batch/record-sink boundary via :meth:`extend_result`, from one bulk
    ``.tolist()`` per column per member — which yields exactly the Python
    ints/floats scalar extraction would, so downstream records (and their
    JSONL serialisation) stay byte-identical to the scalar engine's.

    Columns are *step-major* (shape ``(n_steps, n_members)``): the engine
    writes one step across the live member prefix per tick, and a step-major
    layout makes that write a contiguous row instead of a strided column.

    The three optional decision fields (predictions and the live comfort
    limit) hold ``None``-able Python objects, so they live in object columns
    allocated only when the batch carries thermal managers at all; without
    managers every member's records use the dataclass defaults.
    """

    _FLOAT_COLUMNS = (
        "utilization",
        "demand",
        "delivered_work",
        "power_w",
        "cpu_temp_c",
        "battery_temp_c",
        "skin_temp_c",
        "screen_temp_c",
        "sensor_cpu_temp_c",
        "sensor_battery_temp_c",
        "sensor_skin_temp_c",
        "sensor_screen_temp_c",
    )
    _INT_COLUMNS = ("frequency_khz", "frequency_level", "level_cap")
    _DECISION_COLUMNS = (
        "predicted_skin_temp_c",
        "predicted_screen_temp_c",
        "comfort_limit_c",
    )

    def __init__(self, n_members: int, n_steps: int, with_decisions: bool = False):
        shape = (n_steps, n_members)
        for name in self._INT_COLUMNS:
            setattr(self, name, np.zeros(shape, dtype=np.int64))
        for name in self._FLOAT_COLUMNS:
            setattr(self, name, np.zeros(shape, dtype=float))
        self.with_decisions = with_decisions
        if with_decisions:
            self.usta_active = np.zeros(shape, dtype=bool)
            for name in self._DECISION_COLUMNS:
                setattr(self, name, np.full(shape, None, dtype=object))
        else:
            self.usta_active = None
            for name in self._DECISION_COLUMNS:
                setattr(self, name, None)

    def iter_records(
        self, member: int, times_s: Sequence[float], count: int
    ) -> Iterator[StepRecord]:
        """Materialise one member's first ``count`` steps as :class:`StepRecord`s.

        Records are built positionally (the column order is pinned to the
        dataclass field order by ``_check_field_order`` below) through
        :func:`_fast_records`, which installs each record's ``__dict__``
        wholesale instead of paying the frozen dataclass ``__init__`` — the
        records are indistinguishable from constructor-built ones (same type,
        fields, equality, hash, pickling), just ~5x cheaper to make, which
        matters because this is the only per-member-step Python object the
        batched engine allocates at all.

        Args:
            member: column index of the member in the batch.
            times_s: shared per-step timestamps (``times_s[t]`` is the time of
                step ``t``; members that finished early use a prefix).
            count: number of steps this member actually ran.
        """
        series = [list(times_s[:count])]
        series.extend(
            getattr(self, name)[:count, member].tolist()
            for name in self._INT_COLUMNS + self._FLOAT_COLUMNS
        )
        if self.with_decisions:
            series.append(self.predicted_skin_temp_c[:count, member].tolist())
            series.append(self.predicted_screen_temp_c[:count, member].tolist())
            series.append(self.usta_active[:count, member].tolist())
            series.append(self.comfort_limit_c[:count, member].tolist())
        else:
            # Mirror the dataclass defaults explicitly (the fast builder
            # fills every field).
            nones = [None] * count
            series.append(nones)
            series.append(nones)
            series.append([False] * count)
            series.append(nones)
        return _fast_records(series)

    def drain_window(
        self, member: int, times_s: Sequence[float], count: int
    ) -> Iterator[StepRecord]:
        """Incremental drain: one member's rows of the *current window*.

        The windowed population engine reuses one window-sized buffer across
        windows: at each window boundary it drains every live member's filled
        rows through this method (into a spool or a
        :class:`~repro.runtime.stream.RecordSink` adapter) and then overwrites
        the buffer with the next window.  ``member``/``count`` address buffer
        rows ``[0, count)`` exactly like :meth:`iter_records` — the caller
        passes the window's absolute timestamps as ``times_s`` — and the
        positional column order is the same ``_check_field_order``-pinned one,
        so drained records are bit-identical to batch-boundary ones.  The
        returned iterator is only valid until the buffer is rewritten: consume
        it before the next window starts.
        """
        return self.iter_records(member, times_s, count)

    def extend_result(
        self,
        result: "SimulationResult",
        member: int,
        times_s: Sequence[float],
        count: int,
        defer: bool = False,
    ) -> "SimulationResult":
        """Append one member's records to a result (returns it for chaining).

        With ``defer=True`` the records are not built here: the result holds a
        thunk that materialises them on first access to ``result.records``
        (see :meth:`SimulationResult.defer_records`).  The buffer must then
        stay unmodified for the result's lifetime — the batch engines satisfy
        this by never writing to a buffer after the run ends.  Materialised
        records are identical either way; only *when* the per-step Python
        objects get built changes.
        """
        if defer:
            result.defer_records(lambda: list(self.iter_records(member, times_s, count)))
        else:
            result.records.extend(self.iter_records(member, times_s, count))
        return result


#: StepRecord field names in declaration order — the key order of every
#: fast-built record's ``__dict__`` (identical to constructor-built records).
_RECORD_FIELDS = tuple(f.name for f in fields(StepRecord))


def _fast_records(series: List[list]) -> Iterator[StepRecord]:
    """Build :class:`StepRecord` rows from full columns, bypassing ``__init__``.

    A frozen dataclass pays one guarded ``object.__setattr__`` per field per
    instance; installing the instance ``__dict__`` in one shot produces an
    identical object (attribute storage, equality, hash and pickling all go
    through ``__dict__``) at a fraction of the cost.  ``series`` must carry
    one column per :class:`StepRecord` field, in field order.
    """
    new = StepRecord.__new__
    set_attr = object.__setattr__
    names = _RECORD_FIELDS
    for values in zip(*series):
        record = new(StepRecord)
        set_attr(record, "__dict__", dict(zip(names, values)))
        yield record


def _check_field_order() -> None:
    """Pin the buffer's positional column order to the dataclass field order."""
    expected = _RECORD_FIELDS
    positional = (
        ("time_s",)
        + ColumnarRecordBuffer._INT_COLUMNS
        + ColumnarRecordBuffer._FLOAT_COLUMNS
        + (
            "predicted_skin_temp_c",
            "predicted_screen_temp_c",
            "usta_active",
            "comfort_limit_c",
        )
    )
    if positional != expected:
        raise AssertionError(
            "ColumnarRecordBuffer's positional column order no longer matches "
            f"StepRecord's field order: {positional} != {expected}"
        )


_check_field_order()


@dataclass
class SimulationResult:
    """Outcome of replaying one workload trace under one DVFS configuration.

    ``records`` is normally a plain eager list, but a producer that already
    holds the data in columnar form can install a deferred builder via
    :meth:`defer_records`: the per-step :class:`StepRecord` objects are then
    materialised on first access (and are identical to eagerly built ones).
    The batched engines use this so analysis paths that consume columns or
    summaries never pay for 10k+ Python objects they won't read.
    """

    workload_name: str
    governor_name: str
    dt_s: float
    records: List[StepRecord] = field(default_factory=list)

    def defer_records(self, thunk) -> None:
        """Install a callable that builds the record list on first access.

        The callable runs at most once; assigning ``records`` directly
        discards it.  Pickling forces materialisation first (closures over
        numpy buffers would not serialise, and the bytes on the wire should
        not depend on when the records were built).
        """
        self.__dict__["records"] = None
        self.__dict__["_records_thunk"] = thunk

    def __getstate__(self):
        _ = self.records  # force materialisation; thunks do not pickle
        state = dict(self.__dict__)
        state.pop("_records_thunk", None)
        return state

    # -- container protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def append(self, record: StepRecord) -> None:
        """Add one step record."""
        self.records.append(record)

    # -- time series -----------------------------------------------------------------

    def times_s(self) -> np.ndarray:
        """Step timestamps (seconds)."""
        return np.array([r.time_s for r in self.records])

    def skin_temps_c(self) -> np.ndarray:
        """True skin (back-cover mid) temperature series."""
        return np.array([r.skin_temp_c for r in self.records])

    def screen_temps_c(self) -> np.ndarray:
        """True screen temperature series."""
        return np.array([r.screen_temp_c for r in self.records])

    def cpu_temps_c(self) -> np.ndarray:
        """True CPU die temperature series."""
        return np.array([r.cpu_temp_c for r in self.records])

    def battery_temps_c(self) -> np.ndarray:
        """True battery temperature series."""
        return np.array([r.battery_temp_c for r in self.records])

    def frequencies_khz(self) -> np.ndarray:
        """Selected CPU frequency series (kHz)."""
        return np.array([r.frequency_khz for r in self.records])

    def utilizations(self) -> np.ndarray:
        """Observed CPU utilization series."""
        return np.array([r.utilization for r in self.records])

    def power_w(self) -> np.ndarray:
        """Total platform power series (Watts)."""
        return np.array([r.power_w for r in self.records])

    # -- summary metrics (Table 1 rows) ---------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Simulated duration."""
        return len(self.records) * self.dt_s

    @property
    def max_skin_temp_c(self) -> float:
        """Maximum skin temperature (Table 1, "Max Skin Temp")."""
        return float(np.max(self.skin_temps_c())) if self.records else float("nan")

    @property
    def max_screen_temp_c(self) -> float:
        """Maximum screen temperature (Table 1, "Max Screen Temp")."""
        return float(np.max(self.screen_temps_c())) if self.records else float("nan")

    @property
    def max_cpu_temp_c(self) -> float:
        """Maximum CPU die temperature."""
        return float(np.max(self.cpu_temps_c())) if self.records else float("nan")

    @property
    def average_frequency_ghz(self) -> float:
        """Average CPU frequency in GHz (Table 1, "Average Freq.")."""
        if not self.records:
            return float("nan")
        return float(np.mean(self.frequencies_khz())) / 1e6

    @property
    def average_power_w(self) -> float:
        """Average platform power."""
        return float(np.mean(self.power_w())) if self.records else float("nan")

    @property
    def total_energy_j(self) -> float:
        """Total platform energy over the run (Joules)."""
        return float(np.sum(self.power_w()) * self.dt_s) if self.records else 0.0

    @property
    def demanded_work(self) -> float:
        """Total work the workload asked for (full-speed window equivalents)."""
        return float(np.sum([r.demand for r in self.records]))

    @property
    def delivered_work(self) -> float:
        """Total work actually executed."""
        return float(np.sum([r.delivered_work for r in self.records]))

    @property
    def throughput_ratio(self) -> float:
        """Delivered / demanded work (1.0 = no slowdown)."""
        demanded = self.demanded_work
        if demanded <= 0:
            return 1.0
        return min(1.0, self.delivered_work / demanded)

    @property
    def usta_active_fraction(self) -> float:
        """Fraction of steps in which USTA had a frequency cap installed."""
        if not self.records:
            return 0.0
        return float(np.mean([1.0 if r.usta_active else 0.0 for r in self.records]))

    # -- comfort ------------------------------------------------------------------------

    def comfort_against(self, limit_c: float, user_id: str = "default") -> ComfortAnalysis:
        """Analyse the skin-temperature series against a comfort limit."""
        return analyse_comfort(self.skin_temps_c(), limit_c, dt_s=self.dt_s, user_id=user_id)

    def percent_time_over(self, limit_c: float) -> float:
        """Percentage of the run spent with the skin temperature above ``limit_c``."""
        return self.comfort_against(limit_c).percent_time_over_limit

    # -- export --------------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Headline metrics in one dictionary (used by the benchmark harness)."""
        return {
            "max_skin_temp_c": self.max_skin_temp_c,
            "max_screen_temp_c": self.max_screen_temp_c,
            "max_cpu_temp_c": self.max_cpu_temp_c,
            "average_frequency_ghz": self.average_frequency_ghz,
            "average_power_w": self.average_power_w,
            "throughput_ratio": self.throughput_ratio,
            "usta_active_fraction": self.usta_active_fraction,
        }

    def to_records(self) -> List[Dict[str, float]]:
        """Per-step records as plain dictionaries (for ML training / export)."""
        return [
            {
                "time_s": r.time_s,
                "frequency_khz": float(r.frequency_khz),
                "utilization": r.utilization,
                "cpu_temp_c": r.sensor_cpu_temp_c,
                "battery_temp_c": r.sensor_battery_temp_c,
                "skin_temp_c": r.sensor_skin_temp_c,
                "screen_temp_c": r.sensor_screen_temp_c,
                "true_skin_temp_c": r.skin_temp_c,
                "true_screen_temp_c": r.screen_temp_c,
                "power_w": r.power_w,
            }
            for r in self.records
        ]


def _records_get(self) -> List[StepRecord]:
    thunk = self.__dict__.get("_records_thunk")
    if thunk is not None:
        self.__dict__["_records_thunk"] = None
        self.__dict__["records"] = thunk()
    return self.__dict__["records"]


def _records_set(self, value: List[StepRecord]) -> None:
    self.__dict__["records"] = value
    self.__dict__["_records_thunk"] = None


# ``records`` stays an ordinary dataclass field (init/repr/eq all see it),
# but attribute access goes through a data descriptor so a deferred builder
# installed by defer_records() runs exactly once, on first use.
SimulationResult.records = property(_records_get, _records_set)
