"""Experiment helpers: one-call wrappers around the simulation engine.

These helpers build the platform/governor plumbing for the common experiment
shapes — "run benchmark X under governor Y", "run the same workload under two
configurations and compare" — so examples, tests and the paper-reproduction
benchmarks stay short.  They are deliberately agnostic of USTA: any object
implementing the :class:`~repro.sim.engine.ThermalManager` protocol can be
passed as ``thermal_manager``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from ..device.platform import DevicePlatform
from ..governors import Governor, create_governor
from ..workloads.benchmarks import build_benchmark
from ..workloads.trace import WorkloadTrace
from .engine import Simulator, ThermalManager
from .logger import SystemLogger
from .results import SimulationResult

__all__ = ["run_workload", "run_benchmark", "compare_runs", "GovernorComparison"]


def _resolve_governor(governor: Union[str, Governor, None], platform: DevicePlatform) -> Governor:
    if governor is None:
        return create_governor("ondemand", table=platform.freq_table)
    if isinstance(governor, str):
        return create_governor(governor, table=platform.freq_table)
    return governor


def run_workload(
    trace: WorkloadTrace,
    governor: Union[str, Governor, None] = None,
    thermal_manager: Optional[ThermalManager] = None,
    platform: Optional[DevicePlatform] = None,
    logger: Optional[SystemLogger] = None,
    seed: int = 0,
    initial_temps: Optional[Dict[str, float]] = None,
) -> SimulationResult:
    """Replay one workload trace under one DVFS configuration.

    Args:
        trace: the workload to replay.
        governor: a governor instance, a cpufreq governor name, or ``None``
            for the default ondemand baseline.
        thermal_manager: optional USTA-style manager layered on the governor.
        platform: custom platform (a fresh seeded Nexus-4 platform otherwise).
        logger: optional system logger to fill during the run.
        seed: platform seed (sensor noise) when no platform is supplied.
        initial_temps: optional initial node temperatures.
    """
    platform = platform or DevicePlatform(seed=seed)
    resolved = _resolve_governor(governor, platform)
    simulator = Simulator(
        platform=platform,
        governor=resolved,
        thermal_manager=thermal_manager,
        logger=logger,
    )
    return simulator.run(trace, initial_temps=initial_temps)


def run_benchmark(
    name: str,
    governor: Union[str, Governor, None] = None,
    thermal_manager: Optional[ThermalManager] = None,
    seed: int = 0,
    duration_s: Optional[float] = None,
    **kwargs,
) -> SimulationResult:
    """Build one of the thirteen paper benchmarks and replay it.

    Args:
        name: benchmark name (see :data:`repro.workloads.BENCHMARK_NAMES`).
        governor: governor instance / name / ``None`` for ondemand.
        thermal_manager: optional USTA-style manager.
        seed: workload and platform seed.
        duration_s: optional override of the benchmark's nominal duration.
        **kwargs: forwarded to :func:`run_workload`.
    """
    trace = build_benchmark(name, seed=seed, duration_s=duration_s)
    return run_workload(trace, governor=governor, thermal_manager=thermal_manager, seed=seed, **kwargs)


@dataclass(frozen=True)
class GovernorComparison:
    """Baseline-vs-treatment comparison of one workload."""

    baseline: SimulationResult
    treatment: SimulationResult

    @property
    def peak_skin_reduction_c(self) -> float:
        """How much cooler the treatment's peak skin temperature is (°C)."""
        return self.baseline.max_skin_temp_c - self.treatment.max_skin_temp_c

    @property
    def peak_screen_reduction_c(self) -> float:
        """How much cooler the treatment's peak screen temperature is (°C)."""
        return self.baseline.max_screen_temp_c - self.treatment.max_screen_temp_c

    @property
    def frequency_reduction_fraction(self) -> float:
        """Relative reduction of the average frequency under the treatment."""
        base = self.baseline.average_frequency_ghz
        if base <= 0:
            return 0.0
        return (base - self.treatment.average_frequency_ghz) / base

    @property
    def throughput_loss_fraction(self) -> float:
        """Relative throughput loss of the treatment vs the baseline."""
        base = self.baseline.throughput_ratio
        if base <= 0:
            return 0.0
        return max(0.0, (base - self.treatment.throughput_ratio) / base)


def compare_runs(
    trace: WorkloadTrace,
    baseline_governor: Union[str, Governor, None] = None,
    treatment_governor: Union[str, Governor, None] = None,
    treatment_manager: Optional[ThermalManager] = None,
    seed: int = 0,
    runner: Optional["BatchRunner"] = None,
) -> GovernorComparison:
    """Run the same workload under a baseline and a treatment configuration.

    Both runs use identically seeded platforms so the only difference is the
    DVFS configuration — the simulated analogue of the paper's back-to-back
    baseline/USTA sessions.  The pair executes as a two-cell
    :class:`~repro.runtime.plan.ExperimentPlan`; with governors given by name
    the default runner batches both cells through one vectorized population
    step.

    Args:
        runner: optional custom :class:`~repro.runtime.runner.BatchRunner`
            (defaults to the vectorized in-process runner).
    """
    from ..runtime import BatchRunner, ConstantManagerFactory, ExperimentCell, ExperimentPlan

    plan = ExperimentPlan(
        [
            ExperimentCell(
                cell_id="baseline",
                trace=trace,
                governor=baseline_governor if baseline_governor is not None else "ondemand",
                seed=seed,
                metadata={"scheme": "baseline"},
            ),
            ExperimentCell(
                cell_id="treatment",
                trace=trace,
                governor=(
                    treatment_governor
                    if treatment_governor is not None
                    else (baseline_governor if baseline_governor is not None else "ondemand")
                ),
                manager_factory=(
                    ConstantManagerFactory(treatment_manager)
                    if treatment_manager is not None
                    else None
                ),
                seed=seed,
                metadata={"scheme": "treatment"},
            ),
        ]
    )
    store = (runner if runner is not None else BatchRunner.for_jobs(None)).run(plan)
    return GovernorComparison(
        baseline=store.result_of("baseline"),
        treatment=store.result_of("treatment"),
    )
