"""Simulation engine: fixed-step loop, system logger, results, experiment helpers."""

from .engine import ManagerDecision, SimulationKernel, Simulator, ThermalManager
from .logger import FEATURE_NAMES, SCREEN_TARGET, SKIN_TARGET, LogRecord, SystemLogger
from .results import SimulationResult, StepRecord
from .experiments import GovernorComparison, compare_runs, run_benchmark, run_workload
from .export import (
    load_log_csv,
    load_trace_csv,
    save_log_csv,
    save_result_csv,
    save_trace_csv,
)

__all__ = [
    "ManagerDecision",
    "SimulationKernel",
    "Simulator",
    "ThermalManager",
    "FEATURE_NAMES",
    "SCREEN_TARGET",
    "SKIN_TARGET",
    "LogRecord",
    "SystemLogger",
    "SimulationResult",
    "StepRecord",
    "GovernorComparison",
    "compare_runs",
    "run_benchmark",
    "run_workload",
    "load_log_csv",
    "load_trace_csv",
    "save_log_csv",
    "save_result_csv",
    "save_trace_csv",
]
