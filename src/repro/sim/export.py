"""CSV import/export for workload traces and simulation results.

The paper's workflow revolves around log files: the logging application writes
periodic system-level records which are post-processed offline.  This module
provides the equivalent file interface for the reproduction so that traces and
results can be exchanged with external tools (spreadsheets, plotting scripts,
other simulators):

* :func:`save_trace_csv` / :func:`load_trace_csv` — round-trip a
  :class:`~repro.workloads.trace.WorkloadTrace`;
* :func:`save_result_csv` — dump a :class:`~repro.sim.results.SimulationResult`
  step by step;
* :func:`save_log_csv` / :func:`load_log_csv` — round-trip the
  :class:`~repro.sim.logger.SystemLogger` records used to train the predictor.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

from ..workloads.trace import WorkloadSample, WorkloadTrace
from .logger import LogRecord, SystemLogger
from .results import SimulationResult

__all__ = [
    "save_trace_csv",
    "load_trace_csv",
    "save_result_csv",
    "save_log_csv",
    "load_log_csv",
]

PathLike = Union[str, Path]

_TRACE_FIELDS = (
    "cpu_demand",
    "gpu_activity",
    "radio_activity",
    "screen_on",
    "brightness",
    "charging",
    "touching",
)

_LOG_FIELDS = (
    "time_s",
    "benchmark",
    "cpu_temp_c",
    "battery_temp_c",
    "utilization",
    "frequency_khz",
    "skin_temp_c",
    "screen_temp_c",
)


def save_trace_csv(trace: WorkloadTrace, path: PathLike) -> None:
    """Write a workload trace to a CSV file (one row per sample)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(("name", trace.name))
        writer.writerow(("sample_period_s", trace.sample_period_s))
        writer.writerow(_TRACE_FIELDS)
        for sample in trace:
            writer.writerow(
                [
                    f"{sample.cpu_demand:.6f}",
                    f"{sample.gpu_activity:.6f}",
                    f"{sample.radio_activity:.6f}",
                    int(sample.screen_on),
                    f"{sample.brightness:.6f}",
                    int(sample.charging),
                    int(sample.touching),
                ]
            )


def load_trace_csv(path: PathLike) -> WorkloadTrace:
    """Read a workload trace previously written by :func:`save_trace_csv`."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if len(rows) < 3 or rows[0][0] != "name" or rows[1][0] != "sample_period_s":
        raise ValueError(f"{path} is not a workload-trace CSV file")
    name = rows[0][1]
    sample_period_s = float(rows[1][1])
    header = tuple(rows[2])
    if header != _TRACE_FIELDS:
        raise ValueError(f"unexpected trace columns {header!r}")

    samples: List[WorkloadSample] = []
    for row in rows[3:]:
        if not row:
            continue
        samples.append(
            WorkloadSample(
                cpu_demand=float(row[0]),
                gpu_activity=float(row[1]),
                radio_activity=float(row[2]),
                screen_on=bool(int(row[3])),
                brightness=float(row[4]),
                charging=bool(int(row[5])),
                touching=bool(int(row[6])),
            )
        )
    return WorkloadTrace(name=name, samples=samples, sample_period_s=sample_period_s)


def save_result_csv(result: SimulationResult, path: PathLike) -> None:
    """Write a simulation result's per-step records to a CSV file."""
    path = Path(path)
    records = result.to_records()
    fields = list(records[0]) if records else ["time_s"]
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for record in records:
            writer.writerow(record)


def save_log_csv(logger: SystemLogger, path: PathLike) -> None:
    """Write the logging application's records to a CSV file."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_LOG_FIELDS)
        for record in logger.records:
            writer.writerow(
                [
                    f"{record.time_s:.3f}",
                    record.benchmark,
                    f"{record.cpu_temp_c:.4f}",
                    f"{record.battery_temp_c:.4f}",
                    f"{record.utilization:.6f}",
                    f"{record.frequency_khz:.1f}",
                    f"{record.skin_temp_c:.4f}",
                    f"{record.screen_temp_c:.4f}",
                ]
            )


def load_log_csv(path: PathLike, period_s: float = 3.0) -> SystemLogger:
    """Read a system log previously written by :func:`save_log_csv`."""
    path = Path(path)
    logger = SystemLogger(period_s=period_s)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = tuple(next(reader, ()))
        if header != _LOG_FIELDS:
            raise ValueError(f"{path} is not a system-log CSV file")
        for row in reader:
            if not row:
                continue
            logger.records.append(
                LogRecord(
                    time_s=float(row[0]),
                    benchmark=row[1],
                    cpu_temp_c=float(row[2]),
                    battery_temp_c=float(row[3]),
                    utilization=float(row[4]),
                    frequency_khz=float(row[5]),
                    skin_temp_c=float(row[6]),
                    screen_temp_c=float(row[7]),
                )
            )
    return logger
