"""The system-level logging application.

The paper instruments the phone with "an application to periodically log
system level information, such as CPU temperature, battery temperature, CPU
utilization, and CPU frequency", and pairs those logs with the external
thermistor measurements to build the training set for the skin/screen
temperature predictors.

:class:`SystemLogger` reproduces that data-collection path: it samples the
simulated device at a fixed period and emits log records containing the
on-device sensor readings (the predictor's features) together with the
thermistor readings (the prediction targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ml.dataset import Dataset

__all__ = ["LogRecord", "SystemLogger", "FEATURE_NAMES", "SKIN_TARGET", "SCREEN_TARGET"]

#: The predictor features the paper lists: CPU temperature, battery
#: temperature, CPU utilization and CPU frequency.
FEATURE_NAMES = ("cpu_temp_c", "battery_temp_c", "utilization", "frequency_khz")
SKIN_TARGET = "skin_temp_c"
SCREEN_TARGET = "screen_temp_c"


@dataclass(frozen=True)
class LogRecord:
    """One row of the logging application's output."""

    time_s: float
    benchmark: str
    cpu_temp_c: float
    battery_temp_c: float
    utilization: float
    frequency_khz: float
    skin_temp_c: float
    screen_temp_c: float

    def as_dict(self) -> Dict[str, float]:
        """The record as a feature/target dictionary."""
        return {
            "time_s": self.time_s,
            "cpu_temp_c": self.cpu_temp_c,
            "battery_temp_c": self.battery_temp_c,
            "utilization": self.utilization,
            "frequency_khz": self.frequency_khz,
            "skin_temp_c": self.skin_temp_c,
            "screen_temp_c": self.screen_temp_c,
        }


@dataclass
class SystemLogger:
    """Periodic system-level logger.

    Attributes:
        period_s: logging period (the paper logs every few seconds; 3 s
            matches USTA's prediction window).
        records: collected log rows.
    """

    period_s: float = 3.0
    records: List[LogRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        self._last_log_time: Optional[float] = None

    def __len__(self) -> int:
        return len(self.records)

    def reset(self) -> None:
        """Drop collected records and restart the logging clock."""
        self.records.clear()
        self._last_log_time = None

    def should_log(self, time_s: float) -> bool:
        """True when at least one period has elapsed since the last record."""
        if self._last_log_time is None:
            return True
        return time_s - self._last_log_time >= self.period_s - 1e-9

    def maybe_log(
        self,
        time_s: float,
        benchmark: str,
        sensor_readings: Dict[str, float],
        utilization: float,
        frequency_khz: float,
    ) -> Optional[LogRecord]:
        """Log a record if the logging period has elapsed.

        The sensor readings must contain the ``cpu``, ``battery``, ``skin``
        and ``screen`` channels produced by
        :meth:`repro.device.sensors.SensorSuite.read_all`.
        """
        if not self.should_log(time_s):
            return None
        record = LogRecord(
            time_s=time_s,
            benchmark=benchmark,
            cpu_temp_c=sensor_readings["cpu"],
            battery_temp_c=sensor_readings["battery"],
            utilization=utilization,
            frequency_khz=float(frequency_khz),
            skin_temp_c=sensor_readings["skin"],
            screen_temp_c=sensor_readings["screen"],
        )
        self.records.append(record)
        self._last_log_time = time_s
        return record

    # -- dataset export -------------------------------------------------------------

    def to_dataset(self, target: str = SKIN_TARGET) -> Dataset:
        """Convert the collected log into an ML dataset.

        Args:
            target: ``"skin_temp_c"`` or ``"screen_temp_c"``.
        """
        if target not in (SKIN_TARGET, SCREEN_TARGET):
            raise ValueError(f"target must be {SKIN_TARGET!r} or {SCREEN_TARGET!r}")
        if not self.records:
            raise ValueError("the logger has no records to convert")
        return Dataset.from_records(
            (r.as_dict() for r in self.records),
            feature_names=FEATURE_NAMES,
            target_name=target,
        )

    def extend(self, other: "SystemLogger") -> None:
        """Append another logger's records (used to pool benchmarks into one set)."""
        self.records.extend(other.records)
