"""The fixed-step simulation loop.

One :class:`Simulator` instance couples a :class:`~repro.device.DevicePlatform`
with a governor, an optional thermal manager (USTA) and an optional system
logger, and replays a workload trace through them:

1. the CPU executes the current window's demand at the frequency chosen at the
   end of the previous window;
2. the dissipated power is integrated by the thermal network and the sensors
   are sampled;
3. the thermal manager (if any) observes the sensor readings and may install
   or remove a frequency cap on the governor;
4. the governor picks the frequency for the next window from the observed
   utilization.

This ordering mirrors the real system, where the ondemand governor and USTA's
periodic skin-temperature check both run *after* the workload's activity has
been observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Protocol, runtime_checkable

from ..api.types import CapDecision, TelemetrySample
from ..device.platform import DevicePlatform, DeviceStepResult
from ..governors.base import Governor, GovernorObservation
from ..workloads.trace import WorkloadSample, WorkloadTrace
from .logger import SystemLogger
from .results import SimulationResult, StepRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.session import PolicySession

__all__ = ["ThermalManager", "ManagerDecision", "SimulationKernel", "Simulator"]


@dataclass(frozen=True)
class ManagerDecision:
    """What a thermal manager decided after one observation.

    ``comfort_limit_c`` carries the live skin comfort limit the decision was
    made against (``None`` for managers without one); under an adaptive
    policy it is the limit the user-feedback loop has learned so far.
    """

    level_cap: Optional[int]
    predicted_skin_temp_c: Optional[float] = None
    predicted_screen_temp_c: Optional[float] = None
    comfort_limit_c: Optional[float] = None

    @property
    def active(self) -> bool:
        """True when a cap (below the maximum level) is being requested."""
        return self.level_cap is not None


@runtime_checkable
class ThermalManager(Protocol):
    """Protocol implemented by skin-temperature-aware managers (USTA)."""

    def observe(
        self,
        time_s: float,
        sensor_readings: Dict[str, float],
        utilization: float,
        frequency_khz: float,
    ) -> ManagerDecision:
        """Observe the device and return the desired frequency cap (or none)."""
        ...

    def reset(self) -> None:
        """Clear internal state before a new run."""
        ...


@dataclass
class SimulationKernel:
    """Per-step orchestration shared by :class:`Simulator` and the batched runtime.

    One kernel couples a platform with a governor, an optional thermal manager
    and an optional logger and exposes exactly one unit of work: advance the
    whole stack by one workload sample.  :class:`Simulator` drives a kernel
    over a trace; :mod:`repro.runtime` drives many kernels (or their
    vectorized equivalent) over a plan.

    The thermal manager is consulted through the online policy interface
    (:class:`~repro.api.session.PolicySession`): the kernel is one *client*
    of the session — it streams the step's telemetry in, gets a
    :class:`~repro.api.types.CapDecision` back, and applies the cap to the
    governor, exactly as the on-device daemon applies its decision via
    ``scaling_max_freq``.

    Attributes:
        platform: the simulated handset.
        governor: the baseline DVFS policy.
        thermal_manager: optional USTA-style manager layered on the governor.
        logger: optional system logger collecting predictor training data.
    """

    platform: DevicePlatform
    governor: Governor
    thermal_manager: Optional[ThermalManager] = None
    logger: Optional[SystemLogger] = None
    _session: Optional["PolicySession"] = field(
        default=None, init=False, repr=False, compare=False
    )

    def policy_session(self) -> "PolicySession":
        """The online session wrapping this kernel's thermal manager."""
        # Imported lazily: the session layer sits above the engine.
        from ..api.session import PolicySession

        if self._session is None or self._session.manager is not self.thermal_manager:
            # The kernel applies level caps directly; skip the per-decision
            # cap→frequency resolution in the per-step loop.
            self._session = PolicySession(manager=self.thermal_manager, resolve_frequency=False)
        return self._session

    def reset(self, initial_temps: Optional[Dict[str, float]] = None) -> None:
        """Reset the platform, governor, manager and logger for a fresh run."""
        self.platform.reset(initial_temps)
        self.governor.reset()
        if self.thermal_manager is not None:
            self.thermal_manager.reset()
        if self.logger is not None:
            self.logger.reset()

    def governor_label(self) -> str:
        """Result label: governor name, prefixed by the manager name if any."""
        label = self.governor.name
        if self.thermal_manager is not None:
            manager_name = getattr(self.thermal_manager, "name", type(self.thermal_manager).__name__)
            label = f"{manager_name}+{label}"
        return label

    def step(self, sample: WorkloadSample, dt_s: float, benchmark: str) -> StepRecord:
        """Advance the device/governor/manager stack by one workload sample.

        The ordering mirrors the real system (see the module docstring): the
        platform executes the window, the manager observes and may adjust the
        frequency cap, the logger samples, and the governor picks the level
        for the next window.
        """
        step = self.platform.step(sample.to_activity(), dt_s)
        decision = self._consult_manager(step)
        self._log(step, benchmark)
        self._drive_governor(step, dt_s)
        return self._record(step, decision)

    def _consult_manager(self, step: DeviceStepResult) -> CapDecision:
        if self.thermal_manager is None:
            return CapDecision.no_cap()
        decision = self.policy_session().feed(
            TelemetrySample(
                time_s=step.time_s,
                utilization=step.cpu_state.utilization,
                frequency_khz=float(step.cpu_state.frequency_khz),
                sensor_readings=step.sensor_readings_c,
            )
        )
        self.governor.set_level_cap(decision.level_cap)
        return decision

    def _log(self, step: DeviceStepResult, benchmark: str) -> None:
        if self.logger is None:
            return
        self.logger.maybe_log(
            time_s=step.time_s,
            benchmark=benchmark,
            sensor_readings=step.sensor_readings_c,
            utilization=step.cpu_state.utilization,
            frequency_khz=float(step.cpu_state.frequency_khz),
        )

    def _drive_governor(self, step: DeviceStepResult, dt: float) -> None:
        observation = GovernorObservation(
            utilization=step.cpu_state.utilization,
            current_level=step.cpu_state.level,
            time_s=step.time_s,
            dt_s=dt,
        )
        next_level = self.governor.select_level(observation)
        self.platform.set_frequency_level(next_level)

    # -- internals ---------------------------------------------------------------------

    def _record(self, step: DeviceStepResult, decision: CapDecision) -> StepRecord:
        readings = step.sensor_readings_c
        return StepRecord(
            time_s=step.time_s,
            frequency_khz=step.cpu_state.frequency_khz,
            frequency_level=step.cpu_state.level,
            level_cap=self.governor.level_cap,
            utilization=step.cpu_state.utilization,
            demand=step.cpu_state.demand,
            delivered_work=step.cpu_state.delivered_work,
            power_w=step.power.total_w,
            cpu_temp_c=step.cpu_temp_c,
            battery_temp_c=step.battery_temp_c,
            skin_temp_c=step.skin_temp_c,
            screen_temp_c=step.screen_temp_c,
            sensor_cpu_temp_c=readings.get("cpu", step.cpu_temp_c),
            sensor_battery_temp_c=readings.get("battery", step.battery_temp_c),
            sensor_skin_temp_c=readings.get("skin", step.skin_temp_c),
            sensor_screen_temp_c=readings.get("screen", step.screen_temp_c),
            predicted_skin_temp_c=decision.predicted_skin_temp_c,
            predicted_screen_temp_c=decision.predicted_screen_temp_c,
            usta_active=decision.active and self.governor.is_capped,
            comfort_limit_c=decision.comfort_limit_c,
        )


@dataclass
class Simulator:
    """Replays workload traces against the simulated platform.

    Attributes:
        platform: the simulated handset.
        governor: the baseline DVFS policy.
        thermal_manager: optional USTA-style manager layered on the governor.
        logger: optional system logger collecting predictor training data.
    """

    platform: DevicePlatform
    governor: Governor
    thermal_manager: Optional[ThermalManager] = None
    logger: Optional[SystemLogger] = None

    @property
    def kernel(self) -> SimulationKernel:
        """The per-step kernel over this simulator's components."""
        return SimulationKernel(
            platform=self.platform,
            governor=self.governor,
            thermal_manager=self.thermal_manager,
            logger=self.logger,
        )

    def iter_records(
        self,
        trace: WorkloadTrace,
        reset: bool = True,
        initial_temps: Optional[Dict[str, float]] = None,
    ) -> Iterator[StepRecord]:
        """Replay a workload trace, yielding each step record as it is produced.

        This is the streaming form of :meth:`run`: nothing is accumulated, so
        a consumer that forwards records into a
        :class:`~repro.runtime.stream.RecordSink` (or folds them into a
        running aggregate) replays arbitrarily long traces in O(1) memory.
        The record sequence is exactly :meth:`run`'s — ``run`` is implemented
        on top of this iterator.

        Args:
            trace: the workload to replay.
            reset: reset platform, governor and manager state first (set to
                False to chain traces back-to-back on a warm device).
            initial_temps: optional initial node temperatures (°C).
        """
        kernel = self.kernel
        if reset:
            kernel.reset(initial_temps)
        elif initial_temps:
            self.platform.network.set_temperatures(initial_temps)
        dt = trace.sample_period_s
        for sample in trace:
            yield kernel.step(sample, dt, trace.name)

    def run(
        self,
        trace: WorkloadTrace,
        reset: bool = True,
        initial_temps: Optional[Dict[str, float]] = None,
    ) -> SimulationResult:
        """Replay a workload trace and return the simulation result.

        Args:
            trace: the workload to replay.
            reset: reset platform, governor and manager state first (set to
                False to chain traces back-to-back on a warm device).
            initial_temps: optional initial node temperatures (°C).
        """
        result = SimulationResult(
            workload_name=trace.name,
            governor_name=self.kernel.governor_label(),
            dt_s=trace.sample_period_s,
        )
        for record in self.iter_records(trace, reset=reset, initial_temps=initial_temps):
            result.append(record)
        return result

    # Backwards-compatible alias (the label logic moved to the kernel).
    def _governor_label(self) -> str:
        return self.kernel.governor_label()
