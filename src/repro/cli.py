"""Command-line front end.

``python -m repro`` (or the ``repro-usta`` console script) regenerates the
paper's tables and figures from the command line::

    repro-usta table1 --scale 0.25
    repro-usta table1 --scale 1.0 --jobs 4
    repro-usta fig1
    repro-usta fig2
    repro-usta fig3
    repro-usta fig4
    repro-usta fig5
    repro-usta all --scale 0.25
    repro-usta sweep --scale 0.25 --repeat 10

``--scale`` shortens every benchmark proportionally (1.0 replays the paper's
full durations).  ``--jobs N`` fans the experiment grid out over N worker
processes (``table1``/``all``/``sweep``); without it the vectorized
in-process runner batches same-trace cells.  ``sweep`` runs a user
population (the ten study participants × ``--repeat``) against one benchmark
under user-specific USTA — the population-scale experiment the batched
runtime in :mod:`repro.runtime` exists for.

Policies are declarative: ``--policy policy.json`` points ``sweep`` and
``serve`` at a :class:`~repro.api.specs.PolicySpec` file instead of the
hardcoded USTA-over-ondemand default (see ``examples/policy.json``).
``--adapter feedback_step`` switches the user-feedback loop on: every user
starts at the default comfort limit and the policy adapts it online from
simulated comfort reports (``examples/adaptive_policy.json`` shows the
spec-file equivalent).  ``adapt`` prints the adapters' convergence report
and ``golden`` checks (or ``--update`` regenerates) the committed bit-exact
regression files under ``tests/golden/``.
``serve`` replays one benchmark's telemetry into thousands of concurrent
online :class:`~repro.api.session.PolicySession` instances (``--sessions``),
with predictions batched across sessions; ``--smoke`` shrinks it to a CI-
sized run.  ``sweep --approx-solve`` opts the vectorized executor into the
blocked thermal solve (faster, last-ulp-level deviations).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .analysis import (
    ReproductionContext,
    figure1_user_thresholds,
    figure2_time_over_threshold,
    figure3_prediction_errors,
    figure4_skype_traces,
    figure5_user_ratings,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_table1,
    reproduce_table1,
)

__all__ = ["main", "build_parser"]

EXPERIMENTS = ("table1", "fig1", "fig2", "fig3", "fig4", "fig5")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-usta",
        description="Reproduce the tables and figures of the USTA (DATE 2015) paper.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS
        + ("all", "sweep", "serve", "adapt", "golden", "replay-hal", "hal-compare"),
        help=(
            "which paper result to regenerate ('sweep' for a population sweep, "
            "'serve' for the online policy-session driver, 'adapt' for the "
            "comfort-limit adaptation convergence report, 'golden' to check or "
            "--update the committed golden regression files, 'replay-hal' to "
            "replay a recorded thermal HAL trace through the session driver, "
            "'hal-compare' for the USTA-vs-trip-point report on that trace)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="benchmark duration scale (1.0 = the paper's full durations)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--model",
        default="reptree",
        help="predictor model deployed inside USTA (reptree, m5p, linear_regression, ...)",
    )
    parser.add_argument(
        "--folds", type=int, default=10, help="cross-validation folds for fig3"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for table1/all/sweep (default: vectorized in-process runner)",
    )
    parser.add_argument(
        "--benchmark",
        default="skype",
        help="benchmark replayed by the sweep (default: skype)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="population copies for the sweep (10 users per copy)",
    )
    parser.add_argument(
        "--policy",
        default=None,
        metavar="FILE",
        help="policy spec JSON for sweep/serve (default: user-specific USTA over ondemand)",
    )
    parser.add_argument(
        "--adapter",
        default=None,
        metavar="NAME",
        help=(
            "comfort-limit adapter for sweep/serve (fixed, feedback_step, "
            "quantile_tracker); sweeps then start every user at the default "
            "limit and adapt it from simulated feedback.  For 'adapt' it "
            "restricts the convergence report to one strategy."
        ),
    )
    parser.add_argument(
        "--approx-solve",
        action="store_true",
        help="sweep: allow the blocked (non-bit-exact) vectorized thermal solve",
    )
    parser.add_argument(
        "--window-steps",
        type=int,
        default=None,
        metavar="N",
        help=(
            "sweep: process every trace in windows of exactly N steps (>= 2) "
            "through the vectorized runner — bounds staging memory for long "
            "traces; results stay bit-identical"
        ),
    )
    parser.add_argument(
        "--window-bytes",
        type=int,
        default=None,
        metavar="B",
        help=(
            "sweep: size the vectorized runner's step window from a staging "
            "budget of B bytes instead of a fixed step count (default: 64 MiB)"
        ),
    )
    parser.add_argument(
        "--explain-batching",
        action="store_true",
        help=(
            "sweep: print the vectorized executor's batch plan (which cells "
            "join the structure-of-arrays batch, which thermal managers ride "
            "the vectorized policy plane versus the per-member scalar loop, "
            "which cells fall back to the scalar kernel, and why) instead of "
            "running the sweep — silent fallbacks are the usual cause of a "
            "perf regression"
        ),
    )
    parser.add_argument(
        "--explain-plane",
        action="store_true",
        help=(
            "serve: print the session pool's resident-plane report (which "
            "sessions ride the columnar fast path, which fall back to the "
            "scalar per-session feed, and why) instead of serving telemetry "
            "— silent fallbacks are the usual cause of a serving throughput "
            "regression"
        ),
    )
    parser.add_argument(
        "--stream-to",
        default=None,
        metavar="DIR",
        help=(
            "stream results to a sharded JSONL store in DIR instead of "
            "holding them in memory (sweep/table1: completed cells append "
            "incrementally, crash-safe; serve: per-step cap decisions drain "
            "to a session log there)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "with --stream-to: skip cells the store already holds and run "
            "only the missing ones (restart a crashed sweep/table1)"
        ),
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="golden: regenerate the committed expectation files instead of checking them",
    )
    parser.add_argument(
        "--golden-dir",
        default=None,
        metavar="DIR",
        help=(
            "golden: directory of the expectation files (default: the "
            "repository's tests/golden, wherever the CLI is run from)"
        ),
    )
    parser.add_argument(
        "--fleet",
        type=int,
        default=None,
        metavar="N",
        help=(
            "sweep: distribute the plan across N fleet worker processes "
            "(needs --stream-to; each worker streams into its own shard "
            "directory, dead workers' incomplete units are reassigned, and "
            "the shards merge into one indexed store identical to a "
            "single-process run)"
        ),
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=2000,
        help="serve: number of concurrent policy sessions",
    )
    parser.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help=(
            "serve: run the persistent socket front end (line-delimited JSON "
            "over TCP; PORT 0 picks a free port) instead of the replay "
            "driver; SIGINT/SIGTERM shut down gracefully, persisting session "
            "state and flushing the decision log"
        ),
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help=(
            "serve --listen: persist per-user adapter/controller state in DIR "
            "on checkpoint and shutdown, so returning users warm-start at "
            "their converged comfort limit"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "serve/replay-hal/hal-compare: tiny CI-sized configuration "
            "(caps --scale and --sessions)"
        ),
    )
    parser.add_argument(
        "--hal-trace",
        default=None,
        metavar="PATH",
        help=(
            "recorded thermal HAL trace: a directory of dumpsys-thermal *.txt "
            "dumps (timestamped file names) or a .jsonl trace log.  Required "
            "by 'replay-hal' and 'hal-compare'; 'serve' accepts it to stream "
            "the recorded trace instead of simulated telemetry"
        ),
    )
    return parser


def _load_policy(args: argparse.Namespace):
    """The policy spec named by ``--policy`` (or ``None`` for the default).

    Loaded and registry-validated once, up front — before the expensive
    reproduction-context build — and cached on the namespace.
    """
    if args.policy is None:
        return None
    if getattr(args, "_policy_spec", None) is not None:
        return args._policy_spec
    from .api.specs import PolicySpec, SpecError

    try:
        args._policy_spec = PolicySpec.from_file(args.policy).validate_registered()
    except OSError as exc:
        raise SystemExit(f"repro-usta: cannot read policy file {args.policy!r}: {exc}")
    except SpecError as exc:
        raise SystemExit(f"repro-usta: bad policy file {args.policy!r}: {exc}")
    return args._policy_spec


def _apply_adapter(policy, args: argparse.Namespace):
    """Overlay ``--adapter`` onto a policy spec (validated against the registry)."""
    if args.adapter is None:
        return policy
    from dataclasses import replace

    from .api.registry import ADAPTERS, UnknownComponentError
    from .api.specs import AdapterSpec, SpecError

    try:
        ADAPTERS.get(args.adapter)
    except UnknownComponentError as exc:
        raise SystemExit(f"repro-usta: {exc}")
    try:
        return replace(policy, adapter=AdapterSpec(name=args.adapter))
    except SpecError as exc:
        raise SystemExit(f"repro-usta: --adapter {args.adapter}: {exc}")


def _cell_predictor(context: ReproductionContext, policy):
    """The predictor to inject into a policy's manager (or ``None``).

    The context predictor is only a *fallback*: a policy whose manager
    declares its own predictor recipe keeps it (injection would silently
    override the declared model).
    """
    if policy.manager is None or policy.manager.predictor is not None:
        return None
    return context.predictor


def _run_sweep(context: ReproductionContext, args: argparse.Namespace) -> str:
    """Run `--repeat` copies of the study population through one benchmark."""
    from .runtime import BatchRunner, ExperimentCell, ExperimentPlan
    from .workloads.benchmarks import BENCHMARKS, build_benchmark

    if args.repeat < 1:
        raise SystemExit("repro-usta sweep: --repeat must be at least 1")
    if args.benchmark not in BENCHMARKS:
        known = ", ".join(sorted(BENCHMARKS))
        raise SystemExit(
            f"repro-usta sweep: unknown benchmark {args.benchmark!r}; choose from: {known}"
        )
    spec = BENCHMARKS[args.benchmark]
    duration = spec.duration_s * args.scale
    trace = build_benchmark(args.benchmark, seed=context.seed, duration_s=duration)

    policy = _load_policy(args)
    if policy is None:
        policy = context.usta_policy_spec()
    policy = _apply_adapter(policy, args)

    plan = ExperimentPlan()
    for rep in range(args.repeat):
        for profile in context.population:
            suffix = f"/r{rep}" if args.repeat > 1 else ""
            user_policy = policy.for_user(profile)
            plan.add(
                ExperimentCell(
                    cell_id=f"{profile.user_id}{suffix}",
                    trace=trace,
                    policy=user_policy,
                    predictor=_cell_predictor(context, user_policy),
                    seed=context.seed + rep,
                    metadata={"user_id": profile.user_id, "rep": rep},
                )
            )

    runner = BatchRunner.for_jobs(
        args.jobs,
        approx_solve=args.approx_solve,
        window_steps=args.window_steps,
        window_bytes=args.window_bytes,
    )
    if args.explain_batching:
        from .runtime.executors import VectorizedExecutor

        if not isinstance(runner.executor, VectorizedExecutor):
            raise SystemExit(
                "repro-usta sweep: --explain-batching describes the in-process "
                "vectorized runner; drop --jobs to use it"
            )
        cells = list(plan)
        return runner.executor.batch_plan(cells).describe(
            cells,
            window_steps=runner.executor.window_steps,
            max_window_bytes=runner.executor.max_window_bytes,
        ) + "\n(dry run: no cell was executed)"
    profiles = {p.user_id: p for p in context.population}
    start = time.perf_counter()
    footers: List[str] = []
    if args.fleet is not None:
        summaries, executed_ids, footers = _fleet_sweep(plan, profiles, args)
        metrics = [(cell.cell_id, summaries[cell.cell_id]) for cell in plan]
    elif args.stream_to is not None:
        summaries, executed_ids, footers = _stream_sweep(runner, plan, profiles, args)
        metrics = [(cell.cell_id, summaries[cell.cell_id]) for cell in plan]
    else:
        store = runner.run(plan)
        metrics = []
        for entry in store:
            profile = profiles[entry.cell.metadata["user_id"]]
            result = entry.result
            metrics.append((entry.cell.cell_id, _SweepRow.from_result(result, profile)))
        executed_ids = {cell_id for cell_id, _ in metrics}
    elapsed = time.perf_counter() - start

    lines = [
        f"{'member':>12} {'limit °C':>9} {'end limit °C':>13} {'peak skin °C':>13}"
        f" {'% over limit':>13} {'avg GHz':>8} {'USTA on %':>10}"
    ]
    users = {cell.cell_id: cell.metadata["user_id"] for cell in plan}
    executed_steps = 0
    for cell_id, row in metrics:
        profile = profiles[users[cell_id]]
        if cell_id in executed_ids:
            executed_steps += row.n_steps
        lines.append(
            f"{cell_id:>12} {profile.skin_limit_c:>9.1f}"
            f" {'-' if row.end_limit_c is None else format(row.end_limit_c, '.2f'):>13}"
            f" {row.max_skin_temp_c:>13.2f}"
            f" {row.percent_over_limit:>13.1f}"
            f" {row.average_frequency_ghz:>8.3f}"
            f" {100.0 * row.usta_active_fraction:>10.1f}"
        )
    if executed_ids:
        lines.append(
            f"{len(metrics)} members x {len(trace)} steps in {elapsed:.2f}s"
            f" ({executed_steps / elapsed:,.0f} member-steps/s)"
        )
    else:
        lines.append(
            f"{len(metrics)} members x {len(trace)} steps"
            f" (all answered from disk in {elapsed:.2f}s)"
        )
    lines.extend(footers)
    return "\n".join(lines)


class _SweepRow:
    """The per-member numbers the sweep table prints, from either path."""

    def __init__(self, n_steps, end_limit_c, max_skin_temp_c, percent_over_limit,
                 average_frequency_ghz, usta_active_fraction):
        self.n_steps = n_steps
        # Under an adaptive policy the live limit the run *ended* on shows how
        # far the feedback loop moved from the (mis-specified) starting limit.
        self.end_limit_c = end_limit_c
        self.max_skin_temp_c = max_skin_temp_c
        self.percent_over_limit = percent_over_limit
        self.average_frequency_ghz = average_frequency_ghz
        self.usta_active_fraction = usta_active_fraction

    @classmethod
    def from_result(cls, result, profile) -> "_SweepRow":
        return cls(
            n_steps=len(result),
            end_limit_c=result.records[-1].comfort_limit_c if result.records else None,
            max_skin_temp_c=result.max_skin_temp_c,
            percent_over_limit=result.percent_time_over(profile.skin_limit_c),
            average_frequency_ghz=result.average_frequency_ghz,
            usta_active_fraction=result.usta_active_fraction,
        )

    @classmethod
    def from_summary(cls, summary) -> "_SweepRow":
        return cls(
            n_steps=summary.n_records,
            end_limit_c=summary.final_comfort_limit_c,
            max_skin_temp_c=summary.max_skin_temp_c,
            percent_over_limit=summary.percent_time_over_limit,
            average_frequency_ghz=summary.average_frequency_ghz,
            usta_active_fraction=summary.usta_active_fraction,
        )


def _fleet_sweep(plan, profiles, args):
    """Distribute the sweep across fleet workers; rows, executed ids, footers."""
    from .analysis.streaming import stream_summaries
    from .fleet import FleetCoordinator, FleetError
    from .runtime.streamstore import StreamingResultStore

    coordinator = FleetCoordinator(
        plan,
        args.stream_to,
        workers=args.fleet,
        exact=not args.approx_solve,
    )
    try:
        report = coordinator.run(resume=args.resume)
    except FleetError as exc:
        raise SystemExit(f"repro-usta sweep: {exc}")

    store = StreamingResultStore(args.stream_to)
    entries = stream_summaries(
        store,
        limit_for=lambda cell: profiles[cell.metadata["user_id"]].skin_limit_c,
    )
    store.close()
    rows = {cell_id: _SweepRow.from_summary(e.summary) for cell_id, e in entries.items()}
    footers = [
        f"fleet: {report.workers} worker(s) ({report.workers_spawned} spawned, "
        f"{report.worker_deaths} died, {report.reassigned_units} unit(s) reassigned), "
        f"{report.n_units} unit(s) of <= {report.unit_size} cell(s)",
        f"merged {report.merge.n_cells} cell(s) into {report.merge.n_shards} shard(s) "
        f"at {store.directory} ({report.executed} executed, {report.resumed} resumed)",
    ]
    return rows, frozenset(report.executed_ids), footers


def _stream_sweep(runner, plan, profiles, args):
    """Stream the sweep plan into a sharded store; rows, executed ids, footers."""
    from .analysis.streaming import stream_plan_summaries
    from .runtime.streamstore import StoreCorruptionError

    try:
        run = stream_plan_summaries(
            runner,
            plan,
            args.stream_to,
            limit_for=lambda cell: profiles[cell.metadata["user_id"]].skin_limit_c,
            resume=args.resume,
        )
    except StoreCorruptionError as exc:
        raise SystemExit(f"repro-usta sweep: {exc}")
    except ValueError:
        raise SystemExit(
            f"repro-usta sweep: {args.stream_to} already holds results; "
            "pass --resume to continue it or choose a fresh directory"
        )

    rows = {cell_id: _SweepRow.from_summary(e.summary) for cell_id, e in run.entries.items()}
    footers = [
        f"streamed to {run.store.directory} ({len(run.executed_ids)} cell(s) "
        f"executed, {len(run.resumed_ids)} resumed from disk)"
    ]
    if run.store.recovered_tail is not None:
        footers.append(f"recovered: {run.store.recovered_tail}")
    return rows, run.executed_ids, footers


def _run_experiment(name: str, context: ReproductionContext, args: argparse.Namespace) -> str:
    scale = args.scale
    if name == "table1":
        try:
            rows = reproduce_table1(
                context,
                duration_scale=scale,
                jobs=args.jobs,
                stream_to=getattr(args, "stream_to", None),
                resume=getattr(args, "resume", False),
            )
        except ValueError as exc:
            raise SystemExit(f"repro-usta table1: {exc}")
        return "Table 1 — max temperatures and average frequency\n" + render_table1(rows)
    if name == "fig1":
        rows = figure1_user_thresholds(context, duration_s=45 * 60 * scale)
        return "Figure 1 — per-user comfort thresholds\n" + render_figure1(rows)
    if name == "fig2":
        rows = figure2_time_over_threshold(context, duration_s=30 * 60 * scale)
        return "Figure 2 — % of the Skype call above each limit\n" + render_figure2(rows)
    if name == "fig3":
        rows = figure3_prediction_errors(context, folds=args.folds)
        return "Figure 3 — prediction error of the four learners\n" + render_figure3(rows)
    if name == "fig4":
        series = figure4_skype_traces(context, duration_s=30 * 60 * scale)
        return "Figure 4 — Skype temperature traces\n" + render_figure4(series)
    if name == "fig5":
        rows, summary = figure5_user_ratings(context, duration_s=30 * 60 * scale)
        return "Figure 5 — user satisfaction ratings\n" + render_figure5(rows, summary)
    if name == "sweep":
        return f"Population sweep — {args.benchmark} × {args.repeat}×10 users\n" + _run_sweep(
            context, args
        )
    if name == "serve":
        return f"Policy sessions — {args.benchmark} × {args.sessions} sessions\n" + _run_serve(
            context, args
        )
    if name == "replay-hal":
        return _run_replay_hal(context, args)
    if name == "hal-compare":
        return _run_hal_compare(context, args)
    raise ValueError(f"unknown experiment {name!r}")


def _run_serve(context: ReproductionContext, args: argparse.Namespace) -> str:
    """Drive a population of online policy sessions from replayed telemetry."""
    from .api.serve import run_serve
    from .api.specs import ManagerSpec, PolicySpec
    from .workloads.benchmarks import BENCHMARKS

    if args.benchmark not in BENCHMARKS:
        known = ", ".join(sorted(BENCHMARKS))
        raise SystemExit(
            f"repro-usta serve: unknown benchmark {args.benchmark!r}; choose from: {known}"
        )
    duration = BENCHMARKS[args.benchmark].duration_s * args.scale
    policy = _load_policy(args)
    if args.adapter is not None:
        # --adapter needs an explicit manager policy to wrap; mirror run_serve's
        # default here so the two flags compose.
        if policy is None:
            policy = PolicySpec(manager=ManagerSpec("usta"))
        policy = _apply_adapter(policy, args)
    if args.explain_plane:
        from .api.serve import describe_serve_plane

        return describe_serve_plane(
            context, sessions=args.sessions, policy=policy
        ) + "\n(dry run: no telemetry was fed)"
    decision_log = None
    if args.stream_to is not None:
        from pathlib import Path

        decision_log = Path(args.stream_to) / "serve-decisions.jsonl"
    if args.listen is not None:
        return _listen_serve(context, policy, decision_log, args)
    telemetry = None
    if args.hal_trace is not None:
        _, telemetry = _load_hal_trace(args)
    report = run_serve(
        context,
        benchmark=args.benchmark,
        duration_s=duration,
        sessions=args.sessions,
        policy=policy,
        decision_log=decision_log,
        telemetry=telemetry,
    )
    return report.render()


def _load_hal_trace(args: argparse.Namespace):
    """Load ``--hal-trace`` as (steps, telemetry), or exit with a clear error."""
    from .telemetry import (
        HalParseError,
        HalReplayError,
        hal_telemetry,
        load_hal_trace,
    )

    try:
        steps = load_hal_trace(args.hal_trace)
        return steps, hal_telemetry(steps)
    except (HalParseError, HalReplayError, OSError) as exc:
        raise SystemExit(f"repro-usta: cannot replay {args.hal_trace!r}: {exc}")


def _run_replay_hal(context: ReproductionContext, args: argparse.Namespace) -> str:
    """Replay a recorded thermal HAL trace through the session driver."""
    from .api.serve import run_serve
    from .telemetry import describe_hal_trace

    steps, telemetry = _load_hal_trace(args)
    decision_log = None
    if args.stream_to is not None:
        from pathlib import Path

        decision_log = Path(args.stream_to) / "serve-decisions.jsonl"
    report = run_serve(
        context,
        benchmark=f"hal:{args.hal_trace}",
        sessions=args.sessions,
        policy=_load_policy(args),
        decision_log=decision_log,
        telemetry=telemetry,
    )
    return (
        f"Recorded HAL trace — {args.hal_trace}\n"
        + describe_hal_trace(steps)
        + "\n\n"
        + report.render()
    )


def _run_hal_compare(context: ReproductionContext, args: argparse.Namespace) -> str:
    """USTA vs. trip-point throttling on one recorded HAL trace."""
    from .analysis.hal_comparison import hal_comparison, render_hal_comparison
    from .telemetry import trace_thresholds

    steps, telemetry = _load_hal_trace(args)
    ladders = trace_thresholds(steps)
    base = ladders.get("SKIN")
    try:
        points = hal_comparison(context, telemetry, base_ladder=base)
    except ValueError as exc:
        raise SystemExit(f"repro-usta hal-compare: {exc}")
    source = "trace's SKIN ladder" if base is not None else "stock SKIN ladder"
    return (
        f"USTA vs. trip-point on {args.hal_trace} (base: {source})\n"
        + render_hal_comparison(points)
    )


def _listen_serve(context, policy, decision_log, args: argparse.Namespace) -> str:
    """Run the persistent socket front end until a graceful shutdown."""
    from .api.serve import manager_requires_predictor
    from .api.specs import ManagerSpec, PolicySpec
    from .fleet import PolicyService, SessionStateStore, run_service

    try:
        host, _, port_text = args.listen.rpartition(":")
        port = int(port_text)
        host = host or "127.0.0.1"
    except ValueError:
        raise SystemExit(
            f"repro-usta serve: --listen expects HOST:PORT, got {args.listen!r}"
        )
    spec = policy if policy is not None else PolicySpec(manager=ManagerSpec("usta"))
    fallback_predictor = None
    if manager_requires_predictor(spec):
        fallback_predictor = context.predictor
    state_store = SessionStateStore(args.state_dir) if args.state_dir is not None else None
    service = PolicyService(
        spec,
        profiles={p.user_id: p for p in context.population},
        predictor=fallback_predictor,
        state_store=state_store,
        decision_log=decision_log,
    )
    stats = run_service(service, host, port)
    persisted = (
        f", {stats['persisted_users']} user state(s) in {args.state_dir}"
        if state_store is not None
        else ""
    )
    return (
        f"served {stats['feeds']} feed(s) across {stats['opened']} session(s) "
        f"({stats['resumed']} warm-started) in {stats['uptime_s']:.1f}s{persisted}"
    )


def _run_adapt(args: argparse.Namespace) -> int:
    """Render the comfort-limit adaptation convergence report (no context needed)."""
    from .analysis.adaptation import adaptation_trajectories, render_adaptation
    from .api.registry import ADAPTERS, UnknownComponentError

    if args.adapter is not None:
        try:
            ADAPTERS.get(args.adapter)
        except UnknownComponentError as exc:
            raise SystemExit(f"repro-usta adapt: {exc}")
    names = (args.adapter,) if args.adapter is not None else ADAPTERS.names()
    for name in names:
        print(f"Adaptation convergence — {name} (open-loop synthetic limit probe)")
        print(render_adaptation(adaptation_trajectories(name)))
        print()
    print(
        "note: the probe ignores the cap, so step controllers (feedback_step)\n"
        "ride their clamp here by design — they regulate in closed loop, while\n"
        "the trackers are the ones expected to converge to each true limit."
    )
    return 0


def _run_golden(args: argparse.Namespace) -> int:
    """Check (or --update) the committed golden regression files."""
    from .runtime.golden import GOLDEN_DIR, verify_golden, write_golden

    directory = args.golden_dir if args.golden_dir is not None else GOLDEN_DIR
    if args.golden_dir is None and not GOLDEN_DIR.parent.is_dir():
        # The default anchors to <repo>/tests/golden; for an installed package
        # that path does not exist, and "missing golden file" / writing into
        # site-packages would both mislead.
        raise SystemExit(
            f"repro-usta golden: no golden directory at {GOLDEN_DIR}; "
            "run from a repository checkout or pass --golden-dir"
        )
    if args.update:
        paths = write_golden(directory)
        for path in paths:
            print(f"wrote {path}")
        return 0
    problems = verify_golden(directory)
    if not problems:
        print(f"golden files in {directory} are bit-identical")
        return 0
    for scenario, problem in sorted(problems.items()):
        print(f"golden drift in {scenario}: {problem}")
    print("run `python -m repro golden --update` if the change is intended")
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.policy is not None and args.experiment not in ("sweep", "serve", "replay-hal"):
        # Refuse rather than silently running the hardcoded schemes under a
        # label the user thinks came from their policy file.
        raise SystemExit(
            f"repro-usta: --policy only applies to 'sweep', 'serve' and "
            f"'replay-hal', not {args.experiment!r}"
        )
    if args.experiment in ("replay-hal", "hal-compare") and args.hal_trace is None:
        raise SystemExit(
            f"repro-usta: {args.experiment!r} needs --hal-trace (a directory of "
            "dumpsys-thermal *.txt dumps or a .jsonl trace log)"
        )
    if args.hal_trace is not None and args.experiment not in (
        "serve",
        "replay-hal",
        "hal-compare",
    ):
        raise SystemExit(
            f"repro-usta: --hal-trace only applies to 'serve', 'replay-hal' and "
            f"'hal-compare', not {args.experiment!r}"
        )
    if args.hal_trace is not None and args.listen is not None:
        raise SystemExit(
            "repro-usta: --hal-trace replays a recorded trace; the --listen "
            "socket front end streams live telemetry instead"
        )
    if args.adapter is not None and args.experiment not in ("sweep", "serve", "adapt"):
        raise SystemExit(
            f"repro-usta: --adapter only applies to 'sweep', 'serve' and 'adapt', "
            f"not {args.experiment!r}"
        )
    if (args.update or args.golden_dir is not None) and args.experiment != "golden":
        raise SystemExit(
            f"repro-usta: --update/--golden-dir only apply to 'golden', "
            f"not {args.experiment!r}"
        )
    if args.stream_to is not None and args.experiment not in (
        "sweep",
        "table1",
        "serve",
        "replay-hal",
    ):
        raise SystemExit(
            f"repro-usta: --stream-to only applies to 'sweep', 'table1', "
            f"'serve' and 'replay-hal', not {args.experiment!r}"
        )
    if args.resume and args.stream_to is None:
        raise SystemExit("repro-usta: --resume needs --stream-to")
    if args.fleet is not None:
        if args.experiment != "sweep":
            raise SystemExit(
                f"repro-usta: --fleet only applies to 'sweep', not {args.experiment!r}"
            )
        if args.stream_to is None:
            raise SystemExit("repro-usta: --fleet needs --stream-to (the merged store)")
        if args.jobs is not None:
            raise SystemExit(
                "repro-usta: --fleet and --jobs are different distribution "
                "strategies; pass one"
            )
        if args.fleet < 1:
            raise SystemExit("repro-usta: --fleet must be at least 1")
    if args.listen is not None and args.experiment != "serve":
        raise SystemExit(
            f"repro-usta: --listen only applies to 'serve', not {args.experiment!r}"
        )
    if args.state_dir is not None and args.listen is None:
        raise SystemExit("repro-usta: --state-dir needs serve --listen")
    if args.explain_batching and args.experiment != "sweep":
        raise SystemExit(
            f"repro-usta: --explain-batching only applies to 'sweep', "
            f"not {args.experiment!r}"
        )
    if args.explain_plane and args.experiment != "serve":
        raise SystemExit(
            f"repro-usta: --explain-plane only applies to 'serve', "
            f"not {args.experiment!r}"
        )
    if args.window_steps is not None or args.window_bytes is not None:
        window_flag = "--window-steps" if args.window_steps is not None else "--window-bytes"
        if args.experiment != "sweep":
            raise SystemExit(
                f"repro-usta: {window_flag} only applies to 'sweep', "
                f"not {args.experiment!r}"
            )
        if args.window_steps is not None and args.window_bytes is not None:
            raise SystemExit(
                "repro-usta: --window-steps and --window-bytes are different "
                "window sizings; pass one"
            )
        if args.window_steps is not None and args.window_steps < 2:
            raise SystemExit(
                "repro-usta: --window-steps must be at least 2 "
                "(a window needs two steps)"
            )
        if args.window_bytes is not None and args.window_bytes <= 0:
            raise SystemExit("repro-usta: --window-bytes must be positive")
        if args.jobs is not None and args.jobs > 1:
            raise SystemExit(
                f"repro-usta: {window_flag} tunes the in-process vectorized "
                "runner; drop --jobs to use it"
            )
        if args.fleet is not None:
            raise SystemExit(
                f"repro-usta: {window_flag} tunes the in-process vectorized "
                "runner, not --fleet shards; pass one"
            )

    # Context-free subcommands: neither needs the trained predictor, so they
    # dispatch before the expensive reproduction-context build.
    if args.experiment == "adapt":
        return _run_adapt(args)
    if args.experiment == "golden":
        return _run_golden(args)

    if args.experiment in ("serve", "replay-hal", "hal-compare") and args.smoke:
        # CI-sized run: a short trace / small context and a small population.
        args.scale = min(args.scale, 0.05)
        args.sessions = min(args.sessions, 200)

    # Surface policy-file problems before minutes of context training.
    _load_policy(args)

    print(f"building reproduction context (scale={args.scale}, model={args.model}) ...")
    context = ReproductionContext.build(
        seed=args.seed, duration_scale=args.scale, model_name=args.model, jobs=args.jobs
    )
    print(f"training data: {context.training_data.num_records} log records\n")

    names: List[str] = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_run_experiment(name, context, args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
