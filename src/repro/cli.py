"""Command-line front end.

``python -m repro`` (or the ``repro-usta`` console script) regenerates the
paper's tables and figures from the command line::

    repro-usta table1 --scale 0.25
    repro-usta table1 --scale 1.0 --jobs 4
    repro-usta fig1
    repro-usta fig2
    repro-usta fig3
    repro-usta fig4
    repro-usta fig5
    repro-usta all --scale 0.25
    repro-usta sweep --scale 0.25 --repeat 10

``--scale`` shortens every benchmark proportionally (1.0 replays the paper's
full durations).  ``--jobs N`` fans the experiment grid out over N worker
processes (``table1``/``all``/``sweep``); without it the vectorized
in-process runner batches same-trace cells.  ``sweep`` runs a user
population (the ten study participants × ``--repeat``) against one benchmark
under user-specific USTA — the population-scale experiment the batched
runtime in :mod:`repro.runtime` exists for.

Policies are declarative: ``--policy policy.json`` points ``sweep`` and
``serve`` at a :class:`~repro.api.specs.PolicySpec` file instead of the
hardcoded USTA-over-ondemand default (see ``examples/policy.json``).
``serve`` replays one benchmark's telemetry into thousands of concurrent
online :class:`~repro.api.session.PolicySession` instances (``--sessions``),
with predictions batched across sessions; ``--smoke`` shrinks it to a CI-
sized run.  ``sweep --approx-solve`` opts the vectorized executor into the
blocked thermal solve (faster, last-ulp-level deviations).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .analysis import (
    ReproductionContext,
    figure1_user_thresholds,
    figure2_time_over_threshold,
    figure3_prediction_errors,
    figure4_skype_traces,
    figure5_user_ratings,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_table1,
    reproduce_table1,
)

__all__ = ["main", "build_parser"]

EXPERIMENTS = ("table1", "fig1", "fig2", "fig3", "fig4", "fig5")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-usta",
        description="Reproduce the tables and figures of the USTA (DATE 2015) paper.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all", "sweep", "serve"),
        help=(
            "which paper result to regenerate ('sweep' for a population sweep, "
            "'serve' for the online policy-session driver)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="benchmark duration scale (1.0 = the paper's full durations)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--model",
        default="reptree",
        help="predictor model deployed inside USTA (reptree, m5p, linear_regression, ...)",
    )
    parser.add_argument(
        "--folds", type=int, default=10, help="cross-validation folds for fig3"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for table1/all/sweep (default: vectorized in-process runner)",
    )
    parser.add_argument(
        "--benchmark",
        default="skype",
        help="benchmark replayed by the sweep (default: skype)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="population copies for the sweep (10 users per copy)",
    )
    parser.add_argument(
        "--policy",
        default=None,
        metavar="FILE",
        help="policy spec JSON for sweep/serve (default: user-specific USTA over ondemand)",
    )
    parser.add_argument(
        "--approx-solve",
        action="store_true",
        help="sweep: allow the blocked (non-bit-exact) vectorized thermal solve",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=2000,
        help="serve: number of concurrent policy sessions",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="serve: tiny CI-sized configuration (caps --scale and --sessions)",
    )
    return parser


def _load_policy(args: argparse.Namespace):
    """The policy spec named by ``--policy`` (or ``None`` for the default).

    Loaded and registry-validated once, up front — before the expensive
    reproduction-context build — and cached on the namespace.
    """
    if args.policy is None:
        return None
    if getattr(args, "_policy_spec", None) is not None:
        return args._policy_spec
    from .api.specs import PolicySpec, SpecError

    try:
        args._policy_spec = PolicySpec.from_file(args.policy).validate_registered()
    except OSError as exc:
        raise SystemExit(f"repro-usta: cannot read policy file {args.policy!r}: {exc}")
    except SpecError as exc:
        raise SystemExit(f"repro-usta: bad policy file {args.policy!r}: {exc}")
    return args._policy_spec


def _cell_predictor(context: ReproductionContext, policy):
    """The predictor to inject into a policy's manager (or ``None``).

    The context predictor is only a *fallback*: a policy whose manager
    declares its own predictor recipe keeps it (injection would silently
    override the declared model).
    """
    if policy.manager is None or policy.manager.predictor is not None:
        return None
    return context.predictor


def _run_sweep(context: ReproductionContext, args: argparse.Namespace) -> str:
    """Run `--repeat` copies of the study population through one benchmark."""
    from .runtime import BatchRunner, ExperimentCell, ExperimentPlan
    from .workloads.benchmarks import BENCHMARKS, build_benchmark

    if args.repeat < 1:
        raise SystemExit("repro-usta sweep: --repeat must be at least 1")
    if args.benchmark not in BENCHMARKS:
        known = ", ".join(sorted(BENCHMARKS))
        raise SystemExit(
            f"repro-usta sweep: unknown benchmark {args.benchmark!r}; choose from: {known}"
        )
    spec = BENCHMARKS[args.benchmark]
    duration = spec.duration_s * args.scale
    trace = build_benchmark(args.benchmark, seed=context.seed, duration_s=duration)

    policy = _load_policy(args)
    if policy is None:
        policy = context.usta_policy_spec()

    plan = ExperimentPlan()
    for rep in range(args.repeat):
        for profile in context.population:
            suffix = f"/r{rep}" if args.repeat > 1 else ""
            user_policy = policy.for_user(profile)
            plan.add(
                ExperimentCell(
                    cell_id=f"{profile.user_id}{suffix}",
                    trace=trace,
                    policy=user_policy,
                    predictor=_cell_predictor(context, user_policy),
                    seed=context.seed + rep,
                    metadata={"user_id": profile.user_id, "rep": rep},
                )
            )

    start = time.perf_counter()
    store = BatchRunner.for_jobs(args.jobs, approx_solve=args.approx_solve).run(plan)
    elapsed = time.perf_counter() - start

    lines = [
        f"{'member':>12} {'limit °C':>9} {'peak skin °C':>13} {'% over limit':>13}"
        f" {'avg GHz':>8} {'USTA on %':>10}"
    ]
    profiles = {p.user_id: p for p in context.population}
    for entry in store:
        profile = profiles[entry.cell.metadata["user_id"]]
        result = entry.result
        lines.append(
            f"{entry.cell.cell_id:>12} {profile.skin_limit_c:>9.1f}"
            f" {result.max_skin_temp_c:>13.2f}"
            f" {result.percent_time_over(profile.skin_limit_c):>13.1f}"
            f" {result.average_frequency_ghz:>8.3f}"
            f" {100.0 * result.usta_active_fraction:>10.1f}"
        )
    total_steps = sum(len(entry.result) for entry in store)
    lines.append(
        f"{len(store)} members x {len(trace)} steps in {elapsed:.2f}s"
        f" ({total_steps / elapsed:,.0f} member-steps/s)"
    )
    return "\n".join(lines)


def _run_experiment(name: str, context: ReproductionContext, args: argparse.Namespace) -> str:
    scale = args.scale
    if name == "table1":
        rows = reproduce_table1(context, duration_scale=scale, jobs=args.jobs)
        return "Table 1 — max temperatures and average frequency\n" + render_table1(rows)
    if name == "fig1":
        rows = figure1_user_thresholds(context, duration_s=45 * 60 * scale)
        return "Figure 1 — per-user comfort thresholds\n" + render_figure1(rows)
    if name == "fig2":
        rows = figure2_time_over_threshold(context, duration_s=30 * 60 * scale)
        return "Figure 2 — % of the Skype call above each limit\n" + render_figure2(rows)
    if name == "fig3":
        rows = figure3_prediction_errors(context, folds=args.folds)
        return "Figure 3 — prediction error of the four learners\n" + render_figure3(rows)
    if name == "fig4":
        series = figure4_skype_traces(context, duration_s=30 * 60 * scale)
        return "Figure 4 — Skype temperature traces\n" + render_figure4(series)
    if name == "fig5":
        rows, summary = figure5_user_ratings(context, duration_s=30 * 60 * scale)
        return "Figure 5 — user satisfaction ratings\n" + render_figure5(rows, summary)
    if name == "sweep":
        return f"Population sweep — {args.benchmark} × {args.repeat}×10 users\n" + _run_sweep(
            context, args
        )
    if name == "serve":
        return f"Policy sessions — {args.benchmark} × {args.sessions} sessions\n" + _run_serve(
            context, args
        )
    raise ValueError(f"unknown experiment {name!r}")


def _run_serve(context: ReproductionContext, args: argparse.Namespace) -> str:
    """Drive a population of online policy sessions from replayed telemetry."""
    from .api.serve import run_serve
    from .workloads.benchmarks import BENCHMARKS

    if args.benchmark not in BENCHMARKS:
        known = ", ".join(sorted(BENCHMARKS))
        raise SystemExit(
            f"repro-usta serve: unknown benchmark {args.benchmark!r}; choose from: {known}"
        )
    duration = BENCHMARKS[args.benchmark].duration_s * args.scale
    report = run_serve(
        context,
        benchmark=args.benchmark,
        duration_s=duration,
        sessions=args.sessions,
        policy=_load_policy(args),
    )
    return report.render()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.policy is not None and args.experiment not in ("sweep", "serve"):
        # Refuse rather than silently running the hardcoded schemes under a
        # label the user thinks came from their policy file.
        raise SystemExit(
            f"repro-usta: --policy only applies to 'sweep' and 'serve', "
            f"not {args.experiment!r}"
        )

    if args.experiment == "serve" and args.smoke:
        # CI-sized serve run: a short trace and a small session population.
        args.scale = min(args.scale, 0.05)
        args.sessions = min(args.sessions, 200)

    # Surface policy-file problems before minutes of context training.
    _load_policy(args)

    print(f"building reproduction context (scale={args.scale}, model={args.model}) ...")
    context = ReproductionContext.build(
        seed=args.seed, duration_scale=args.scale, model_name=args.model, jobs=args.jobs
    )
    print(f"training data: {context.training_data.num_records} log records\n")

    names: List[str] = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_run_experiment(name, context, args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
