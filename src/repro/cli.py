"""Command-line front end.

``python -m repro`` (or the ``repro-usta`` console script) regenerates the
paper's tables and figures from the command line::

    repro-usta table1 --scale 0.25
    repro-usta fig1
    repro-usta fig2
    repro-usta fig3
    repro-usta fig4
    repro-usta fig5
    repro-usta all --scale 0.25

``--scale`` shortens every benchmark proportionally (1.0 replays the paper's
full durations; 0.25 gives a quick look).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import (
    ReproductionContext,
    figure1_user_thresholds,
    figure2_time_over_threshold,
    figure3_prediction_errors,
    figure4_skype_traces,
    figure5_user_ratings,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_table1,
    reproduce_table1,
)

__all__ = ["main", "build_parser"]

EXPERIMENTS = ("table1", "fig1", "fig2", "fig3", "fig4", "fig5")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-usta",
        description="Reproduce the tables and figures of the USTA (DATE 2015) paper.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which paper result to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="benchmark duration scale (1.0 = the paper's full durations)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--model",
        default="reptree",
        help="predictor model deployed inside USTA (reptree, m5p, linear_regression, ...)",
    )
    parser.add_argument(
        "--folds", type=int, default=10, help="cross-validation folds for fig3"
    )
    return parser


def _run_experiment(name: str, context: ReproductionContext, args: argparse.Namespace) -> str:
    scale = args.scale
    if name == "table1":
        rows = reproduce_table1(context, duration_scale=scale)
        return "Table 1 — max temperatures and average frequency\n" + render_table1(rows)
    if name == "fig1":
        rows = figure1_user_thresholds(context, duration_s=45 * 60 * scale)
        return "Figure 1 — per-user comfort thresholds\n" + render_figure1(rows)
    if name == "fig2":
        rows = figure2_time_over_threshold(context, duration_s=30 * 60 * scale)
        return "Figure 2 — % of the Skype call above each limit\n" + render_figure2(rows)
    if name == "fig3":
        rows = figure3_prediction_errors(context, folds=args.folds)
        return "Figure 3 — prediction error of the four learners\n" + render_figure3(rows)
    if name == "fig4":
        series = figure4_skype_traces(context, duration_s=30 * 60 * scale)
        return "Figure 4 — Skype temperature traces\n" + render_figure4(series)
    if name == "fig5":
        rows, summary = figure5_user_ratings(context, duration_s=30 * 60 * scale)
        return "Figure 5 — user satisfaction ratings\n" + render_figure5(rows, summary)
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    print(f"building reproduction context (scale={args.scale}, model={args.model}) ...")
    context = ReproductionContext.build(
        seed=args.seed, duration_scale=args.scale, model_name=args.model
    )
    print(f"training data: {context.training_data.num_records} log records\n")

    names: List[str] = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_run_experiment(name, context, args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
