"""Command-line front end.

``python -m repro`` (or the ``repro-usta`` console script) regenerates the
paper's tables and figures from the command line::

    repro-usta table1 --scale 0.25
    repro-usta table1 --scale 1.0 --jobs 4
    repro-usta fig1
    repro-usta fig2
    repro-usta fig3
    repro-usta fig4
    repro-usta fig5
    repro-usta all --scale 0.25
    repro-usta sweep --scale 0.25 --repeat 10

``--scale`` shortens every benchmark proportionally (1.0 replays the paper's
full durations).  ``--jobs N`` fans the experiment grid out over N worker
processes (``table1``/``all``/``sweep``); without it the vectorized
in-process runner batches same-trace cells.  ``sweep`` runs a user
population (the ten study participants × ``--repeat``) against one benchmark
under user-specific USTA — the population-scale experiment the batched
runtime in :mod:`repro.runtime` exists for.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .analysis import (
    ReproductionContext,
    figure1_user_thresholds,
    figure2_time_over_threshold,
    figure3_prediction_errors,
    figure4_skype_traces,
    figure5_user_ratings,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_table1,
    reproduce_table1,
)

__all__ = ["main", "build_parser"]

EXPERIMENTS = ("table1", "fig1", "fig2", "fig3", "fig4", "fig5")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-usta",
        description="Reproduce the tables and figures of the USTA (DATE 2015) paper.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all", "sweep"),
        help="which paper result to regenerate (or 'sweep' for a population sweep)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="benchmark duration scale (1.0 = the paper's full durations)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--model",
        default="reptree",
        help="predictor model deployed inside USTA (reptree, m5p, linear_regression, ...)",
    )
    parser.add_argument(
        "--folds", type=int, default=10, help="cross-validation folds for fig3"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for table1/all/sweep (default: vectorized in-process runner)",
    )
    parser.add_argument(
        "--benchmark",
        default="skype",
        help="benchmark replayed by the sweep (default: skype)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="population copies for the sweep (10 users per copy)",
    )
    return parser


def _run_sweep(context: ReproductionContext, args: argparse.Namespace) -> str:
    """Run `--repeat` copies of the study population through one benchmark."""
    from .runtime import BatchRunner, ExperimentCell, ExperimentPlan
    from .workloads.benchmarks import BENCHMARKS, build_benchmark

    if args.repeat < 1:
        raise SystemExit("repro-usta sweep: --repeat must be at least 1")
    if args.benchmark not in BENCHMARKS:
        known = ", ".join(sorted(BENCHMARKS))
        raise SystemExit(
            f"repro-usta sweep: unknown benchmark {args.benchmark!r}; choose from: {known}"
        )
    spec = BENCHMARKS[args.benchmark]
    duration = spec.duration_s * args.scale
    trace = build_benchmark(args.benchmark, seed=context.seed, duration_s=duration)

    plan = ExperimentPlan()
    for rep in range(args.repeat):
        for profile in context.population:
            suffix = f"/r{rep}" if args.repeat > 1 else ""
            plan.add(
                ExperimentCell(
                    cell_id=f"{profile.user_id}{suffix}",
                    trace=trace,
                    governor="ondemand",
                    manager_factory=context.usta_factory_for_user(profile),
                    seed=context.seed + rep,
                    metadata={"user_id": profile.user_id, "rep": rep},
                )
            )

    start = time.perf_counter()
    store = BatchRunner.for_jobs(args.jobs).run(plan)
    elapsed = time.perf_counter() - start

    lines = [
        f"{'member':>12} {'limit °C':>9} {'peak skin °C':>13} {'% over limit':>13}"
        f" {'avg GHz':>8} {'USTA on %':>10}"
    ]
    profiles = {p.user_id: p for p in context.population}
    for entry in store:
        profile = profiles[entry.cell.metadata["user_id"]]
        result = entry.result
        lines.append(
            f"{entry.cell.cell_id:>12} {profile.skin_limit_c:>9.1f}"
            f" {result.max_skin_temp_c:>13.2f}"
            f" {result.percent_time_over(profile.skin_limit_c):>13.1f}"
            f" {result.average_frequency_ghz:>8.3f}"
            f" {100.0 * result.usta_active_fraction:>10.1f}"
        )
    total_steps = sum(len(entry.result) for entry in store)
    lines.append(
        f"{len(store)} members x {len(trace)} steps in {elapsed:.2f}s"
        f" ({total_steps / elapsed:,.0f} member-steps/s)"
    )
    return "\n".join(lines)


def _run_experiment(name: str, context: ReproductionContext, args: argparse.Namespace) -> str:
    scale = args.scale
    if name == "table1":
        rows = reproduce_table1(context, duration_scale=scale, jobs=args.jobs)
        return "Table 1 — max temperatures and average frequency\n" + render_table1(rows)
    if name == "fig1":
        rows = figure1_user_thresholds(context, duration_s=45 * 60 * scale)
        return "Figure 1 — per-user comfort thresholds\n" + render_figure1(rows)
    if name == "fig2":
        rows = figure2_time_over_threshold(context, duration_s=30 * 60 * scale)
        return "Figure 2 — % of the Skype call above each limit\n" + render_figure2(rows)
    if name == "fig3":
        rows = figure3_prediction_errors(context, folds=args.folds)
        return "Figure 3 — prediction error of the four learners\n" + render_figure3(rows)
    if name == "fig4":
        series = figure4_skype_traces(context, duration_s=30 * 60 * scale)
        return "Figure 4 — Skype temperature traces\n" + render_figure4(series)
    if name == "fig5":
        rows, summary = figure5_user_ratings(context, duration_s=30 * 60 * scale)
        return "Figure 5 — user satisfaction ratings\n" + render_figure5(rows, summary)
    if name == "sweep":
        return f"Population sweep — {args.benchmark} × {args.repeat}×10 users\n" + _run_sweep(
            context, args
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    print(f"building reproduction context (scale={args.scale}, model={args.model}) ...")
    context = ReproductionContext.build(
        seed=args.seed, duration_scale=args.scale, model_name=args.model, jobs=args.jobs
    )
    print(f"training data: {context.training_data.num_records} log records\n")

    names: List[str] = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_run_experiment(name, context, args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
