"""The Android/Linux *ondemand* governor — the paper's baseline DVFS.

From the paper (§III.B):

    "The baseline DVFS is the default Android on-demand governor and it scales
    the frequency of the processor according to CPU utilization.  When
    utilization is at the maximum, the frequency is also set at the maximum
    level.  The reduction in frequency can be steep if the utilization is very
    low or it could be in steps if the utilization is below a threshold
    (around 80%), but above a minimum (around 20%)."

The implementation follows the classic cpufreq ondemand algorithm:

* utilization above ``up_threshold`` (80 %) → jump straight to the maximum
  frequency;
* utilization below ``down_threshold`` (20 %) → drop steeply, directly to the
  frequency proportional to the load;
* in between → step the frequency down gradually (one level per sampling
  period) towards the load-proportional frequency, never below it.
"""

from __future__ import annotations

from typing import Optional

from ..api.registry import register_governor
from ..device.freq_table import FrequencyTable
from .base import Governor, GovernorObservation

__all__ = ["OndemandGovernor"]


@register_governor("ondemand")
class OndemandGovernor(Governor):
    """Utilization-driven baseline governor (Android default)."""

    name = "ondemand"

    def __init__(
        self,
        table: Optional[FrequencyTable] = None,
        up_threshold: float = 0.80,
        down_threshold: float = 0.20,
        down_step_levels: int = 1,
    ):
        super().__init__(table)
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 < down < up <= 1")
        if down_step_levels < 1:
            raise ValueError("down_step_levels must be at least 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.down_step_levels = down_step_levels

    def _target_level(self, observation: GovernorObservation) -> int:
        util = min(max(observation.utilization, 0.0), 1.0)
        current = self.table.clamp_level(observation.current_level)

        if util >= self.up_threshold:
            # Busy: go straight to the top so the work finishes quickly.
            return self.table.max_level

        # The frequency that would serve this load with some headroom
        # (cpufreq uses f_target = f_max * util / up_threshold).
        proportional = self.table.scale_for_utilization(util / self.up_threshold)

        if util <= self.down_threshold:
            # Nearly idle: drop steeply, straight to the proportional frequency.
            return proportional

        # Moderate load: step down gradually, never below the proportional level.
        if proportional < current:
            return max(proportional, current - self.down_step_levels)
        return proportional
