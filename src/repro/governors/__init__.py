"""Linux/Android cpufreq governor substrate.

Governors register themselves into the policy API's governor registry
(:data:`repro.api.registry.GOVERNORS`) with ``@register_governor(name)``;
the :data:`GOVERNOR_REGISTRY` mapping and :func:`create_governor` factory
below are views over that registry, kept for the original call sites.
"""

from typing import Mapping, Optional, Type

from ..api.registry import GOVERNORS
from ..device.freq_table import FrequencyTable
from .base import Governor, GovernorObservation
from .conservative import ConservativeGovernor
from .ondemand import OndemandGovernor
from .static import PerformanceGovernor, PowersaveGovernor, UserspaceGovernor

__all__ = [
    "Governor",
    "GovernorObservation",
    "OndemandGovernor",
    "ConservativeGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "UserspaceGovernor",
    "GOVERNOR_REGISTRY",
    "create_governor",
]

#: Live view of governor names → classes (mirrors /sys/devices/system/cpu/cpufreq).
GOVERNOR_REGISTRY: Mapping[str, Type[Governor]] = GOVERNORS.components


def create_governor(name: str, table: Optional[FrequencyTable] = None, **kwargs) -> Governor:
    """Instantiate a governor by its cpufreq name.

    Args:
        name: one of the names in :data:`GOVERNOR_REGISTRY`.
        table: frequency table for the target platform (Nexus 4 by default).
        **kwargs: forwarded to the governor constructor.

    Raises:
        KeyError: for unknown governor names (with a did-you-mean hint).
    """
    return GOVERNORS.create(name, table=table, **kwargs)
