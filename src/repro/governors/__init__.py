"""Linux/Android cpufreq governor substrate."""

from typing import Dict, Optional, Type

from ..device.freq_table import FrequencyTable
from .base import Governor, GovernorObservation
from .conservative import ConservativeGovernor
from .ondemand import OndemandGovernor
from .static import PerformanceGovernor, PowersaveGovernor, UserspaceGovernor

__all__ = [
    "Governor",
    "GovernorObservation",
    "OndemandGovernor",
    "ConservativeGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "UserspaceGovernor",
    "GOVERNOR_REGISTRY",
    "create_governor",
]

#: Registry of governor names → classes (mirrors /sys/devices/system/cpu/cpufreq).
GOVERNOR_REGISTRY: Dict[str, Type[Governor]] = {
    OndemandGovernor.name: OndemandGovernor,
    ConservativeGovernor.name: ConservativeGovernor,
    PerformanceGovernor.name: PerformanceGovernor,
    PowersaveGovernor.name: PowersaveGovernor,
    UserspaceGovernor.name: UserspaceGovernor,
}


def create_governor(name: str, table: Optional[FrequencyTable] = None, **kwargs) -> Governor:
    """Instantiate a governor by its cpufreq name.

    Args:
        name: one of the keys of :data:`GOVERNOR_REGISTRY`.
        table: frequency table for the target platform (Nexus 4 by default).
        **kwargs: forwarded to the governor constructor.

    Raises:
        KeyError: for unknown governor names.
    """
    try:
        cls = GOVERNOR_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(GOVERNOR_REGISTRY))
        raise KeyError(f"unknown governor {name!r}; known governors: {known}") from None
    return cls(table=table, **kwargs)
