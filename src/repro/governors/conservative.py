"""The Linux *conservative* governor.

Like ondemand it tracks utilization, but it moves one step at a time in both
directions instead of jumping to the maximum.  It is included as an additional
comparison point / ablation baseline: a smoother governor heats the phone more
slowly but also reacts more slowly to load, which brackets USTA's behaviour
from the "gentle" side.
"""

from __future__ import annotations

from typing import Optional

from ..api.registry import register_governor
from ..device.freq_table import FrequencyTable
from .base import Governor, GovernorObservation

__all__ = ["ConservativeGovernor"]


@register_governor("conservative")
class ConservativeGovernor(Governor):
    """Step-at-a-time utilization governor."""

    name = "conservative"

    def __init__(
        self,
        table: Optional[FrequencyTable] = None,
        up_threshold: float = 0.80,
        down_threshold: float = 0.20,
        step_levels: int = 1,
    ):
        super().__init__(table)
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 < down < up <= 1")
        if step_levels < 1:
            raise ValueError("step_levels must be at least 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.step_levels = step_levels

    def _target_level(self, observation: GovernorObservation) -> int:
        util = min(max(observation.utilization, 0.0), 1.0)
        current = self.table.clamp_level(observation.current_level)
        if util >= self.up_threshold:
            return current + self.step_levels
        if util <= self.down_threshold:
            return current - self.step_levels
        return current
