"""Governor interface.

A *governor* decides, once per scheduling window, which DVFS operating level
the CPU should use for the next window, based on what it observed during the
previous window (primarily CPU utilization).  This mirrors the Linux cpufreq
governor contract the paper builds on.

Every governor also honours a *level cap*: an externally imposed ceiling on
the maximum operating level.  The stock policies never set one; USTA works by
installing and removing this cap, exactly as described in the paper ("the
maximum allowed CPU frequency is decreased by one level / two levels / set to
the minimum frequency level").
"""

from __future__ import annotations

import abc
import numbers
from dataclasses import dataclass
from typing import Optional

from ..device.freq_table import FrequencyTable, nexus4_frequency_table

__all__ = ["GovernorObservation", "Governor"]


@dataclass(frozen=True)
class GovernorObservation:
    """What the governor sees at the end of a scheduling window."""

    utilization: float
    current_level: int
    time_s: float
    dt_s: float


class Governor(abc.ABC):
    """Base class for DVFS governors.

    Subclasses implement :meth:`_target_level`; the base class applies the
    level cap and clamps the result into the legal range.
    """

    #: Human-readable governor name (mirrors the cpufreq sysfs names).
    name: str = "base"

    def __init__(self, table: Optional[FrequencyTable] = None):
        self.table = table or nexus4_frequency_table()
        self._level_cap: int = self.table.max_level

    # -- level cap (what USTA manipulates) ---------------------------------------

    @property
    def level_cap(self) -> int:
        """The highest operating level the governor may currently select."""
        return self._level_cap

    def set_level_cap(self, level: Optional[int]) -> None:
        """Install a ceiling on the selectable level (``None`` removes it).

        Caps are clamped into the table's legal range: a cap at or above
        ``max_level`` is equivalent to no cap (``is_capped`` stays False), a
        negative cap clamps to the minimum level.  Only integral levels are
        accepted — fractional or boolean "levels" are programming errors, not
        values to truncate silently.
        """
        if level is None:
            self._level_cap = self.table.max_level
            return
        if isinstance(level, bool) or not isinstance(level, numbers.Integral):
            raise TypeError(f"level cap must be an integer level or None, got {level!r}")
        self._level_cap = self.table.clamp_level(int(level))

    def clear_level_cap(self) -> None:
        """Remove any installed ceiling."""
        self._level_cap = self.table.max_level

    @property
    def is_capped(self) -> bool:
        """True when an external ceiling below the top level is installed."""
        return self._level_cap < self.table.max_level

    # -- decision -----------------------------------------------------------------

    def select_level(self, observation: GovernorObservation) -> int:
        """Select the operating level for the next window (cap applied)."""
        level = self._target_level(observation)
        level = self.table.clamp_level(level)
        return min(level, self._level_cap)

    @abc.abstractmethod
    def _target_level(self, observation: GovernorObservation) -> int:
        """Return the uncapped target level for the next window."""

    def reset(self) -> None:
        """Reset any internal governor state (history, counters) and the cap."""
        self._level_cap = self.table.max_level

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, cap={self._level_cap})"
