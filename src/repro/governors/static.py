"""Static cpufreq policies: performance, powersave and userspace.

These are not evaluated in the paper but exist on every Android device and are
useful as comparison points in the benchmark harness (a *performance* run gives
the thermal worst case, *powersave* the floor).
"""

from __future__ import annotations

from typing import Optional

from ..api.registry import register_governor
from ..device.freq_table import FrequencyTable
from .base import Governor, GovernorObservation

__all__ = ["PerformanceGovernor", "PowersaveGovernor", "UserspaceGovernor"]


@register_governor("performance")
class PerformanceGovernor(Governor):
    """Always run at the highest allowed frequency."""

    name = "performance"

    def _target_level(self, observation: GovernorObservation) -> int:
        return self.table.max_level


@register_governor("powersave")
class PowersaveGovernor(Governor):
    """Always run at the lowest frequency."""

    name = "powersave"

    def _target_level(self, observation: GovernorObservation) -> int:
        return self.table.min_level


@register_governor("userspace")
class UserspaceGovernor(Governor):
    """Run at a fixed, user-selected frequency level."""

    name = "userspace"

    def __init__(self, table: Optional[FrequencyTable] = None, level: int = 0):
        super().__init__(table)
        self._requested_level = self.table.clamp_level(level)

    @property
    def requested_level(self) -> int:
        """The level requested from userspace."""
        return self._requested_level

    def set_requested_level(self, level: int) -> None:
        """Change the requested level."""
        self._requested_level = self.table.clamp_level(level)

    def set_requested_frequency(self, frequency_khz: int) -> None:
        """Change the requested level by frequency."""
        self._requested_level = self.table.level_of(frequency_khz)

    def _target_level(self, observation: GovernorObservation) -> int:
        return self._requested_level
