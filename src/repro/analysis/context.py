"""Shared experiment context.

Reproducing the paper's figures requires a trained skin-temperature predictor
and the user population; training the predictor means running the benchmark
suite to collect data, which is the most expensive part of the pipeline.
:class:`ReproductionContext` builds those shared pieces once and hands them to
every table/figure function, and :func:`default_context` caches one instance
per (seed, scale) so the benchmark harness does not retrain for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Tuple

from ..api.specs import GovernorSpec, ManagerSpec, PolicySpec
from ..core.pipeline import (
    TrainingData,
    collect_training_data,
    train_runtime_predictor,
)
from ..core.predictor import RuntimePredictor
from ..core.usta import USTAController, USTAControllerFactory
from ..users.population import ThermalComfortProfile, UserPopulation, paper_population

__all__ = ["ReproductionContext", "default_context"]


@dataclass
class ReproductionContext:
    """Everything the paper-reproduction experiments share.

    Attributes:
        predictor: trained run-time skin/screen predictor.
        training_data: the pooled dataset the predictor was trained on.
        population: the ten-user study population.
        seed: base seed used for workloads, sensors and fold assignment.
        duration_scale: benchmark-duration scaling used when collecting the
            training data (1.0 = the paper's full durations).
    """

    predictor: RuntimePredictor
    training_data: TrainingData
    population: UserPopulation
    seed: int = 0
    duration_scale: float = 1.0

    @classmethod
    def build(
        cls,
        seed: int = 0,
        duration_scale: float = 1.0,
        model_name: str = "reptree",
        jobs: Optional[int] = None,
    ) -> "ReproductionContext":
        """Collect training data, train the predictor and assemble the context.

        Args:
            jobs: worker-process count forwarded to
                :func:`~repro.core.pipeline.collect_training_data` (the most
                expensive stage of context construction).
        """
        data = collect_training_data(seed=seed, duration_scale=duration_scale, jobs=jobs)
        predictor = train_runtime_predictor(data, model_name=model_name, seed=seed)
        return cls(
            predictor=predictor,
            training_data=data,
            population=paper_population(),
            seed=seed,
            duration_scale=duration_scale,
        )

    def usta_for_limit(self, skin_limit_c: float, **kwargs) -> USTAController:
        """A USTA controller enforcing an explicit comfort limit."""
        return USTAController(predictor=self.predictor, skin_limit_c=skin_limit_c, **kwargs)

    def usta_for_user(self, profile: ThermalComfortProfile, **kwargs) -> USTAController:
        """A USTA controller configured for one study participant."""
        return USTAController.for_user(self.predictor, profile, **kwargs)

    def usta_default(self, **kwargs) -> USTAController:
        """USTA configured for the default (population-average) user."""
        return self.usta_for_limit(self.population.default_user().skin_limit_c, **kwargs)

    def usta_factory_for_limit(self, skin_limit_c: float) -> USTAControllerFactory:
        """A lean, picklable per-cell controller factory for an explicit limit.

        Prefer this over ``partial(context.usta_for_limit, ...)`` in
        :class:`~repro.runtime.plan.ExperimentCell` definitions: it carries
        only the predictor and the limit, not the whole context (training
        data included), which matters when cells cross process boundaries.
        """
        return USTAControllerFactory(predictor=self.predictor, skin_limit_c=skin_limit_c)

    def usta_factory_for_user(self, profile: ThermalComfortProfile) -> USTAControllerFactory:
        """A lean, picklable per-cell controller factory for one participant."""
        return USTAControllerFactory(
            predictor=self.predictor, skin_limit_c=profile.skin_limit_c
        )

    # -- declarative policy specs ---------------------------------------------------

    @staticmethod
    def baseline_policy_spec(governor: str = "ondemand") -> PolicySpec:
        """The bare baseline-governor policy as a declarative spec."""
        return PolicySpec(governor=GovernorSpec(governor), label=governor)

    @staticmethod
    def usta_policy_spec(
        skin_limit_c: Optional[float] = None,
        profile: Optional[ThermalComfortProfile] = None,
        governor: str = "ondemand",
    ) -> PolicySpec:
        """USTA over a baseline governor, as a declarative spec.

        The spec carries no trained artifact — pair it with this context's
        ``predictor`` at build time (``ExperimentCell(policy=spec,
        predictor=context.predictor)`` or ``open_session(spec,
        predictor=context.predictor)``).

        Args:
            skin_limit_c: explicit comfort limit (37 °C default-user when
                neither argument is given).  Ignored when ``profile`` is set.
            profile: configure the limit from one study participant.
            governor: baseline cpufreq governor name.
        """
        if profile is not None:
            limit = profile.skin_limit_c
        elif skin_limit_c is not None:
            limit = skin_limit_c
        else:
            limit = 37.0
        return PolicySpec(
            governor=GovernorSpec(governor),
            manager=ManagerSpec("usta", params={"skin_limit_c": limit}),
            label=f"usta+{governor}",
        )


@lru_cache(maxsize=4)
def default_context(seed: int = 0, duration_scale: float = 1.0) -> ReproductionContext:
    """A cached shared context (training runs once per (seed, scale) pair)."""
    return ReproductionContext.build(seed=seed, duration_scale=duration_scale)
