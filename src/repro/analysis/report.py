"""Plain-text rendering of the reproduced tables and figure series.

The benchmark harness and the CLI print these renderings so the reproduced
rows can be compared against the paper's at a glance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .figures import Figure1Row, Figure2Row, Figure3Row, Figure4Series, Figure5Row
from .table1 import Table1Row

__all__ = [
    "format_table",
    "render_table1",
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in materialised)
    return "\n".join(lines)


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Render the reproduced Table 1 (with the paper's values alongside)."""
    headers = [
        "benchmark",
        "base screen",
        "base skin",
        "base GHz",
        "USTA screen",
        "USTA skin",
        "USTA GHz",
        "paper base skin",
        "paper USTA skin",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.benchmark,
                f"{row.baseline_max_screen_c:.1f}",
                f"{row.baseline_max_skin_c:.1f}",
                f"{row.baseline_avg_freq_ghz:.2f}",
                f"{row.usta_max_screen_c:.1f}",
                f"{row.usta_max_skin_c:.1f}",
                f"{row.usta_avg_freq_ghz:.2f}",
                f"{row.paper.baseline_max_skin_c:.1f}" if row.paper else "-",
                f"{row.paper.usta_max_skin_c:.1f}" if row.paper else "-",
            ]
        )
    return format_table(headers, body)


def render_figure1(rows: Sequence[Figure1Row]) -> str:
    """Render the per-user comfort-threshold study."""
    headers = ["user", "skin limit (C)", "screen limit (C)", "discomfort onset (min)"]
    body = []
    for row in rows:
        onset = "-" if row.onset_time_s is None else f"{row.onset_time_s / 60.0:.1f}"
        body.append([row.user_id, f"{row.skin_limit_c:.1f}", f"{row.screen_limit_c:.1f}", onset])
    return format_table(headers, body)


def render_figure2(rows: Sequence[Figure2Row]) -> str:
    """Render the time-over-threshold series of Figure 2."""
    headers = ["user", "skin limit (C)", "% time over limit"]
    body = [
        [row.user_id, f"{row.skin_limit_c:.1f}", f"{row.percent_time_over_limit:.1f}"]
        for row in rows
    ]
    return format_table(headers, body)


def render_figure3(rows: Sequence[Figure3Row]) -> str:
    """Render the prediction-error comparison of Figure 3."""
    headers = ["model", "skin err %", "screen err %", "skin err % (1C deadband)", "screen err % (1C deadband)"]
    body = [
        [
            row.model_name,
            f"{row.skin_error_rate_pct:.2f}",
            f"{row.screen_error_rate_pct:.2f}",
            f"{row.skin_error_rate_deadband_pct:.2f}",
            f"{row.screen_error_rate_deadband_pct:.2f}",
        ]
        for row in rows
    ]
    return format_table(headers, body)


def render_figure4(series: Figure4Series, every_s: float = 180.0) -> str:
    """Render the down-sampled Skype temperature traces of Figure 4."""
    headers = ["time (min)", "baseline skin", "USTA skin", "baseline screen", "USTA screen"]
    body = [
        [
            f"{row['time_s'] / 60.0:.0f}",
            f"{row['baseline_skin_c']:.1f}",
            f"{row['usta_skin_c']:.1f}",
            f"{row['baseline_screen_c']:.1f}",
            f"{row['usta_screen_c']:.1f}",
        ]
        for row in series.sampled_series(every_s=every_s)
    ]
    table = format_table(headers, body)
    footer = (
        f"\npeak skin reduction: {series.peak_skin_reduction_c:.1f} C "
        f"(paper: 4.1 C); average frequency reduction: "
        f"{series.average_frequency_reduction_fraction * 100:.0f}% (paper: 34%)"
    )
    return table + footer


def render_figure5(rows: Sequence[Figure5Row], summary: Dict[str, float]) -> str:
    """Render the preference-study ratings of Figure 5."""
    headers = ["user", "baseline rating", "USTA rating", "preference", "USTA acted"]
    body = [
        [
            row.user_id,
            str(row.baseline_rating),
            str(row.usta_rating),
            row.preference,
            "yes" if row.usta_ever_active else "no",
        ]
        for row in rows
    ]
    table = format_table(headers, body)
    footer = (
        f"\nmean baseline rating: {summary['mean_baseline_rating']:.1f} (paper: 4.0); "
        f"mean USTA rating: {summary['mean_usta_rating']:.1f} (paper: 4.3); "
        f"prefer USTA: {summary['prefer_usta']:.0f}, prefer baseline: "
        f"{summary['prefer_baseline']:.0f}, no difference: {summary['no_difference']:.0f}"
    )
    return table + footer
