"""USTA vs. the stock trip-point throttler on a replayed real-device trace.

The paper's core claim is that one-size-fits-all thermal management — which
is exactly what a device's HAL threshold ladder encodes — wastes throughput
on heat-tolerant users and leaves heat-sensitive ones uncomfortable.  This
module stages that comparison on *recorded* telemetry: every scheme replays
the same HAL trace (:mod:`repro.telemetry.replay`), so differences come from
policy alone.

Because the trace is recorded, the loop is open: a cap cannot cool the
captured temperatures.  Scoring therefore measures what each scheme *would
have done*:

* **discomfort** — minutes the recorded skin temperature sat above the
  user's true comfort limit while the scheme had **no** cap installed
  (uncovered discomfort: the scheme watched the user overheat and did
  nothing);
* **throughput loss** — the time-weighted fraction of the recorded CPU
  frequency the scheme's caps would have shaved off.

Three schemes per study participant, rendered on the same
discomfort-vs-throughput axes as the adaptation frontier:

* ``trip-stock`` — the ladder the device shipped with, identical for
  everyone (snippet 2's SKIN trips);
* ``trip-user`` — the stock ladder re-anchored per user
  (:func:`ladder_for_limit`): trip spacing preserved, top trip moved onto
  the user's comfort limit — the best a trip-point mechanism can do with
  per-user knowledge;
* ``usta`` — the paper's controller at the user's limit, predicting skin
  temperature from the trace's cpu/battery channels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..api.session import PolicySession, open_session
from ..api.specs import ManagerSpec, PolicySpec
from ..api.types import TelemetrySample
from ..telemetry.hal import ThresholdLadder
from ..telemetry.trip import DEFAULT_SKIN_TRIPS_C
from ..users.population import paper_population
from .adaptation import FrontierPoint
from .report import format_table

__all__ = [
    "HAL_SCHEMES",
    "default_skin_ladder",
    "ladder_for_limit",
    "user_trip_ladders",
    "hal_comparison",
    "render_hal_comparison",
]

HAL_SCHEMES = ("trip-stock", "trip-user", "usta")


def default_skin_ladder() -> ThresholdLadder:
    """The stock SKIN ladder (snippet 2): trips at [36, 38, 40, 42, 45] °C."""
    return ThresholdLadder(name="SKIN", hot_thresholds_c=DEFAULT_SKIN_TRIPS_C)


def ladder_for_limit(
    limit_c: float, base: Optional[ThresholdLadder] = None
) -> ThresholdLadder:
    """Re-anchor a ladder onto one user's comfort limit.

    The whole ladder shifts so its hottest trip — where the stock policy
    clamps to the minimum frequency — lands exactly on the user's limit,
    preserving the trip spacing (the escalation schedule) of the original.
    This is the paper's per-user knowledge expressed in the only vocabulary
    a trip-point mechanism has: threshold positions.
    """
    base = base if base is not None else default_skin_ladder()
    top = base.top_trip_c
    if top is None:
        raise ValueError(
            f"ladder {base.name!r} has no finite trip points to anchor "
            "(all-NaN ladders cannot encode a comfort limit)"
        )
    return base.shifted(limit_c - top)


def user_trip_ladders(
    population=None, base: Optional[ThresholdLadder] = None
) -> Dict[str, ThresholdLadder]:
    """Per-user re-anchored ladders for the paper's population (+ default).

    Maps each of the 11 comfort settings — the ten study participants plus
    the 37 °C default user — onto a ladder position via
    :func:`ladder_for_limit`.
    """
    population = population if population is not None else paper_population()
    return {
        profile.user_id: ladder_for_limit(profile.skin_limit_c, base=base)
        for profile in population.with_default()
    }


def _session_for_scheme(
    scheme: str, profile, context, base: ThresholdLadder
) -> PolicySession:
    if scheme == "trip-stock":
        spec = PolicySpec(
            manager=ManagerSpec(
                "trip-point",
                params={"hot_thresholds_c": list(base.hot_thresholds_c)},
            )
        )
        return open_session(spec)
    if scheme == "trip-user":
        ladder = ladder_for_limit(profile.skin_limit_c, base=base)
        spec = PolicySpec(
            manager=ManagerSpec(
                "trip-point",
                params={"hot_thresholds_c": list(ladder.hot_thresholds_c)},
            )
        )
        return open_session(spec)
    if scheme == "usta":
        spec = PolicySpec(
            manager=ManagerSpec("usta", params={"skin_limit_c": profile.skin_limit_c})
        )
        return open_session(spec, predictor=context.predictor)
    raise ValueError(f"unknown HAL comparison scheme {scheme!r}; known: {HAL_SCHEMES}")


def _score_session(
    session: PolicySession,
    telemetry: Sequence[TelemetrySample],
    user_id: str,
    scheme: str,
    true_limit_c: float,
) -> FrontierPoint:
    """Replay the trace through one session and integrate the two metrics."""
    times = [sample.time_s for sample in telemetry]
    # Step i covers [t_i, t_{i+1}); the last step reuses the previous width
    # (a single-sample trace counts one nominal second).
    widths = [t1 - t0 for t0, t1 in zip(times, times[1:])]
    widths.append(widths[-1] if widths else 1.0)

    discomfort_s = 0.0
    recorded_freq_s = 0.0
    allowed_freq_s = 0.0
    for sample, dt in zip(telemetry, widths):
        decision = session.feed(sample)
        skin = sample.sensor_readings["skin"]
        if skin > true_limit_c and not decision.active:
            discomfort_s += dt
        allowed = sample.frequency_khz
        if decision.max_frequency_khz is not None:
            allowed = min(allowed, decision.max_frequency_khz)
        recorded_freq_s += sample.frequency_khz * dt
        allowed_freq_s += allowed * dt
    loss = 0.0
    if recorded_freq_s > 0:
        loss = 1.0 - allowed_freq_s / recorded_freq_s
    return FrontierPoint(
        user_id=user_id,
        scheme=scheme,
        true_limit_c=true_limit_c,
        discomfort_minutes=discomfort_s / 60.0,
        throughput_loss=loss,
        final_limit_c=session.current_limit_c,
    )


def hal_comparison(
    context,
    telemetry: Sequence[TelemetrySample],
    schemes: Sequence[str] = HAL_SCHEMES,
    base_ladder: Optional[ThresholdLadder] = None,
) -> List[FrontierPoint]:
    """Score USTA against trip-point throttling on one recorded trace.

    Args:
        context: a :class:`~repro.analysis.context.ReproductionContext` (or
            anything with ``predictor`` and ``population``); only the USTA
            scheme consults the predictor.
        telemetry: the replayed trace — must carry a ``skin`` channel (and
            ``cpu``/``battery`` for USTA), e.g. from
            :func:`repro.telemetry.replay.load_hal_telemetry`.
        schemes: which of :data:`HAL_SCHEMES` to run.
        base_ladder: the stock ladder (snippet 2's SKIN ladder by default);
            also the anchor ``trip-user`` re-positions per user.

    Returns one :class:`~repro.analysis.adaptation.FrontierPoint` per
    (user, scheme), over the ten participants plus the default user.
    """
    telemetry = list(telemetry)
    if not telemetry:
        raise ValueError("empty telemetry stream: nothing to compare on")
    if "skin" not in telemetry[0].sensor_readings:
        channels = ", ".join(sorted(telemetry[0].sensor_readings)) or "none"
        raise ValueError(
            "the HAL comparison needs a 'skin' channel in the replayed "
            f"telemetry (channels present: {channels})"
        )
    base = base_ladder if base_ladder is not None else default_skin_ladder()
    population = getattr(context, "population", None) or paper_population()

    points: List[FrontierPoint] = []
    for profile in population.with_default():
        for scheme in schemes:
            session = _session_for_scheme(scheme, profile, context, base)
            points.append(
                _score_session(
                    session,
                    telemetry,
                    user_id=profile.user_id,
                    scheme=scheme,
                    true_limit_c=profile.skin_limit_c,
                )
            )
    return points


def render_hal_comparison(points: Sequence[FrontierPoint]) -> str:
    """The per-(user, scheme) table plus per-scheme means."""
    if not points:
        raise ValueError("no comparison points to render")
    header = ["user", "scheme", "true °C", "discomfort min", "thr. loss %"]
    table = [
        [
            p.user_id,
            p.scheme,
            f"{p.true_limit_c:.1f}",
            f"{p.discomfort_minutes:.2f}",
            f"{100.0 * p.throughput_loss:.1f}",
        ]
        for p in points
    ]
    lines = [format_table(header, table)]
    by_scheme: Dict[str, List[FrontierPoint]] = {}
    for point in points:
        by_scheme.setdefault(point.scheme, []).append(point)
    lines.append("")
    lines.append("scheme means (over the population):")
    for scheme, group in by_scheme.items():
        discomfort = sum(p.discomfort_minutes for p in group) / len(group)
        loss = sum(p.throughput_loss for p in group) / len(group)
        lines.append(
            f"  {scheme:>10}: {discomfort:.2f} uncovered-discomfort min, "
            f"{100.0 * loss:.1f}% throughput loss"
        )
    return "\n".join(lines)
