"""Data series behind the paper's Figures 1–5.

Every function regenerates the quantitative content of one figure from the
simulation (there is no plotting dependency; the benchmark harness prints the
series and EXPERIMENTS.md records them next to the paper's values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pipeline import evaluate_prediction_models
from ..runtime import BatchRunner, ExperimentCell, ExperimentPlan
from ..sim.experiments import run_benchmark
from ..sim.results import SimulationResult
from ..users.comfort import discomfort_onset_time
from ..users.population import DEFAULT_USER_ID, ThermalComfortProfile
from ..users.satisfaction import (
    PreferenceResult,
    RatingModel,
    SessionOutcome,
    summarize_preferences,
)
from ..workloads.benchmarks import ANTUTU_TESTER_BENCHMARK, SKYPE_BENCHMARK, build_benchmark
from .context import ReproductionContext

__all__ = [
    "Figure1Row",
    "figure1_user_thresholds",
    "Figure2Row",
    "figure2_time_over_threshold",
    "Figure3Row",
    "figure3_prediction_errors",
    "Figure4Series",
    "figure4_skype_traces",
    "Figure5Row",
    "figure5_user_ratings",
]

MINUTE = 60.0


# ---------------------------------------------------------------------------
# Figure 1 — per-user comfort thresholds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure1Row:
    """One participant of the comfort-threshold study."""

    user_id: str
    skin_limit_c: float
    screen_limit_c: float
    onset_time_s: Optional[float]


def figure1_user_thresholds(
    context: ReproductionContext,
    duration_s: float = 45 * MINUTE,
) -> List[Figure1Row]:
    """Reproduce the Figure 1 study.

    Each participant holds the phone while the AnTuTu Tester stress workload
    runs under the baseline governor; the row records the participant's skin
    and screen comfort limits and the time at which the simulated skin
    temperature first crosses their limit (the instant they would have ended
    the test).
    """
    result = run_benchmark(
        ANTUTU_TESTER_BENCHMARK,
        governor="ondemand",
        seed=context.seed,
        duration_s=duration_s,
    )
    skin_series = result.skin_temps_c()
    rows = []
    for profile in context.population:
        onset = discomfort_onset_time(skin_series, profile.skin_limit_c, dt_s=result.dt_s)
        rows.append(
            Figure1Row(
                user_id=profile.user_id,
                skin_limit_c=profile.skin_limit_c,
                screen_limit_c=profile.screen_limit_c,
                onset_time_s=onset,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 2 — % of the Skype call spent above each user's limit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure2Row:
    """One of the eleven limit settings of Figure 2."""

    user_id: str
    skin_limit_c: float
    percent_time_over_limit: float


def figure2_time_over_threshold(
    context: ReproductionContext,
    duration_s: float = 30 * MINUTE,
    under_usta: bool = True,
    runner: Optional[BatchRunner] = None,
) -> List[Figure2Row]:
    """Reproduce Figure 2: the half-hour Skype call against eleven limits.

    USTA is configured with each participant's limit (plus the default user's
    37 °C average limit) and the row reports the share of the call the skin
    temperature still spends above that limit.  ``under_usta=False`` runs the
    baseline governor instead, which isolates how much of the exposure is
    USTA's doing versus the workload's.

    The eleven limit settings share one Skype trace, so the default runner
    integrates the whole sweep as a single vectorized population.
    """
    profiles = list(context.population.with_default())
    trace = build_benchmark(SKYPE_BENCHMARK, seed=context.seed, duration_s=duration_s)
    plan = ExperimentPlan(
        [
            ExperimentCell(
                cell_id=profile.user_id,
                trace=trace,
                governor="ondemand",
                manager_factory=(
                    context.usta_factory_for_user(profile) if under_usta else None
                ),
                seed=context.seed,
                metadata={"user_id": profile.user_id},
            )
            for profile in profiles
        ]
    )
    store = (runner if runner is not None else BatchRunner.for_jobs(None)).run(plan)
    return [
        Figure2Row(
            user_id=profile.user_id,
            skin_limit_c=profile.skin_limit_c,
            percent_time_over_limit=store.result_of(profile.user_id).percent_time_over(
                profile.skin_limit_c
            ),
        )
        for profile in profiles
    ]


# ---------------------------------------------------------------------------
# Figure 3 — prediction error of the four learners
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure3Row:
    """Cross-validated error rates of one learner."""

    model_name: str
    skin_error_rate_pct: float
    screen_error_rate_pct: float
    skin_error_rate_deadband_pct: float
    screen_error_rate_deadband_pct: float


def figure3_prediction_errors(
    context: ReproductionContext,
    folds: int = 10,
    model_names: Optional[Sequence[str]] = None,
) -> List[Figure3Row]:
    """Reproduce Figure 3: 10-fold CV error of the four candidate learners."""
    results = evaluate_prediction_models(
        context.training_data,
        model_names=model_names or ("linear_regression", "multilayer_perceptron", "m5p", "reptree"),
        folds=folds,
        seed=context.seed,
    )
    rows = []
    for model_name, by_target in results.items():
        rows.append(
            Figure3Row(
                model_name=model_name,
                skin_error_rate_pct=by_target["skin"].error_rate_pct,
                screen_error_rate_pct=by_target["screen"].error_rate_pct,
                skin_error_rate_deadband_pct=by_target["skin"].error_rate_deadband_pct,
                screen_error_rate_deadband_pct=by_target["screen"].error_rate_deadband_pct,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 4 — Skype temperature traces, baseline vs USTA
# ---------------------------------------------------------------------------


@dataclass
class Figure4Series:
    """Temperature traces of the half-hour Skype call under both schemes."""

    limit_c: float
    baseline: SimulationResult
    usta: SimulationResult

    @property
    def peak_skin_reduction_c(self) -> float:
        """Baseline peak skin temperature minus USTA's (the paper reports 4.1 °C)."""
        return self.baseline.max_skin_temp_c - self.usta.max_skin_temp_c

    @property
    def average_frequency_reduction_fraction(self) -> float:
        """Relative average-frequency reduction under USTA (the paper reports 34 %)."""
        base = self.baseline.average_frequency_ghz
        if base <= 0:
            return 0.0
        return (base - self.usta.average_frequency_ghz) / base

    def sampled_series(self, every_s: float = 30.0) -> List[Dict[str, float]]:
        """Down-sampled rows (time, baseline/USTA skin and screen temps) for reporting."""
        stride = max(1, int(round(every_s / self.baseline.dt_s)))
        rows = []
        n = min(len(self.baseline), len(self.usta))
        for i in range(0, n, stride):
            rows.append(
                {
                    "time_s": self.baseline.records[i].time_s,
                    "baseline_skin_c": self.baseline.records[i].skin_temp_c,
                    "usta_skin_c": self.usta.records[i].skin_temp_c,
                    "baseline_screen_c": self.baseline.records[i].screen_temp_c,
                    "usta_screen_c": self.usta.records[i].screen_temp_c,
                }
            )
        return rows


def figure4_skype_traces(
    context: ReproductionContext,
    duration_s: float = 30 * MINUTE,
    limit_c: Optional[float] = None,
    runner: Optional[BatchRunner] = None,
) -> Figure4Series:
    """Reproduce Figure 4: the Skype call under the baseline and under USTA.

    The baseline/USTA pair shares one trace and executes as a two-member
    vectorized population under the default runner.
    """
    limit = limit_c if limit_c is not None else context.population.default_user().skin_limit_c
    trace = build_benchmark(SKYPE_BENCHMARK, seed=context.seed, duration_s=duration_s)
    plan = ExperimentPlan(
        [
            ExperimentCell(
                cell_id="baseline",
                trace=trace,
                governor="ondemand",
                seed=context.seed,
                metadata={"scheme": "baseline"},
            ),
            ExperimentCell(
                cell_id="usta",
                trace=trace,
                governor="ondemand",
                manager_factory=context.usta_factory_for_limit(limit),
                seed=context.seed,
                metadata={"scheme": "usta"},
            ),
        ]
    )
    store = (runner if runner is not None else BatchRunner.for_jobs(None)).run(plan)
    return Figure4Series(
        limit_c=limit,
        baseline=store.result_of("baseline"),
        usta=store.result_of("usta"),
    )


# ---------------------------------------------------------------------------
# Figure 5 — satisfaction ratings of the blind preference study
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure5Row:
    """One participant's ratings in the preference study."""

    user_id: str
    baseline_rating: int
    usta_rating: int
    preference: str
    usta_ever_active: bool


def figure5_user_ratings(
    context: ReproductionContext,
    duration_s: float = 30 * MINUTE,
    rating_model: Optional[RatingModel] = None,
    runner: Optional[BatchRunner] = None,
) -> Tuple[List[Figure5Row], Dict[str, float]]:
    """Reproduce Figure 5: per-user ratings of baseline vs user-specific USTA.

    Each participant "holds the phone" through two 30-minute Skype sessions —
    one under the baseline governor and one under USTA configured to their own
    comfort limit — and rates both via the satisfaction model.  The shared
    baseline plus the ten user-specific USTA sessions all replay one trace,
    so the default runner integrates them as a single eleven-member
    vectorized population.

    Returns:
        The per-user rows and the aggregate summary (mean ratings and
        preference counts).
    """
    model = rating_model or RatingModel()
    trace = build_benchmark(SKYPE_BENCHMARK, seed=context.seed, duration_s=duration_s)
    profiles = list(context.population)
    plan = ExperimentPlan(
        [
            ExperimentCell(
                cell_id="baseline",
                trace=trace,
                governor="ondemand",
                seed=context.seed,
                metadata={"scheme": "baseline"},
            )
        ]
    ).extend(
        ExperimentCell(
            cell_id=f"usta/{profile.user_id}",
            trace=trace,
            governor="ondemand",
            manager_factory=context.usta_factory_for_user(profile),
            seed=context.seed,
            metadata={"scheme": "usta", "user_id": profile.user_id},
        )
        for profile in profiles
    )
    store = (runner if runner is not None else BatchRunner.for_jobs(None)).run(plan)
    baseline_result = store.result_of("baseline")

    rows: List[Figure5Row] = []
    results: List[PreferenceResult] = []
    for profile in profiles:
        usta_result = store.result_of(f"usta/{profile.user_id}")
        baseline_outcome = SessionOutcome(
            scheme="baseline",
            comfort=baseline_result.comfort_against(profile.skin_limit_c, profile.user_id),
            delivered_work=baseline_result.delivered_work,
            demanded_work=baseline_result.demanded_work,
        )
        usta_outcome = SessionOutcome(
            scheme="usta",
            comfort=usta_result.comfort_against(profile.skin_limit_c, profile.user_id),
            delivered_work=usta_result.delivered_work,
            demanded_work=usta_result.demanded_work,
        )
        preference = model.preference(baseline_outcome, usta_outcome, profile)
        results.append(preference)
        rows.append(
            Figure5Row(
                user_id=profile.user_id,
                baseline_rating=preference.baseline_rating,
                usta_rating=preference.usta_rating,
                preference=preference.preference,
                usta_ever_active=usta_result.usta_active_fraction > 0,
            )
        )
    return rows, summarize_preferences(results)
