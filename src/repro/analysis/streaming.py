"""Single-pass streaming aggregates over step-record streams.

The batch analysis path materialises a full :class:`~repro.sim.results.
SimulationResult` per cell and reduces it with numpy.  For streamed sweeps
(``sweep --stream-to``) that would defeat the point, so this module provides
the O(1)-memory equivalents: a :class:`StreamingCellSummary` folds records
one at a time into running maxima/sums as the executor emits them, and a
:class:`SummarySink` collects one summary per streamed cell — which is how
``table1``, the adaptation frontier and the population sweep now compute
their tables without ever holding a cell's record list.

Exactness: maxima, counts, over-limit times and the final comfort limit are
bit-identical to the batch reductions; running means (average frequency /
power, throughput ratio) divide a running sum where numpy uses pairwise
summation, so those may differ from the batch numbers in the last ulp —
far below the precision any report prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

from ..sim.results import StepRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.plan import ExperimentCell
    from ..runtime.streamstore import StreamingResultStore

__all__ = [
    "StreamingCellSummary",
    "CellSummaryEntry",
    "StreamedPlanRun",
    "SummarySink",
    "summarize_records",
    "stream_summaries",
    "stream_plan_summaries",
]


class StreamingCellSummary:
    """Running reduction of one cell's step-record stream.

    Exposes the same headline metrics as :class:`~repro.sim.results.
    SimulationResult` (same property names, so the two are interchangeable
    for report building) plus the comfort metrics against an optional
    per-cell limit, while holding O(1) state however long the trace is.

    Args:
        dt_s: the trace's sampling period.
        limit_c: optional comfort limit to track time-over/exceedance for.
    """

    def __init__(self, dt_s: float, limit_c: Optional[float] = None):
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        self.dt_s = dt_s
        self.limit_c = limit_c
        self._n = 0
        self._max_skin = float("-inf")
        self._max_screen = float("-inf")
        self._max_cpu = float("-inf")
        self._freq_sum = 0.0
        self._power_sum = 0.0
        self._demand_sum = 0.0
        self._delivered_sum = 0.0
        self._usta_active = 0
        self._over_limit = 0
        self._peak_exceedance = 0.0
        self._final_limit: Optional[float] = None

    def add(self, record: StepRecord) -> None:
        """Fold one step record into the running aggregates."""
        self._n += 1
        if record.skin_temp_c > self._max_skin:
            self._max_skin = record.skin_temp_c
        if record.screen_temp_c > self._max_screen:
            self._max_screen = record.screen_temp_c
        if record.cpu_temp_c > self._max_cpu:
            self._max_cpu = record.cpu_temp_c
        self._freq_sum += record.frequency_khz
        self._power_sum += record.power_w
        self._demand_sum += record.demand
        self._delivered_sum += record.delivered_work
        if record.usta_active:
            self._usta_active += 1
        if self.limit_c is not None and record.skin_temp_c > self.limit_c:
            self._over_limit += 1
            excess = record.skin_temp_c - self.limit_c
            if excess > self._peak_exceedance:
                self._peak_exceedance = excess
        self._final_limit = record.comfort_limit_c

    # -- SimulationResult-compatible metrics -------------------------------------

    @property
    def n_records(self) -> int:
        """Records folded so far."""
        return self._n

    @property
    def duration_s(self) -> float:
        """Simulated duration."""
        return self._n * self.dt_s

    @property
    def max_skin_temp_c(self) -> float:
        """Maximum skin temperature (bit-identical to the batch reduction)."""
        return self._max_skin if self._n else float("nan")

    @property
    def max_screen_temp_c(self) -> float:
        """Maximum screen temperature."""
        return self._max_screen if self._n else float("nan")

    @property
    def max_cpu_temp_c(self) -> float:
        """Maximum CPU die temperature."""
        return self._max_cpu if self._n else float("nan")

    @property
    def average_frequency_ghz(self) -> float:
        """Average CPU frequency (running mean; last-ulp vs ``np.mean``)."""
        return (self._freq_sum / self._n) / 1e6 if self._n else float("nan")

    @property
    def average_power_w(self) -> float:
        """Average platform power (running mean)."""
        return self._power_sum / self._n if self._n else float("nan")

    @property
    def total_energy_j(self) -> float:
        """Total platform energy over the run (Joules)."""
        return self._power_sum * self.dt_s if self._n else 0.0

    @property
    def demanded_work(self) -> float:
        """Total work the workload asked for."""
        return self._demand_sum

    @property
    def delivered_work(self) -> float:
        """Total work actually executed."""
        return self._delivered_sum

    @property
    def throughput_ratio(self) -> float:
        """Delivered / demanded work (1.0 = no slowdown)."""
        if self._demand_sum <= 0:
            return 1.0
        return min(1.0, self._delivered_sum / self._demand_sum)

    @property
    def usta_active_fraction(self) -> float:
        """Fraction of steps in which USTA had a frequency cap installed."""
        return self._usta_active / self._n if self._n else 0.0

    # -- comfort (against the tracked limit) -------------------------------------

    @property
    def final_comfort_limit_c(self) -> Optional[float]:
        """The live comfort limit the run *ended* on (adaptive policies move it)."""
        return self._final_limit

    @property
    def time_over_limit_s(self) -> float:
        """Time spent above the tracked limit (requires ``limit_c``)."""
        if self.limit_c is None:
            raise ValueError("no comfort limit was tracked for this summary")
        return self._over_limit * self.dt_s

    @property
    def percent_time_over_limit(self) -> float:
        """Percentage of the run spent above the tracked limit."""
        if self._n == 0:
            return 0.0
        return min(100.0, 100.0 * self.time_over_limit_s / self.duration_s)

    @property
    def peak_exceedance_c(self) -> float:
        """Peak excess over the tracked limit (0 when never exceeded)."""
        if self.limit_c is None:
            raise ValueError("no comfort limit was tracked for this summary")
        return self._peak_exceedance

    def summary(self) -> Dict[str, float]:
        """Headline metrics, same keys as :meth:`SimulationResult.summary`."""
        return {
            "max_skin_temp_c": self.max_skin_temp_c,
            "max_screen_temp_c": self.max_screen_temp_c,
            "max_cpu_temp_c": self.max_cpu_temp_c,
            "average_frequency_ghz": self.average_frequency_ghz,
            "average_power_w": self.average_power_w,
            "throughput_ratio": self.throughput_ratio,
            "usta_active_fraction": self.usta_active_fraction,
        }


def summarize_records(
    records: Iterable[StepRecord], dt_s: float, limit_c: Optional[float] = None
) -> StreamingCellSummary:
    """Fold any record iterable into a :class:`StreamingCellSummary`."""
    summary = StreamingCellSummary(dt_s, limit_c=limit_c)
    for record in records:
        summary.add(record)
    return summary


@dataclass(frozen=True)
class CellSummaryEntry:
    """One streamed cell's identity plus its folded summary."""

    cell: "ExperimentCell"
    summary: StreamingCellSummary
    wall_time_s: float


class SummarySink:
    """Record sink folding each streamed cell into a running summary.

    Tee this next to a :class:`~repro.runtime.streamstore.
    StreamingResultStore` and a sweep gets its report table for free — no
    cell's records are ever retained.

    Args:
        limit_for: optional callable mapping a cell to the comfort limit its
            summary should track (e.g. the cell's user's true limit), or
            ``None`` for no comfort tracking.
    """

    def __init__(
        self, limit_for: Optional[Callable[["ExperimentCell"], Optional[float]]] = None
    ):
        self.limit_for = limit_for
        self.entries: List[CellSummaryEntry] = []
        self.by_id: Dict[str, CellSummaryEntry] = {}
        self._cell: Optional["ExperimentCell"] = None
        self._summary: Optional[StreamingCellSummary] = None

    def begin_cell(self, cell, workload_name, governor_name, dt_s) -> None:
        if self._cell is not None:
            raise RuntimeError(
                f"cell {self._cell.cell_id!r} is still open; end_cell it first"
            )
        limit = self.limit_for(cell) if self.limit_for is not None else None
        self._cell = cell
        self._summary = StreamingCellSummary(dt_s, limit_c=limit)

    def emit(self, record: StepRecord) -> None:
        self._summary.add(record)

    def end_cell(self, wall_time_s: float = 0.0, logger=None) -> None:
        if self._cell is None:
            raise RuntimeError("no open cell to commit")
        entry = CellSummaryEntry(
            cell=self._cell, summary=self._summary, wall_time_s=wall_time_s
        )
        self._cell = None
        self._summary = None
        self.entries.append(entry)
        self.by_id[entry.cell.cell_id] = entry


@dataclass(frozen=True)
class StreamedPlanRun:
    """What one streamed plan execution produced.

    Attributes:
        store: the (closed) shard store the plan streamed into.
        entries: one summary per *plan* cell — freshly executed cells folded
            live, previously persisted ones re-folded from the shards.
        executed_ids: cells this run actually simulated.
        resumed_ids: plan cells answered from the directory's existing shards.
    """

    store: "StreamingResultStore"
    entries: Dict[str, CellSummaryEntry]
    executed_ids: frozenset
    resumed_ids: frozenset


def stream_plan_summaries(
    runner,
    plan,
    stream_to,
    limit_for: Optional[Callable[["ExperimentCell"], Optional[float]]] = None,
    resume: bool = False,
) -> StreamedPlanRun:
    """Stream a plan into a shard directory and summarise every plan cell.

    The one streaming orchestration every report shares (``table1
    --stream-to``, the adaptation frontier, the population sweep): open (or
    resume) the directory, tee the record stream into the store and a
    :class:`SummarySink`, skip already-persisted cells, and re-fold exactly
    the plan's previously-completed cells from the shards — cells some other
    plan left in the directory are ignored, not crashed on.

    Raises:
        ValueError: the directory already holds cells and ``resume`` is
            False (refusing beats silently mixing two sweeps' outputs).
    """
    from ..runtime.stream import TeeSink
    from ..runtime.streamstore import StreamingResultStore

    store = StreamingResultStore(stream_to)
    completed = store.completed_cell_ids
    if completed and not resume:
        raise ValueError(
            f"{store.directory} already holds {len(completed)} cell(s); "
            "pass resume=True to continue it or point stream_to at a fresh "
            "directory"
        )
    sink = SummarySink(limit_for=limit_for)
    runner.run_stream(plan, TeeSink(store, sink), skip=completed)
    store.close()
    entries = dict(sink.by_id)
    resumed = frozenset(completed & {cell.cell_id for cell in plan})
    if resumed:
        entries.update(stream_summaries(store, limit_for=limit_for, only=resumed))
    return StreamedPlanRun(
        store=store,
        entries=entries,
        executed_ids=frozenset(sink.by_id),
        resumed_ids=resumed,
    )


def stream_summaries(
    store: "StreamingResultStore",
    limit_for: Optional[Callable[["ExperimentCell"], Optional[float]]] = None,
    only: Optional[Iterable[str]] = None,
) -> Dict[str, CellSummaryEntry]:
    """Summaries of (a subset of) a streamed store's cells, one cell at a time.

    This is how a resumed sweep reports on the cells a *previous* run
    completed: each shard line is materialised, folded and released, so the
    pass stays O(1) in memory per cell.
    """
    wanted = frozenset(only) if only is not None else None
    summaries: Dict[str, CellSummaryEntry] = {}
    for entry in store.iter_results():
        cell_id = entry.cell.cell_id
        if wanted is not None and cell_id not in wanted:
            continue
        limit = limit_for(entry.cell) if limit_for is not None else None
        summaries[cell_id] = CellSummaryEntry(
            cell=entry.cell,
            summary=summarize_records(
                entry.result.records, entry.result.dt_s, limit_c=limit
            ),
            wall_time_s=entry.wall_time_s,
        )
    return summaries
