"""The paper's reported numbers, kept verbatim for comparison.

These constants are *reference values transcribed from the paper*, used only
to (a) fill the "paper" columns of EXPERIMENTS.md and the benchmark output and
(b) check the *shape* of the reproduction (orderings, winners, approximate
magnitudes).  The simulator is not expected to match them exactly — the
authors measured a physical Nexus 4, we measure a calibrated compact model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "PaperTable1Row",
    "PAPER_TABLE1",
    "PAPER_FIG3_ERROR_RATES",
    "PAPER_FIG3_DEADBAND_ERROR_RATES",
    "PAPER_FIG2_DEFAULT_USER_PCT",
    "PAPER_FIG4_PEAK_REDUCTION_C",
    "PAPER_FIG5_MEAN_RATINGS",
    "PAPER_DEFAULT_LIMIT_C",
    "PAPER_USER_STUDY_RANGE_C",
    "PAPER_PREDICTION_OVERHEAD_MS",
]

#: USTA's default comfort limit: the average of the ten users' reported limits.
PAPER_DEFAULT_LIMIT_C = 37.0

#: The spread of skin-temperature comfort limits reported in Figure 1.
PAPER_USER_STUDY_RANGE_C: Tuple[float, float] = (34.0, 42.8)

#: For the default user, the fraction of the 30-minute Skype call spent above
#: the comfort limit (Figure 2).
PAPER_FIG2_DEFAULT_USER_PCT = 15.6

#: Peak skin-temperature reduction of USTA vs baseline on the Skype call (Figure 4).
PAPER_FIG4_PEAK_REDUCTION_C = 4.1

#: Average error rates (%) of the four learners, 10-fold CV on the global set (Figure 3).
PAPER_FIG3_ERROR_RATES: Dict[str, Dict[str, float]] = {
    "linear_regression": {"skin": 2.5, "screen": 2.3},
    "multilayer_perceptron": {"skin": 2.3, "screen": 2.1},
    "m5p": {"skin": 0.96, "screen": 0.89},
    "reptree": {"skin": 0.95, "screen": 0.86},
}

#: Error rates (%) once sub-1 °C differences are ignored (M5P wins this variant).
PAPER_FIG3_DEADBAND_ERROR_RATES: Dict[str, Dict[str, float]] = {
    "m5p": {"skin": 0.26, "screen": 0.17},
}

#: Mean satisfaction ratings of the preference study (Figure 5).
PAPER_FIG5_MEAN_RATINGS: Dict[str, float] = {"baseline": 4.0, "usta": 4.3}

#: Run-time prediction overhead reported in §IV.A (milliseconds per window).
PAPER_PREDICTION_OVERHEAD_MS: Dict[str, float] = {
    "skin": 5.603,
    "screen": 6.708,
    "total": 12.383,
}


@dataclass(frozen=True)
class PaperTable1Row:
    """One benchmark column of the paper's Table 1."""

    benchmark: str
    baseline_max_screen_c: float
    baseline_max_skin_c: float
    baseline_avg_freq_ghz: float
    usta_max_screen_c: float
    usta_max_skin_c: float
    usta_avg_freq_ghz: float


#: Table 1 as printed in the paper (USTA limit = 37 °C, the default user).
PAPER_TABLE1: Dict[str, PaperTable1Row] = {
    row.benchmark: row
    for row in (
        PaperTable1Row("antutu_cpu", 33.4, 37.9, 1.04, 31.7, 35.1, 1.22),
        PaperTable1Row("antutu_cpu_gpu_ram", 32.5, 36.3, 1.01, 31.4, 35.1, 0.91),
        PaperTable1Row("antutu_user_exp", 28.5, 31.9, 1.22, 29.2, 32.7, 1.05),
        PaperTable1Row("antutu_full", 30.5, 34.0, 1.11, 31.5, 34.0, 0.99),
        PaperTable1Row("antutu_cpu_long", 35.1, 39.3, 1.09, 34.9, 38.8, 0.69),
        PaperTable1Row("antutu_tester", 34.3, 42.8, 1.16, 34.9, 41.1, 0.89),
        PaperTable1Row("gfxbench", 26.3, 29.3, 0.85, 28.5, 34.8, 1.16),
        PaperTable1Row("vellamo", 28.6, 31.0, 0.97, 29.7, 32.1, 0.96),
        PaperTable1Row("skype", 40.5, 42.8, 1.09, 35.4, 38.7, 0.72),
        PaperTable1Row("youtube", 28.0, 30.4, 0.80, 30.0, 32.9, 0.64),
        PaperTable1Row("record", 32.8, 37.1, 0.86, 32.5, 36.6, 0.81),
        PaperTable1Row("charging", 29.0, 31.7, 0.45, 29.9, 32.3, 0.39),
        PaperTable1Row("game", 33.3, 36.6, 1.14, 31.7, 35.1, 0.63),
    )
}
