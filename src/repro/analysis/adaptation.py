"""Analysis of the comfort-limit adaptation loop.

Two reports:

* **Convergence** (:func:`adaptation_trajectories`): drive each study
  participant's satisfaction-driven feedback through an adapter on a synthetic
  temperature probe that sweeps back and forth across the population's whole
  comfort range, and record the limit trajectory.  This answers the paper's
  implicit question — *does the feedback loop actually find the user's
  limit?* — independently of any one workload's thermal trajectory.  The
  probe is open-loop (it ignores the cap), which is the right test for
  threshold *trackers*; step controllers like ``feedback_step`` regulate in
  closed loop and are expected to ride their clamp here instead.
* **Frontier** (:func:`comfort_performance_frontier`): for each user, compare
  schemes (static default limit, oracle per-user limit, each adaptation
  strategy starting from the mis-specified default) on one benchmark and
  report discomfort-minutes (time the *true* skin temperature spent above the
  user's *true* limit) against throughput loss.  Adaptation is worth shipping
  exactly when its points sit near the oracle's corner of that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..api.specs import AdapterSpec, ManagerSpec, PolicySpec
from ..users.adaptation import WARM_START_TEMPS, UserFeedbackModel
from ..users.population import ThermalComfortProfile, UserPopulation, paper_population
from .report import format_table

__all__ = [
    "AdaptationTrajectory",
    "FrontierPoint",
    "WARM_START_TEMPS",
    "limit_probe_temperatures",
    "adaptation_trajectories",
    "comfort_performance_frontier",
    "render_adaptation",
    "render_frontier",
]


@dataclass(frozen=True)
class AdaptationTrajectory:
    """One user's limit trajectory under one adaptation strategy."""

    user_id: str
    adapter: str
    true_limit_c: float
    initial_limit_c: float
    final_limit_c: float
    n_events: int
    times_s: Tuple[float, ...]
    limits_c: Tuple[float, ...]

    @property
    def final_error_c(self) -> float:
        """Absolute distance of the converged limit from the user's true limit."""
        return abs(self.final_limit_c - self.true_limit_c)


def limit_probe_temperatures(
    min_c: float = 31.0,
    max_c: float = 45.0,
    period_s: float = 900.0,
    duration_s: float = 5400.0,
    dt_s: float = 1.0,
) -> np.ndarray:
    """A triangle-wave felt-temperature probe crossing every plausible limit.

    Each cycle ramps from ``min_c`` up to ``max_c`` and back, so every user in
    the paper's population (limits 34.0–42.8 °C) sees both "warm but fine"
    and "too hot" temperatures near their own threshold several times over
    the probe — the condition under which a threshold tracker can converge.
    """
    if not min_c < max_c:
        raise ValueError("min_c must be below max_c")
    if period_s <= 0 or duration_s <= 0 or dt_s <= 0:
        raise ValueError("period_s, duration_s and dt_s must be positive")
    times = np.arange(dt_s, duration_s + dt_s / 2, dt_s)
    phase = (times % period_s) / period_s
    triangle = 1.0 - np.abs(2.0 * phase - 1.0)  # 0 → 1 → 0 over one period
    return min_c + (max_c - min_c) * triangle


def adaptation_trajectories(
    adapter: Union[str, AdapterSpec],
    population: Optional[UserPopulation] = None,
    initial_limit_c: float = 37.0,
    include_default_user: bool = True,
    report_period_s: float = 10.0,
    probe_c: Optional[Sequence[float]] = None,
    dt_s: float = 1.0,
    trajectory_points: int = 120,
) -> List[AdaptationTrajectory]:
    """Run the feedback loop open-loop for every user and record the limit path.

    Args:
        adapter: strategy name or full :class:`~repro.api.specs.AdapterSpec`
            (its ``feedback`` config is replaced per user).
        population: study population (the paper's ten participants by default).
        initial_limit_c: the mis-specified starting limit every user begins at.
        include_default_user: also run the population-average "default" user.
        report_period_s: simulated-user report period.
        probe_c: felt-temperature samples (defaults to
            :func:`limit_probe_temperatures`).
        dt_s: sampling period of the probe.
        trajectory_points: cap on stored (time, limit) pairs per user (the
            full trajectory is downsampled evenly; the final point is exact).
    """
    spec = AdapterSpec(name=adapter) if isinstance(adapter, str) else adapter
    population = population if population is not None else paper_population()
    temps = (
        np.asarray(list(probe_c), dtype=float)
        if probe_c is not None
        else limit_probe_temperatures(dt_s=dt_s)
    )
    profiles = population.with_default() if include_default_user else population.profiles()

    rows: List[AdaptationTrajectory] = []
    for profile in profiles:
        strategy = spec.build(initial_limit_c=initial_limit_c)
        feedback = UserFeedbackModel(
            true_limit_c=profile.skin_limit_c, report_period_s=report_period_s
        )
        times: List[float] = []
        limits: List[float] = []
        n_events = 0
        for index, temp in enumerate(temps):
            time_s = (index + 1) * dt_s
            event = feedback.observe(time_s, float(temp))
            if event is not None:
                strategy.observe(event)
                n_events += 1
            times.append(time_s)
            limits.append(strategy.current_limit_c)
        stride = max(1, len(times) // trajectory_points)
        kept = list(range(0, len(times), stride))
        if kept[-1] != len(times) - 1:
            kept.append(len(times) - 1)
        rows.append(
            AdaptationTrajectory(
                user_id=profile.user_id,
                adapter=spec.name,
                true_limit_c=profile.skin_limit_c,
                initial_limit_c=initial_limit_c,
                final_limit_c=limits[-1],
                n_events=n_events,
                times_s=tuple(times[i] for i in kept),
                limits_c=tuple(limits[i] for i in kept),
            )
        )
    return rows


@dataclass(frozen=True)
class FrontierPoint:
    """One (user, scheme) point of the discomfort vs. throughput trade-off."""

    user_id: str
    scheme: str
    true_limit_c: float
    discomfort_minutes: float
    throughput_loss: float
    final_limit_c: Optional[float]

    @property
    def final_error_c(self) -> Optional[float]:
        """How far the scheme's final limit sits from the user's true limit."""
        if self.final_limit_c is None:
            return None
        return abs(self.final_limit_c - self.true_limit_c)


def comfort_performance_frontier(
    context,
    adapters: Sequence[str] = ("fixed", "feedback_step", "quantile_tracker"),
    benchmark: str = "skype",
    duration_s: float = 600.0,
    default_limit_c: float = 37.0,
    user_ids: Optional[Sequence[str]] = None,
    report_period_s: float = 9.0,
    warm_start: bool = True,
    jobs: Optional[int] = None,
    stream_to=None,
    resume: bool = False,
) -> List[FrontierPoint]:
    """Discomfort-minutes vs. throughput-loss for static and adaptive schemes.

    Schemes per user: ``static`` (USTA frozen at the population default —
    what a user-agnostic deployment ships), ``oracle`` (USTA frozen at the
    user's true limit — the paper's per-user ideal) and one adaptive scheme
    per entry of ``adapters`` (USTA starting from the default with the
    feedback loop switched on).  All cells share one trace, so the whole
    frontier integrates as a single vectorized population.

    Args:
        context: a :class:`~repro.analysis.context.ReproductionContext` (or
            anything with ``predictor``, ``population`` and ``seed``).
        adapters: adapter registry names to evaluate.
        benchmark: benchmark replayed by every cell.
        duration_s: trace duration.
        default_limit_c: the mis-specified limit static/adaptive schemes start at.
        user_ids: subset of participants (all ten by default).
        report_period_s: simulated-user report period for adaptive schemes.
        warm_start: start from :data:`WARM_START_TEMPS` so short traces reach
            comfort-relevant temperatures immediately.
        jobs: worker processes (``None`` = vectorized in-process).
        stream_to: optional directory; when given, cells stream into a
            :class:`~repro.runtime.streamstore.StreamingResultStore` there
            and the frontier is computed by single-pass streaming comfort
            aggregation — O(1) memory per cell, shards left for later reuse.
        resume: with ``stream_to``, continue a directory that already holds
            cells (only the missing ones run); refused otherwise.
    """
    from ..runtime import BatchRunner, ExperimentCell, ExperimentPlan
    from ..workloads.benchmarks import build_benchmark

    population = context.population
    profiles = [population[uid] for uid in user_ids] if user_ids else population.profiles()
    trace = build_benchmark(benchmark, seed=context.seed, duration_s=duration_s)
    initial_temps = WARM_START_TEMPS if warm_start else None

    def usta_policy(limit_c: float) -> PolicySpec:
        return PolicySpec(manager=ManagerSpec("usta", params={"skin_limit_c": limit_c}))

    plan = ExperimentPlan()
    for profile in profiles:
        schemes: List[Tuple[str, PolicySpec]] = [
            ("static", usta_policy(default_limit_c)),
            ("oracle", usta_policy(profile.skin_limit_c)),
        ]
        for name in adapters:
            adaptive = PolicySpec(
                manager=ManagerSpec("usta", params={"skin_limit_c": default_limit_c}),
                adapter=AdapterSpec(name, feedback={"report_period_s": report_period_s}),
            ).for_user(profile)
            schemes.append((name, adaptive))
        for scheme, policy in schemes:
            plan.add(
                ExperimentCell(
                    cell_id=f"{profile.user_id}/{scheme}",
                    trace=trace,
                    policy=policy,
                    predictor=context.predictor,
                    seed=context.seed,
                    initial_temps=initial_temps,
                    metadata={"user_id": profile.user_id, "scheme": scheme},
                )
            )

    runner = BatchRunner.for_jobs(jobs)
    limits = {profile.user_id: profile.skin_limit_c for profile in profiles}
    if stream_to is not None:
        from .streaming import stream_plan_summaries

        run = stream_plan_summaries(
            runner,
            plan,
            stream_to,
            limit_for=lambda cell: limits[cell.metadata["user_id"]],
            resume=resume,
        )

        def point_metrics(cell_id, profile):
            summary = run.entries[cell_id].summary
            return (
                summary.time_over_limit_s,
                1.0 - summary.throughput_ratio,
                summary.final_comfort_limit_c,
            )

    else:
        store = runner.run(plan)

        def point_metrics(cell_id, profile):
            result = store.result_of(cell_id)
            comfort = result.comfort_against(profile.skin_limit_c, user_id=profile.user_id)
            return (
                comfort.time_over_limit_s,
                1.0 - result.throughput_ratio,
                result.records[-1].comfort_limit_c,
            )

    points: List[FrontierPoint] = []
    for profile in profiles:
        for scheme in ("static", "oracle", *adapters):
            over_s, loss, final_limit = point_metrics(f"{profile.user_id}/{scheme}", profile)
            points.append(
                FrontierPoint(
                    user_id=profile.user_id,
                    scheme=scheme,
                    true_limit_c=profile.skin_limit_c,
                    discomfort_minutes=over_s / 60.0,
                    throughput_loss=loss,
                    final_limit_c=final_limit,
                )
            )
    return points


def render_adaptation(rows: Sequence[AdaptationTrajectory]) -> str:
    """Text table of per-user convergence (the CLI's ``adapt`` output)."""
    if not rows:
        raise ValueError("no adaptation trajectories to render")
    header = ["user", "adapter", "true °C", "start °C", "final °C", "|err| °C", "events"]
    table = [
        [
            row.user_id,
            row.adapter,
            f"{row.true_limit_c:.1f}",
            f"{row.initial_limit_c:.1f}",
            f"{row.final_limit_c:.2f}",
            f"{row.final_error_c:.2f}",
            str(row.n_events),
        ]
        for row in rows
    ]
    worst = max(rows, key=lambda r: r.final_error_c)
    footer = (
        f"worst convergence: user {worst.user_id} "
        f"({worst.final_error_c:.2f} °C from true limit)"
    )
    return format_table(header, table) + "\n" + footer


def render_frontier(points: Sequence[FrontierPoint]) -> str:
    """Text table of the discomfort vs. throughput frontier."""
    if not points:
        raise ValueError("no frontier points to render")
    header = ["user", "scheme", "true °C", "discomfort min", "thr. loss %", "final limit °C"]
    table = [
        [
            p.user_id,
            p.scheme,
            f"{p.true_limit_c:.1f}",
            f"{p.discomfort_minutes:.2f}",
            f"{100.0 * p.throughput_loss:.1f}",
            "-" if p.final_limit_c is None else f"{p.final_limit_c:.2f}",
        ]
        for p in points
    ]
    return format_table(header, table)
