"""Reproduction of the paper's Table 1.

For every one of the thirteen benchmarks the table reports the maximum screen
temperature, the maximum skin temperature and the average CPU frequency, once
under the baseline ondemand governor and once under USTA configured for the
default user's 37 °C limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..runtime import BatchRunner, ExperimentCell, ExperimentPlan
from ..workloads.benchmarks import BENCHMARK_NAMES, BENCHMARKS, build_benchmark
from .context import ReproductionContext
from .paper_data import PAPER_DEFAULT_LIMIT_C, PAPER_TABLE1, PaperTable1Row

__all__ = ["Table1Row", "reproduce_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's measurements under the baseline governor and under USTA."""

    benchmark: str
    title: str
    baseline_max_screen_c: float
    baseline_max_skin_c: float
    baseline_avg_freq_ghz: float
    usta_max_screen_c: float
    usta_max_skin_c: float
    usta_avg_freq_ghz: float
    paper: Optional[PaperTable1Row] = None

    @property
    def skin_reduction_c(self) -> float:
        """How much USTA lowers the peak skin temperature."""
        return self.baseline_max_skin_c - self.usta_max_skin_c

    @property
    def usta_should_act(self) -> bool:
        """True when the baseline peak comes within 2 °C of the 37 °C limit.

        The paper's claim: "In all applications where the temperature is
        within 2 °C or exceeds this threshold for the default DVFS, USTA is
        able to reduce the peak temperature."
        """
        return self.baseline_max_skin_c >= PAPER_DEFAULT_LIMIT_C - 2.0


def reproduce_table1(
    context: ReproductionContext,
    benchmarks: Optional[Sequence[str]] = None,
    duration_scale: float = 1.0,
    skin_limit_c: float = PAPER_DEFAULT_LIMIT_C,
    runner: Optional[BatchRunner] = None,
    jobs: Optional[int] = None,
    stream_to=None,
    resume: bool = False,
) -> List[Table1Row]:
    """Run every benchmark under both DVFS configurations and tabulate the results.

    The 13 × {ondemand, USTA} grid is declared as an
    :class:`~repro.runtime.plan.ExperimentPlan` and executed through a
    :class:`~repro.runtime.runner.BatchRunner`: by default each benchmark's
    baseline/USTA pair integrates as one vectorized population (bit-identical
    to sequential runs), and ``jobs > 1`` fans the cells out over a process
    pool instead.

    Args:
        context: shared context (provides the trained predictor).
        benchmarks: subset of benchmark names (all thirteen by default).
        duration_scale: scale factor applied to every benchmark's duration
            (1.0 reproduces the paper's run lengths; smaller values give a
            faster, rougher table).
        skin_limit_c: USTA's comfort limit (37 °C = the default user).
        runner: custom batch runner (overrides ``jobs``).
        jobs: worker-process count for parallel execution (see
            :meth:`BatchRunner.for_jobs`).
        stream_to: optional directory; when given, cells stream into a
            :class:`~repro.runtime.streamstore.StreamingResultStore` there
            and the table is built from single-pass streaming summaries —
            per-cell memory stays bounded however long the runs are.
        resume: with ``stream_to``, skip cells the directory already holds
            (crash-safe restart); their rows come from the persisted shards.
    """
    if duration_scale <= 0:
        raise ValueError("duration_scale must be positive")
    names = tuple(benchmarks) if benchmarks is not None else BENCHMARK_NAMES

    plan = ExperimentPlan()
    schemes = (
        ("baseline", context.baseline_policy_spec()),
        ("usta", context.usta_policy_spec(skin_limit_c=skin_limit_c)),
    )
    for index, name in enumerate(names):
        spec = BENCHMARKS[name]
        duration = spec.duration_s * duration_scale
        trace = build_benchmark(name, seed=context.seed + index, duration_s=duration)
        for scheme, policy in schemes:
            plan.add(
                ExperimentCell(
                    cell_id=f"{name}/{scheme}",
                    trace=trace,
                    policy=policy,
                    predictor=context.predictor if policy.manager is not None else None,
                    seed=context.seed + index,
                    metadata={"benchmark": name, "scheme": scheme},
                )
            )
    active_runner = runner if runner is not None else BatchRunner.for_jobs(jobs)
    if stream_to is not None:
        metrics = _stream_metrics(active_runner, plan, stream_to, resume)
    else:
        store = active_runner.run(plan)
        metrics = store.result_of

    rows: List[Table1Row] = []
    for name in names:
        spec = BENCHMARKS[name]
        baseline = metrics(f"{name}/baseline")
        usta = metrics(f"{name}/usta")
        rows.append(
            Table1Row(
                benchmark=name,
                title=spec.title,
                baseline_max_screen_c=baseline.max_screen_temp_c,
                baseline_max_skin_c=baseline.max_skin_temp_c,
                baseline_avg_freq_ghz=baseline.average_frequency_ghz,
                usta_max_screen_c=usta.max_screen_temp_c,
                usta_max_skin_c=usta.max_skin_temp_c,
                usta_avg_freq_ghz=usta.average_frequency_ghz,
                paper=PAPER_TABLE1.get(name),
            )
        )
    return rows


def _stream_metrics(runner: BatchRunner, plan, stream_to, resume: bool):
    """Stream the plan into a shard directory; per-cell metric lookup back.

    Maxima and averages come from :class:`~repro.analysis.streaming.
    StreamingCellSummary` objects (property-compatible with
    :class:`SimulationResult`), folded live for freshly executed cells and
    re-folded shard-by-shard for cells a resumed run skipped.
    """
    from .streaming import stream_plan_summaries

    run = stream_plan_summaries(runner, plan, stream_to, resume=resume)
    return lambda cell_id: run.entries[cell_id].summary
