"""repro — reproduction of "User-specific Skin Temperature-aware DVFS for Smartphones".

The package is organised as:

* :mod:`repro.core` — the paper's contribution: the run-time skin/screen
  temperature predictor and the USTA governor layer;
* :mod:`repro.thermal` — compact RC thermal network of the handset;
* :mod:`repro.device` — the simulated Nexus-4-class platform (DVFS table,
  power model, battery, sensors);
* :mod:`repro.governors` — cpufreq governors (ondemand baseline and friends);
* :mod:`repro.workloads` — synthetic traces for the thirteen paper benchmarks;
* :mod:`repro.ml` — from-scratch regressors replacing WEKA;
* :mod:`repro.users` — the study population, comfort and satisfaction models;
* :mod:`repro.sim` — the fixed-step simulation engine and experiment helpers;
* :mod:`repro.analysis` — reproduction of Table 1 and Figures 1-5;
* :mod:`repro.api` — the unified policy API: registry-backed declarative
  specs (``PolicySpec``) and the online ``PolicySession`` streaming
  interface;
* :mod:`repro.runtime` — the batched experiment runtime (plans, executors,
  result stores).

Quickstart::

    from repro.analysis import ReproductionContext, figure4_skype_traces

    context = ReproductionContext.build(duration_scale=0.2)
    fig4 = figure4_skype_traces(context, duration_s=600)
    print(fig4.peak_skin_reduction_c)
"""

from .api import CapDecision, TelemetrySample
from .api.session import PolicySession, SessionPool, open_session
from .api.specs import GovernorSpec, ManagerSpec, PolicySpec, PredictorSpec, SpecError
from .core import (
    PredictionFeatures,
    RuntimePredictor,
    SkinScreenPrediction,
    ThrottlePolicy,
    USTAController,
    build_usta_controller,
    collect_training_data,
    evaluate_prediction_models,
    train_runtime_predictor,
)
from .device import DeviceActivity, DevicePlatform, nexus4_frequency_table
from .governors import OndemandGovernor, create_governor
from .sim import SimulationResult, Simulator, run_benchmark, run_workload
from .users import ThermalComfortProfile, UserPopulation, paper_population
from .workloads import BENCHMARK_NAMES, build_benchmark

__version__ = "1.5.0"

__all__ = [
    "CapDecision",
    "TelemetrySample",
    "PolicySession",
    "SessionPool",
    "open_session",
    "GovernorSpec",
    "ManagerSpec",
    "PolicySpec",
    "PredictorSpec",
    "SpecError",
    "PredictionFeatures",
    "RuntimePredictor",
    "SkinScreenPrediction",
    "ThrottlePolicy",
    "USTAController",
    "build_usta_controller",
    "collect_training_data",
    "evaluate_prediction_models",
    "train_runtime_predictor",
    "DeviceActivity",
    "DevicePlatform",
    "nexus4_frequency_table",
    "OndemandGovernor",
    "create_governor",
    "SimulationResult",
    "Simulator",
    "run_benchmark",
    "run_workload",
    "ThermalComfortProfile",
    "UserPopulation",
    "paper_population",
    "BENCHMARK_NAMES",
    "build_benchmark",
    "__version__",
]
