"""The unified policy API.

Two complementary interfaces over the same components:

* **Declarative specs** (:mod:`repro.api.specs`): :class:`PolicySpec` /
  :class:`GovernorSpec` / :class:`ManagerSpec` / :class:`PredictorSpec` are
  JSON round-trippable descriptions of a DVFS policy, resolved through the
  decorator-based registries of :mod:`repro.api.registry`.  Experiment cells,
  ``policy.json`` CLI files and service configs all speak this form.
* **Online sessions** (:mod:`repro.api.session`): ``open_session(spec,
  user_profile)`` returns a :class:`PolicySession` whose
  ``feed(TelemetrySample) → CapDecision`` loop is the USTA daemon decoupled
  from the simulator; :class:`SessionPool` batches predictions across
  thousands of concurrent sessions, and :mod:`repro.api.serve` drives that at
  population scale.

Only the leaf modules (registries and wire types) are imported eagerly; the
spec and session layers load on first attribute access, because they sit
*above* the component packages that register themselves here.
"""

from __future__ import annotations

import importlib

from .registry import (
    ADAPTERS,
    GOVERNORS,
    MANAGERS,
    PREDICTORS,
    ComponentRegistry,
    UnknownComponentError,
    register_adapter,
    register_governor,
    register_manager,
    register_predictor,
)
from .types import CapDecision, FeedbackEvent, TelemetrySample

_LAZY_EXPORTS = {
    "SpecError": "specs",
    "GovernorSpec": "specs",
    "PredictorSpec": "specs",
    "ManagerSpec": "specs",
    "AdapterSpec": "specs",
    "PolicySpec": "specs",
    "PolicySession": "session",
    "SessionPool": "session",
    "open_session": "session",
    "ServeReport": "serve",
    "replay_telemetry": "serve",
    "run_serve": "serve",
}

__all__ = [
    "ComponentRegistry",
    "UnknownComponentError",
    "GOVERNORS",
    "MANAGERS",
    "PREDICTORS",
    "ADAPTERS",
    "register_governor",
    "register_manager",
    "register_predictor",
    "register_adapter",
    "CapDecision",
    "TelemetrySample",
    "FeedbackEvent",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
