"""Resident session plane: columnar policy state for the serving path.

The batch engine's policy plane (:mod:`repro.runtime.vectorized`) owns its
members for one run and writes state back at the batch boundary.  Serving has
no boundary — sessions live for days and ticks arrive forever — so the
:class:`SessionPlane` keeps eligible sessions' controller/adapter/counter
state in columnar arrays that persist *across* ``feed_many`` calls.  A tick
then becomes: a vectorized feedback gate, a vectorized prediction-due mask,
one stacked feature build without per-session ``PredictionFeatures`` objects,
one batched predict (or probe-verified column-sweep kernel) per predictor
group, array-wide cap computation via the shared
:mod:`~repro.runtime.plane_kernels`, and grouped adapter updates.

**Parity contract.**  Decisions must be bit-identical to today's
``SessionPool.feed_many`` path (which itself matches the scalar
``PolicySession.feed``).  Eligibility (:func:`session_plane_ineligibility`)
therefore requires, beyond the batch plane's manager checks, that the
predictor either probes to the verified column-sweep linear form or declares
``batch_row_invariant`` models — so batch *composition* can never change any
row's bits, and a resident session may drop to a scalar feed (external
feedback ticks, warm restores) and return without any observable difference.

**Coherence protocol.**  The plane's arrays are the master copy while a
session is resident.  Out-of-band object access brackets itself with
:meth:`sync_to_session` (arrays → objects) before reading/mutating and
:meth:`refresh_from_session` (objects → arrays, decision cache invalidated)
after — :class:`~repro.api.session.PolicySession` does this inside ``feed``,
``feed_feedback`` and ``reset``, and :mod:`repro.fleet.state` around
snapshot/restore.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.predictor import PredictionFeatures
from ..runtime.plane_kernels import (
    ADAPTER_QUANTILE,
    ADAPTER_STEP,
    AdapterArrays,
    NO_CAP,
    caps_from_margins,
    compile_policy_steps,
    manager_vectorization_ineligibility,
    predictor_fast_kernel,
)
from ..users.adaptation import AdaptiveComfortManager
from .types import CapDecision

__all__ = ["SessionPlane", "session_plane_ineligibility"]


def session_plane_ineligibility(session) -> Optional[str]:
    """Why ``session`` cannot ride the resident plane (``None`` = it can).

    Extends :func:`manager_vectorization_ineligibility` with the serving
    path's batch-composition requirement: without a probe-verified linear
    kernel, every consulted model must declare ``batch_row_invariant`` so a
    whole-pool matrix predict, a partial-batch predict and a scalar
    single-row predict all land on the same bits.
    """
    manager = session.manager
    if manager is None:
        return "bare-governor policy (no thermal manager)"
    reason = manager_vectorization_ineligibility(manager)
    if reason is not None:
        return reason
    inner = manager.inner if isinstance(manager, AdaptiveComfortManager) else manager
    if predictor_fast_kernel(inner.predictor, inner.predict_screen) is None:
        models = [inner.predictor.skin_model]
        if inner.predict_screen and inner.predictor.screen_model is not None:
            models.append(inner.predictor.screen_model)
        for model in models:
            if not getattr(model, "batch_row_invariant", False):
                return (
                    f"predictor model {type(model).__name__} is not "
                    "batch-row-invariant and has no verified column-sweep form"
                )
    return None


#: (array attribute name, dtype, fill) — the plane's numeric columns.
_NUMERIC_FIELDS = (
    ("period_minus", float, 0.0),
    ("last_time", float, np.nan),
    ("pred_skin", float, np.nan),
    ("latency", float, 0.0),
    ("count", np.int64, 0),
    ("cap_req", np.int64, NO_CAP),
    ("feeds", np.int64, 0),
    ("caps", np.int64, 0),
    ("valid", bool, False),
    ("has_fb", bool, False),
    ("fb_last", float, np.nan),
    ("fb_period_minus", float, 0.0),
    ("fb_threshold", float, 0.0),
    ("fb_pending", bool, False),
    ("group_id", np.int64, 0),
    ("policy_id", np.int64, 0),
)

#: Object columns (per-row Python objects; fancy indexing still vectorizes).
_OBJECT_FIELDS = ("skin_obj", "screen_obj", "decisions", "freq_levels")


class SessionPlane:
    """SoA state for a pool's resident (plane-eligible) sessions.

    Rows are dense ``0.._n-1``; closing a session swap-removes its row (the
    moved session's ``_plane_row`` is updated).  Per-row ``CapDecision``
    objects are cached and only rebuilt when their inputs changed (a due
    prediction, an adapter limit move, or an out-of-band refresh) — between
    prediction windows the scalar path returns a *value-equal* held decision
    every tick, so reusing the frozen object is observably identical.
    """

    def __init__(self) -> None:
        self._n = 0
        self._capacity = 0
        for name, dtype, fill in _NUMERIC_FIELDS:
            setattr(self, name, np.empty(0, dtype=dtype))
        for name in _OBJECT_FIELDS:
            setattr(self, name, np.empty(0, dtype=object))
        self.ad = AdapterArrays(0)
        self.sessions: List[object] = []
        self.inners: List[object] = []
        self.adapters: List[Optional[object]] = []
        self.feedbacks: List[Optional[object]] = []
        # An empty plane's (empty) groups are trivially consistent, so adds
        # take the incremental path from the first session on — a 100k-open
        # serving warm-up must not defer an O(n) rebuild onto the first tick.
        self._groups_stale = False
        self._pred_groups: List[Tuple] = []
        self._policy_groups: List[Tuple] = []
        self._pred_key_to_gid: Dict[Tuple, int] = {}
        self._pol_key_to_gid: Dict[Tuple, int] = {}
        self._fb_rows_list: List[int] = []
        self._fb_rows_dirty = False
        self._fb_rows = np.empty(0, dtype=np.int64)
        self._fb_wake = -np.inf
        self._freq_cache: Dict[Tuple, Tuple] = {}
        # Value-keyed CapDecision memo: fleets have far fewer *distinct*
        # decisions than sessions (shared tables, quantized sensor grids), and
        # frozen-dataclass construction is the rebuild loop's dominant cost.
        # Decisions are immutable, so sharing one object per value is
        # observably identical.  Cleared when it outgrows its cap (a bound on
        # long-run growth, not an LRU — hit rates are all-or-nothing here).
        self._decision_memo: Dict[Tuple, CapDecision] = {}
        # -- observability (PolicyService.stats / ServeReport) ----------------
        self.tick_count = 0
        self.prediction_count = 0
        self.batch_count = 0

    @property
    def size(self) -> int:
        """Resident session count."""
        return self._n

    # -- membership -------------------------------------------------------------

    def _grow(self, capacity: int) -> None:
        old = self._capacity
        for name, dtype, fill in _NUMERIC_FIELDS:
            fresh = np.full(capacity, fill, dtype=dtype)
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        for name in _OBJECT_FIELDS:
            fresh = np.full(capacity, None, dtype=object)
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        self.ad.grow(capacity)
        self._capacity = capacity

    def _freq_tuple(self, table) -> Optional[Tuple[int, ...]]:
        """Cached level→frequency lookup for decision building.

        Keyed by the table's *frequency ladder*, not object identity: every
        session owns its own ``FrequencyTable`` instance, and the decision
        memo uses ``id(levels)`` as the table component of its key — without
        value canonicalization here, 100k sessions on the same ladder would
        produce 100k distinct memo keys and the memo would never hit.
        """
        if table is None:
            return None
        key = tuple(table.frequencies_khz)
        cached = self._freq_cache.get(key)
        if cached is None:
            cached = tuple(
                table.frequency_at(level)
                for level in range(table.min_level, table.max_level + 1)
            )
            self._freq_cache[key] = cached
        return cached

    def add(self, session) -> int:
        """Adopt one eligible session onto the plane (row index back)."""
        i = self._n
        if i == self._capacity:
            self._grow(max(64, 2 * self._capacity))
        manager = session.manager
        if isinstance(manager, AdaptiveComfortManager):
            inner, adapter, model = manager.inner, manager.adapter, manager.feedback
        else:
            inner, adapter, model = manager, None, None
        self.sessions.append(session)
        self.inners.append(inner)
        self.adapters.append(adapter)
        self.feedbacks.append(model)
        self._n = i + 1
        self.freq_levels[i] = self._freq_tuple(
            session.table if session.resolve_frequency else None
        )
        session._plane = self
        session._plane_row = i
        self._load_row(i, session)
        if not self._groups_stale:
            # Incremental group assignment keeps open→feed interleavings from
            # paying an O(n) rebuild per open; an unseen predictor or policy
            # simply opens a new group (probe/compile costs are per group,
            # not per session).
            pkey = (id(inner.predictor), bool(inner.predict_screen))
            gid = self._pred_key_to_gid.get(pkey)
            if gid is None:
                gid = len(self._pred_groups)
                fast = predictor_fast_kernel(inner.predictor, bool(inner.predict_screen))
                self._pred_groups.append((inner.predictor, bool(inner.predict_screen), fast))
                self._pred_key_to_gid[pkey] = gid
            self.group_id[i] = gid
            pol_key = (inner.policy.steps, tuple(inner.table.frequencies_khz))
            pid = self._pol_key_to_gid.get(pol_key)
            if pid is None:
                pid = len(self._policy_groups)
                self._policy_groups.append(compile_policy_steps(inner.policy, inner.table))
                self._pol_key_to_gid[pol_key] = pid
            self.policy_id[i] = pid
            if model is not None:
                self._fb_rows_list.append(i)
                self._fb_rows_dirty = True
        return i

    def remove(self, session) -> None:
        """Swap-remove one resident session, writing its state back first."""
        self.sync_to_session(session)
        row = session._plane_row
        last = self._n - 1
        if row != last:
            for name, _, _ in _NUMERIC_FIELDS:
                column = getattr(self, name)
                column[row] = column[last]
            for name in _OBJECT_FIELDS:
                column = getattr(self, name)
                column[row] = column[last]
            self.ad.move_row(row, last)
            moved = self.sessions[last]
            self.sessions[row] = moved
            self.inners[row] = self.inners[last]
            self.adapters[row] = self.adapters[last]
            self.feedbacks[row] = self.feedbacks[last]
            moved._plane_row = row
        self.sessions.pop()
        self.inners.pop()
        self.adapters.pop()
        self.feedbacks.pop()
        self._n = last
        session._plane = None
        session._plane_row = -1
        self._groups_stale = True
        self._fb_wake = -np.inf

    # -- coherence protocol ------------------------------------------------------

    def _load_row(self, i: int, session) -> None:
        """Mirror one session's object state into row ``i`` (objects → arrays)."""
        inner = self.inners[i]
        self.period_minus[i] = inner.prediction_period_s - 1e-9
        last_time = inner._last_prediction_time
        self.last_time[i] = np.nan if last_time is None else last_time
        last_pred = inner._last_prediction
        self.pred_skin[i] = np.nan if last_pred is None else last_pred
        self.skin_obj[i] = last_pred
        self.screen_obj[i] = inner._last_screen_prediction
        self.latency[i] = inner._total_latency_s
        self.count[i] = inner._prediction_count
        cap = inner._current_cap
        self.cap_req[i] = NO_CAP if cap is None else cap
        self.ad.load(i, self.adapters[i], inner.current_skin_limit_c)
        model = self.feedbacks[i]
        self.has_fb[i] = model is not None
        if model is not None:
            report_s = model._last_report_s
            self.fb_last[i] = np.nan if report_s is None else report_s
            self.fb_period_minus[i] = model.report_period_s - 1e-9
            self.fb_threshold[i] = model.true_limit_c - model.comfort_band_c
            self.fb_pending[i] = bool(model._pending)
        else:
            self.fb_last[i] = np.nan
            self.fb_pending[i] = False
        self.feeds[i] = session._feed_count
        self.caps[i] = session._cap_count
        self.decisions[i] = session._last_decision
        # Force a rebuild from the (authoritative) arrays on the next tick:
        # the cached object may predate an adapter/limit mutation.
        self.valid[i] = False
        self._fb_wake = -np.inf

    def sync_to_session(self, session) -> None:
        """Write row state back into the session's policy objects (arrays → objects).

        Leaves the objects exactly as if every tick had run scalar; callers
        that then mutate them must :meth:`refresh_from_session`.
        """
        i = session._plane_row
        inner = self.inners[i]
        last_time = self.last_time[i]
        cap = int(self.cap_req[i])
        inner.restore_batch_state(
            last_prediction_time=None if math.isnan(last_time) else float(last_time),
            last_prediction=self.skin_obj[i],
            last_screen_prediction=self.screen_obj[i],
            total_latency_s=float(self.latency[i]),
            prediction_count=int(self.count[i]),
            current_cap=None if cap == NO_CAP else cap,
            live_limit_c=float(self.ad.limit[i]),
        )
        self.ad.writeback(i, self.adapters[i])
        # Feedback-model objects are authoritative already (the gate calls
        # them and mirrors their clocks), as are the session's counters here:
        session._feed_count = int(self.feeds[i])
        session._cap_count = int(self.caps[i])
        session._last_decision = self.decisions[i]

    def refresh_from_session(self, session) -> None:
        """Re-adopt a session's object state after out-of-band mutation."""
        self._load_row(session._plane_row, session)

    def set_counters(self, row: int, feed_count: int, cap_count: int) -> None:
        """Install restored feed/cap counters (``restore_counters`` support)."""
        self.feeds[row] = feed_count
        self.caps[row] = cap_count

    # -- grouping ---------------------------------------------------------------

    def _rebuild_groups(self) -> None:
        n = self._n
        pred: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        pol: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        for i in range(n):
            inner = self.inners[i]
            pred.setdefault((id(inner.predictor), bool(inner.predict_screen)), []).append(i)
            pol.setdefault(
                (inner.policy.steps, tuple(inner.table.frequencies_khz)), []
            ).append(i)
        self._pred_groups = []
        self._pred_key_to_gid = {}
        for gid, (key, members) in enumerate(pred.items()):
            inner = self.inners[members[0]]
            fast = predictor_fast_kernel(inner.predictor, bool(inner.predict_screen))
            self._pred_groups.append((inner.predictor, bool(inner.predict_screen), fast))
            self._pred_key_to_gid[key] = gid
            self.group_id[np.array(members, dtype=np.int64)] = gid
        self._policy_groups = []
        self._pol_key_to_gid = {}
        for pid, (key, members) in enumerate(pol.items()):
            inner = self.inners[members[0]]
            self._policy_groups.append(compile_policy_steps(inner.policy, inner.table))
            self._pol_key_to_gid[key] = pid
            self.policy_id[np.array(members, dtype=np.int64)] = pid
        self._fb_rows_list = [i for i in range(n) if self.feedbacks[i] is not None]
        self._fb_rows = np.array(self._fb_rows_list, dtype=np.int64)
        self._fb_rows_dirty = False
        self._fb_wake = -np.inf
        self._groups_stale = False

    # -- the resident tick ------------------------------------------------------

    def tick_many(self, rows_list: Sequence[int], samples: Sequence) -> List[CapDecision]:
        """Advance the given resident rows by their per-session samples."""
        rows = np.array(rows_list, dtype=np.int64)
        t = np.fromiter((s.time_s for s in samples), dtype=float, count=len(samples))
        self._tick(rows, t, samples, None)
        return self.decisions[rows].tolist()

    def tick_all(self, sample) -> None:
        """Advance every resident row by one shared sample (``feed_all``).

        Decisions land in :attr:`decisions`; the caller gathers them by row
        (returning a list here would only be re-keyed into a dict anyway).
        """
        rows = np.arange(self._n, dtype=np.int64)
        self._tick(rows, sample.time_s, None, sample)

    def _tick(self, rows, t, samples, shared_sample) -> None:
        """One vectorized tick over ``rows``.

        ``t``/``samples`` are per-row (general path) or ``t`` is a scalar and
        ``shared_sample`` the one sample every row consumes (``feed_all``).
        Step order mirrors the scalar ``observe()`` chain exactly: external
        feedback never reaches here (those sessions drop to scalar feeds), so
        a tick is gate → due predictions → caps → decisions → counters.
        """
        if self._groups_stale:
            self._rebuild_groups()
        elif self._fb_rows_dirty:
            rows_list = self._fb_rows_list
            self._fb_rows = np.array(rows_list, dtype=np.int64)
            self._fb_rows_dirty = False
            self._fb_wake = -np.inf
        self.tick_count += 1
        shared = shared_sample is not None

        # -- 1. simulated-user feedback gate → grouped adapter updates ---------
        if self._fb_rows.size:
            tmax = t if shared else (float(t.max()) if rows.size else -np.inf)
            if tmax >= self._fb_wake:
                self._feedback_gate(rows, t, samples, shared_sample)

        # -- 2./3./4. due mask → batched predict → array-wide caps -------------
        last = self.last_time[rows]
        due = np.isnan(last) | (t - last >= self.period_minus[rows])
        if due.any():
            due_pos = np.nonzero(due)[0]
            drows = rows[due_pos]
            single_group = len(self._pred_groups) == 1
            gid = None if single_group else self.group_id[drows]
            for g, (predictor, predict_screen, fast) in enumerate(self._pred_groups):
                if single_group:
                    sel_pos, grows = due_pos, drows
                else:
                    in_group = gid == g
                    if not in_group.any():
                        continue
                    sel_pos, grows = due_pos[in_group], drows[in_group]
                gsize = grows.size
                if shared:
                    columns = self._shared_features(shared_sample)
                else:
                    columns = self._stacked_features(samples, sel_pos)
                cpu_col, battery_col, util_col, freq_col = columns
                if fast is not None:
                    kernel, has_screen = fast
                    start = time.perf_counter()
                    stacked = kernel(cpu_col, battery_col, util_col, freq_col)
                    latency = (time.perf_counter() - start) / gsize
                    skin = stacked[0]
                    screen = stacked[1] if has_screen else None
                else:
                    k = 1 if shared else gsize
                    features = np.empty((k, 4))
                    features[:, 0] = cpu_col
                    features[:, 1] = battery_col
                    features[:, 2] = util_col
                    features[:, 3] = freq_col
                    # exact=False is today's pool path (predict_batch); the
                    # eligibility contract (row-invariant models) makes the
                    # matrix call bitwise equal to per-row predicts anyway.
                    arrays = predictor.predict_batch_arrays(
                        features, predict_screen=predict_screen, exact=False
                    )
                    skin = arrays.skin_temp_c
                    screen = arrays.screen_temp_c
                    latency = arrays.latency_s
                if shared:
                    # One shared feature row → one prediction, broadcast.
                    skin_value = float(skin[0])
                    self.pred_skin[grows] = skin_value
                    self.skin_obj[grows] = skin_value
                    if screen is not None:
                        self.screen_obj[grows] = float(screen[0])
                    self.last_time[grows] = t
                else:
                    self.pred_skin[grows] = skin
                    # tolist() keeps Python floats in the object columns
                    # (decisions must serialize like scalar runs).
                    self.skin_obj[grows] = skin.tolist()
                    if screen is not None:
                        self.screen_obj[grows] = screen.tolist()
                    self.last_time[grows] = t[sel_pos]
                self.latency[grows] += latency
                self.count[grows] += 1
                self.prediction_count += gsize
                self.batch_count += 1
            single_policy = len(self._policy_groups) == 1
            pid = None if single_policy else self.policy_id[drows]
            for p, (step_caps, thresholds, activation) in enumerate(self._policy_groups):
                if single_policy:
                    prows = drows
                else:
                    in_group = pid == p
                    if not in_group.any():
                        continue
                    prows = drows[in_group]
                margins = self.ad.limit[prows] - self.pred_skin[prows]
                self.cap_req[prows] = caps_from_margins(
                    margins, step_caps, thresholds, activation
                )
            need = due | ~self.valid[rows]
        else:
            need = ~self.valid[rows]

        # -- decision cache rebuild --------------------------------------------
        if need.any():
            nrows = rows[np.nonzero(need)[0]]
            caps_list = self.cap_req[nrows].tolist()
            skins = self.skin_obj[nrows].tolist()
            screens = self.screen_obj[nrows].tolist()
            limits = self.ad.limit_obj[nrows].tolist()
            tables = self.freq_levels[nrows].tolist()
            decisions = self.decisions
            memo = self._decision_memo
            if len(memo) > 65_536:
                memo.clear()
            for j, r in enumerate(nrows.tolist()):
                cap = caps_list[j]
                levels = tables[j]
                # id(levels) stands in for the table: the tuples live in
                # _freq_cache for the plane's lifetime, so ids are stable.
                key = (cap, skins[j], screens[j], limits[j], id(levels))
                decision = memo.get(key)
                if decision is None:
                    if cap == NO_CAP:
                        decision = CapDecision(
                            None, None, skins[j], screens[j], limits[j]
                        )
                    else:
                        decision = CapDecision(
                            cap,
                            None if levels is None else levels[cap],
                            skins[j],
                            screens[j],
                            limits[j],
                        )
                    memo[key] = decision
                decisions[r] = decision
            self.valid[nrows] = True

        # -- counters ----------------------------------------------------------
        self.feeds[rows] += 1
        self.caps[rows] += self.cap_req[rows] != NO_CAP

    def _shared_features(self, sample) -> Tuple[float, float, float, float]:
        """The one feature row every session shares on a ``feed_all`` tick."""
        readings = sample.sensor_readings
        try:
            return (
                readings["cpu"],
                readings["battery"],
                sample.utilization,
                sample.frequency_khz,
            )
        except KeyError:
            # Re-raise the scalar path's exact channel-naming error.
            PredictionFeatures.from_readings(
                readings, sample.utilization, sample.frequency_khz
            )
            raise

    def _stacked_features(self, samples, sel_pos) -> Tuple[np.ndarray, ...]:
        """Feature columns for the due subset, without per-session objects."""
        sel = sel_pos.tolist()
        k = len(sel)
        try:
            cpu = np.fromiter(
                (samples[j].sensor_readings["cpu"] for j in sel), dtype=float, count=k
            )
            battery = np.fromiter(
                (samples[j].sensor_readings["battery"] for j in sel), dtype=float, count=k
            )
        except KeyError:
            for j in sel:
                sample = samples[j]
                PredictionFeatures.from_readings(
                    sample.sensor_readings, sample.utilization, sample.frequency_khz
                )
            raise
        util = np.fromiter((samples[j].utilization for j in sel), dtype=float, count=k)
        freq = np.fromiter((samples[j].frequency_khz for j in sel), dtype=float, count=k)
        return cpu, battery, util, freq

    def _feedback_gate(self, rows, t, samples, shared_sample) -> None:
        """Call feedback models on exactly the ticks scalar ``observe`` would.

        A model is only invoked when its sample carries a ``"skin"`` reading
        and either its report clock elapsed with the felt temperature above
        the report threshold, or it holds a delayed (pending) report — on
        every other tick the scalar ``observe()`` returns ``None`` without
        mutating state, so skipping the call is exact.
        """
        pos = np.nonzero(self.has_fb[rows])[0]
        if not pos.size:
            return
        prows = rows[pos]
        pt = t if shared_sample is not None else t[pos]
        fb_last = self.fb_last[prows]
        clock = np.isnan(fb_last) | (pt - fb_last >= self.fb_period_minus[prows])
        pending = self.fb_pending[prows]
        consider = clock | pending
        step_events: List[Tuple[int, object]] = []
        quant_events: List[Tuple[int, object]] = []
        changed_rows: List[int] = []
        if consider.any():
            cpos = np.nonzero(consider)[0]
            if shared_sample is not None:
                felt = shared_sample.sensor_readings.get("skin")
                if felt is None:
                    needs = np.zeros(cpos.size, dtype=bool)
                else:
                    needs = (clock[cpos] & (felt > self.fb_threshold[prows[cpos]])) | pending[
                        cpos
                    ]
                felt_vals: Optional[List] = None
            else:
                bpos = pos[cpos]
                felt_vals = [
                    samples[j].sensor_readings.get("skin") for j in bpos.tolist()
                ]
                have = np.array([value is not None for value in felt_vals], dtype=bool)
                felt_arr = np.array(
                    [(-np.inf if value is None else value) for value in felt_vals]
                )
                needs = have & (
                    (clock[cpos] & (felt_arr > self.fb_threshold[prows[cpos]]))
                    | pending[cpos]
                )
            if needs.any():
                need_idx = np.nonzero(needs)[0]
                sel = cpos[need_idx]
                ask_rows = prows[sel].tolist()
                if felt_vals is None:
                    ask_times: List[float] = [pt] * len(ask_rows)
                    ask_felt: List[float] = [felt] * len(ask_rows)
                else:
                    ask_times = pt[sel].tolist()
                    ask_felt = [felt_vals[k] for k in need_idx.tolist()]
                kinds = self.ad.kind
                for row, time_s, felt_c in zip(ask_rows, ask_times, ask_felt):
                    model = self.feedbacks[row]
                    event = model.observe(time_s, felt_c)
                    report_s = model._last_report_s
                    self.fb_last[row] = np.nan if report_s is None else report_s
                    self.fb_pending[row] = bool(model._pending)
                    if event is not None:
                        kind = kinds[row]
                        if kind == ADAPTER_STEP:
                            step_events.append((row, event))
                            changed_rows.append(row)
                        elif kind == ADAPTER_QUANTILE:
                            quant_events.append((row, event))
                            changed_rows.append(row)
                        # FixedLimit consumes the event without state.
                if step_events:
                    self.ad.apply_step_events(step_events)
                if quant_events:
                    self.ad.apply_quantile_events(quant_events)
                if changed_rows:
                    # A moved limit invalidates the cached decision objects.
                    self.valid[np.array(changed_rows, dtype=np.int64)] = False
        # Re-arm the wake clock over every resident model (not just the fed
        # subset): between firings the candidate mask is provably all-False.
        fb_last = self.fb_last[self._fb_rows]
        if np.isnan(fb_last).any() or self.fb_pending[self._fb_rows].any():
            self._fb_wake = -np.inf
        else:
            self._fb_wake = float((fb_last + self.fb_period_minus[self._fb_rows]).min())
