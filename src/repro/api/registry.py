"""Decorator-based component registries for the policy API.

A *policy* — in the sense of :mod:`repro.api.specs` — is assembled from four
kinds of components: a cpufreq governor, an optional thermal manager (USTA and
friends), for manager construction a trained run-time predictor, and an
optional comfort-limit adapter (the user-feedback loop).  Each kind has one
:class:`ComponentRegistry`; implementations register themselves with the
``@register_governor("ondemand")`` / ``@register_manager("usta")`` /
``@register_predictor("trained")`` / ``@register_adapter("feedback_step")``
decorators, and declarative specs resolve names through
:meth:`ComponentRegistry.create`.

The registries live in this leaf module (no ``repro`` imports) so that the
implementing packages — :mod:`repro.governors`, :mod:`repro.core` — can
register into them without import cycles.  Lookup is lazy: when a name is
missing, the registry first imports the modules listed in
``autoload_modules`` (which triggers their registration decorators) and only
then reports an error, with a did-you-mean suggestion.
"""

from __future__ import annotations

import difflib
import importlib
from typing import Callable, Dict, Iterable, Mapping, Tuple

__all__ = [
    "ComponentRegistry",
    "UnknownComponentError",
    "GOVERNORS",
    "MANAGERS",
    "PREDICTORS",
    "ADAPTERS",
    "register_governor",
    "register_manager",
    "register_predictor",
    "register_adapter",
]


class UnknownComponentError(KeyError):
    """A registry lookup failed (subclasses ``KeyError`` for compatibility)."""

    def __str__(self) -> str:  # KeyError would repr() the message, quoting it
        return self.args[0] if self.args else ""


class ComponentRegistry:
    """Name → factory registry for one kind of policy component.

    Attributes:
        kind: human-readable component kind, used in error messages
            (``"governor"``, ``"thermal manager"``, ``"predictor"``).
    """

    def __init__(self, kind: str, autoload_modules: Iterable[str] = ()):
        self.kind = kind
        self._components: Dict[str, Callable] = {}
        self._autoload_modules: Tuple[str, ...] = tuple(autoload_modules)
        self._autoloaded = False

    # -- registration -----------------------------------------------------------

    def register(self, name: str) -> Callable[[Callable], Callable]:
        """Decorator registering a factory (class or function) under ``name``."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"a {self.kind} registry name must be a non-empty string")

        def decorator(factory: Callable) -> Callable:
            existing = self._components.get(name)
            if existing is not None and existing is not factory:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered to {existing!r}"
                )
            self._components[name] = factory
            return factory

        return decorator

    # -- lookup -----------------------------------------------------------------

    @property
    def components(self) -> Mapping[str, Callable]:
        """The live name → factory mapping (treat as read-only)."""
        self._ensure_loaded()
        return self._components

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        self._ensure_loaded()
        return tuple(sorted(self._components))

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return name in self._components

    def get(self, name: str) -> Callable:
        """The factory registered under ``name``.

        Raises:
            UnknownComponentError: with the known names and a did-you-mean
                suggestion when ``name`` is not registered.
        """
        self._ensure_loaded()
        try:
            return self._components[name]
        except KeyError:
            known = ", ".join(sorted(self._components))
            close = difflib.get_close_matches(str(name), self._components, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise UnknownComponentError(
                f"unknown {self.kind} {name!r}{hint}; known {self.kind}s: {known}"
            ) from None

    def create(self, name: str, **params):
        """Instantiate the component registered under ``name``."""
        return self.get(name)(**params)

    # -- internals --------------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if self._autoloaded:
            return
        self._autoloaded = True
        for module in self._autoload_modules:
            importlib.import_module(module)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ComponentRegistry(kind={self.kind!r}, names={sorted(self._components)})"


#: Governors by cpufreq name (``repro.governors`` registers the stock five).
GOVERNORS = ComponentRegistry("governor", autoload_modules=("repro.governors",))

#: Thermal managers by scheme name (``usta``, ``usta-screen``,
#: ``trip-point``).
MANAGERS = ComponentRegistry(
    "thermal manager",
    autoload_modules=(
        "repro.core.usta",
        "repro.core.screen_aware",
        "repro.telemetry.trip",
    ),
)

#: Run-time predictor builders by kind (``trained``).
PREDICTORS = ComponentRegistry("predictor", autoload_modules=("repro.core.predictor",))

#: Comfort-limit adapters by strategy name (``fixed``, ``feedback_step``,
#: ``quantile_tracker``) — the paper's user-feedback loop.
ADAPTERS = ComponentRegistry(
    "comfort adapter", autoload_modules=("repro.users.adaptation",)
)


def register_governor(name: str):
    """Register a :class:`~repro.governors.base.Governor` class by cpufreq name."""
    return GOVERNORS.register(name)


def register_manager(name: str):
    """Register a :class:`~repro.sim.engine.ThermalManager` implementation."""
    return MANAGERS.register(name)


def register_predictor(kind: str):
    """Register a builder returning a :class:`~repro.core.predictor.RuntimePredictor`."""
    return PREDICTORS.register(kind)


def register_adapter(name: str):
    """Register a :class:`~repro.users.adaptation.ComfortAdapter` strategy."""
    return ADAPTERS.register(name)
