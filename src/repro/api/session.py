"""Online policy sessions: feed telemetry, get frequency-cap decisions.

On a real handset the USTA controller is a userspace daemon: it wakes up with
fresh telemetry, predicts the skin temperature, and writes a frequency cap to
``scaling_max_freq``.  A :class:`PolicySession` is exactly that daemon loop,
decoupled from the simulator: ``open_session(spec, user_profile)`` builds the
per-user policy state, and ``session.feed(TelemetrySample) → CapDecision``
advances it by one observation.  The simulation engine's
:class:`~repro.sim.engine.SimulationKernel` is just one client of this
interface; replayed telemetry logs, live device streams, and the ``repro
serve`` population driver are others.

:class:`SessionPool` scales the same interface to thousands of concurrent
sessions: per-user session state stays isolated, but the expensive part of a
tick — the predictor evaluation — is batched across every session whose
prediction window is due, through one matrix call into the underlying
regressors (:meth:`~repro.core.predictor.RuntimePredictor.predict_batch`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.predictor import PredictionFeatures, RuntimePredictor
from ..core.usta import USTAController
from ..sim.engine import ThermalManager
from ..users.adaptation import AdaptiveComfortManager
from .plane import SessionPlane, session_plane_ineligibility
from .specs import PolicySpec
from .types import CapDecision, FeedbackEvent, TelemetrySample

__all__ = ["PolicySession", "SessionPool", "open_session"]


class PolicySession:
    """One user's online policy loop.

    Attributes:
        manager: the thermal manager driving cap decisions (``None`` for a
            bare-governor policy that never caps).
        table: the platform frequency table, used to express caps as
            frequencies on the wire (taken from the manager when present).
        spec: the policy spec this session was opened from, when any.
        session_id: caller-chosen identifier (used by :class:`SessionPool`).
    """

    def __init__(
        self,
        manager: Optional[ThermalManager] = None,
        table=None,
        spec: Optional[PolicySpec] = None,
        session_id: Optional[str] = None,
        resolve_frequency: bool = True,
    ):
        self.manager = manager
        self.table = table if table is not None else getattr(manager, "table", None)
        self.spec = spec
        self.session_id = session_id
        # Clients that only consume level caps (the simulation kernel) skip
        # the per-decision cap→frequency lookup in their hot loop.
        self.resolve_frequency = resolve_frequency
        self._last_decision: Optional[CapDecision] = None
        self._feed_count = 0
        self._cap_count = 0
        # Resident-plane adoption state: when a SessionPool adopts this
        # session onto its SessionPlane, the plane's arrays become the master
        # copy and every out-of-band object access below brackets itself with
        # sync_to_session / refresh_from_session.
        self._plane: Optional[SessionPlane] = None
        self._plane_row: int = -1

    # -- the online loop --------------------------------------------------------

    def feed(
        self,
        sample: TelemetrySample,
        feedback: Sequence[FeedbackEvent] = (),
    ) -> CapDecision:
        """Advance the policy by one telemetry sample and return its decision.

        Args:
            sample: the tick's device telemetry.
            feedback: comfort reports the user filed since the last tick;
                they are applied to the policy's comfort adapter *before*
                the cap decision, so a "too hot" tap takes effect on the
                very next decision.  Raises ``ValueError`` when the policy
                has no adapter to route them into.
        """
        plane = self._plane
        if plane is None:
            return self._feed_scalar(sample, feedback)
        plane.sync_to_session(self)
        try:
            return self._feed_scalar(sample, feedback)
        finally:
            plane.refresh_from_session(self)

    def _feed_scalar(
        self,
        sample: TelemetrySample,
        feedback: Sequence[FeedbackEvent] = (),
    ) -> CapDecision:
        """The plain object-path feed (plane coherence handled by callers)."""
        for event in feedback:
            self._apply_feedback(event)
        if self.manager is None:
            decision = CapDecision.no_cap()
        else:
            manager_decision = self.manager.observe(
                time_s=sample.time_s,
                sensor_readings=sample.sensor_readings,
                utilization=sample.utilization,
                frequency_khz=sample.frequency_khz,
            )
            decision = CapDecision.from_manager_decision(
                manager_decision, self.table if self.resolve_frequency else None
            )
        self.note_decision(decision)
        return decision

    def feed_feedback(self, event: FeedbackEvent) -> float:
        """Route one comfort report into the policy's adapter.

        Returns the live comfort limit after the event.  Raises
        ``ValueError`` for policies without an adapter — silently dropping a
        user's "too hot" tap would be the worst possible failure mode.
        """
        plane = self._plane
        if plane is None:
            return self._apply_feedback(event)
        plane.sync_to_session(self)
        try:
            return self._apply_feedback(event)
        finally:
            plane.refresh_from_session(self)

    def _apply_feedback(self, event: FeedbackEvent) -> float:
        apply = getattr(self.manager, "apply_feedback", None)
        if apply is None:
            raise ValueError(
                "this policy has no comfort adapter; add an 'adapter' entry to "
                "the policy spec to accept user feedback"
            )
        return apply(event)

    def note_decision(self, decision: CapDecision) -> None:
        """Record a decision computed out-of-band (batched pool prediction)."""
        self._last_decision = decision
        self._feed_count += 1
        if decision.active:
            self._cap_count += 1

    def reset(self) -> None:
        """Clear manager and session state for a fresh stream."""
        if self.manager is not None:
            self.manager.reset()
        self._last_decision = None
        self._feed_count = 0
        self._cap_count = 0
        if self._plane is not None:
            self._plane.refresh_from_session(self)

    # -- resident-plane coherence ------------------------------------------------

    def sync_policy_state(self) -> None:
        """Flush resident-plane array state into the policy objects.

        A no-op for non-resident sessions.  Callers about to *read or mutate*
        the manager/adapter objects directly (state snapshots, warm restores)
        call this first so the objects reflect every plane tick, and
        :meth:`refresh_policy_state` afterwards if they mutated anything.
        """
        if self._plane is not None:
            self._plane.sync_to_session(self)

    def refresh_policy_state(self) -> None:
        """Re-adopt the policy objects' state onto the resident plane."""
        if self._plane is not None:
            self._plane.refresh_from_session(self)

    # -- introspection ----------------------------------------------------------

    @property
    def last_decision(self) -> Optional[CapDecision]:
        """The most recent decision (``None`` before the first feed)."""
        if self._plane is not None:
            return self._plane.decisions[self._plane_row]
        return self._last_decision

    @property
    def current_limit_c(self) -> Optional[float]:
        """The live skin comfort limit the policy is enforcing.

        For adaptive policies this is the adapter's current estimate; for
        static USTA it is the configured limit; ``None`` for bare-governor
        policies with no comfort limit at all.
        """
        if self._plane is not None:
            # Resident sessions always have a manager; the plane's live-limit
            # column is the same value set_skin_limit would have installed.
            return self._plane.ad.limit_obj[self._plane_row]
        if self.manager is None:
            return None
        limit = getattr(self.manager, "current_limit_c", None)
        if limit is None:
            limit = getattr(self.manager, "current_skin_limit_c", None)
        return limit

    @property
    def feed_count(self) -> int:
        """Telemetry samples consumed since the last reset."""
        if self._plane is not None:
            return int(self._plane.feeds[self._plane_row])
        return self._feed_count

    @property
    def cap_count(self) -> int:
        """Feeds that answered with an active cap since the last reset."""
        if self._plane is not None:
            return int(self._plane.caps[self._plane_row])
        return self._cap_count

    def restore_counters(self, feed_count: int, cap_count: int) -> None:
        """Reinstall persisted feed/cap counters on a warm-started session.

        A returning user's ``capped_fraction`` (and the service ``stats`` op)
        must continue from where the previous connection left off instead of
        silently restarting at zero — this is the restore half of
        :func:`repro.fleet.state.snapshot_session_state`.
        """
        feed_count = int(feed_count)
        cap_count = int(cap_count)
        if feed_count < 0 or not 0 <= cap_count <= feed_count:
            raise ValueError(
                f"counters must satisfy 0 <= cap_count <= feed_count, got "
                f"feed_count={feed_count}, cap_count={cap_count}"
            )
        self._feed_count = feed_count
        self._cap_count = cap_count
        if self._plane is not None:
            self._plane.set_counters(self._plane_row, feed_count, cap_count)

    @property
    def capped_fraction(self) -> float:
        """Fraction of feeds that answered with an active cap."""
        feeds = self.feed_count
        if feeds == 0:
            return 0.0
        return self.cap_count / feeds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        manager = type(self.manager).__name__ if self.manager is not None else None
        return f"PolicySession(id={self.session_id!r}, manager={manager}, feeds={self.feed_count})"


def open_session(
    spec: Union[PolicySpec, Mapping],
    user_profile=None,
    predictor: Optional[RuntimePredictor] = None,
    table=None,
    session_id: Optional[str] = None,
) -> PolicySession:
    """Open an online session for one policy (and optionally one user).

    Args:
        spec: a :class:`~repro.api.specs.PolicySpec` (or its dictionary form).
        user_profile: optional :class:`~repro.users.population.
            ThermalComfortProfile`; overrides the spec's comfort limit(s).
        predictor: trained predictor injected into the manager (required when
            the spec carries a manager without a predictor recipe).
        table: optional platform frequency table for frequency-typed caps.
        session_id: caller-chosen identifier.
    """
    if not isinstance(spec, PolicySpec):
        spec = PolicySpec.from_spec(spec)
    if user_profile is not None:
        spec = spec.for_user(user_profile)
    manager = spec.build_manager(predictor=predictor, table=table)
    return PolicySession(manager=manager, table=table, spec=spec, session_id=session_id)


class SessionPool:
    """Thousands of concurrent policy sessions with batched prediction.

    Sessions keep their per-user state (comfort limit, prediction clock,
    current cap); the pool's contribution is scheduling.  Eligible sessions
    (:func:`~repro.api.plane.session_plane_ineligibility`) are adopted onto a
    resident :class:`~repro.api.plane.SessionPlane`: their controller/adapter/
    counter state lives in columnar arrays across ticks, so :meth:`feed_many`
    advances them with vectorized due masks, one batched predict per
    predictor group and array-wide cap math — bit-identical to the scalar
    path.  Everything else keeps the historical treatment: on
    :meth:`feed_many`, every batchable USTA session whose prediction window
    is due is collected, their feature vectors are stacked, and the
    underlying regressors run once per (predictor, screen-flag) group instead
    of once per session; managers the pool does not understand at all fall
    back to their sessions' scalar :meth:`PolicySession.feed`.
    """

    def __init__(self, use_plane: bool = True) -> None:
        self._sessions: Dict[str, PolicySession] = {}
        self._feed_count = 0
        self._prediction_count = 0
        self._batch_count = 0
        self._plane: Optional[SessionPlane] = SessionPlane() if use_plane else None
        #: session_id -> why it stayed off the plane (``--explain-plane``).
        self._plane_reasons: Dict[str, str] = {}

    # -- membership -------------------------------------------------------------

    def open(
        self,
        session_id: str,
        spec: Union[PolicySpec, Mapping],
        user_profile=None,
        predictor: Optional[RuntimePredictor] = None,
        table=None,
    ) -> PolicySession:
        """Open and register a new session under a unique id."""
        if session_id in self._sessions:
            raise ValueError(f"duplicate session id {session_id!r}")
        session = open_session(
            spec,
            user_profile=user_profile,
            predictor=predictor,
            table=table,
            session_id=session_id,
        )
        self._sessions[session_id] = session
        self._adopt(session)
        return session

    def _adopt(self, session: PolicySession) -> None:
        if self._plane is None:
            return
        reason = session_plane_ineligibility(session)
        if reason is None:
            self._plane.add(session)
        else:
            self._plane_reasons[session.session_id] = reason

    def get(self, session_id: str) -> PolicySession:
        """The session registered under ``session_id`` (KeyError when missing)."""
        return self._session(session_id)

    def close(self, session_id: str) -> None:
        """Remove a session from the pool."""
        session = self._session(session_id)  # same known-ids hint as every lookup
        if session._plane is not None:
            self._plane.remove(session)
        self._plane_reasons.pop(session_id, None)
        del self._sessions[session_id]

    def _session(self, session_id: str) -> PolicySession:
        """Look up a session, or raise a KeyError that names the known ids."""
        try:
            return self._sessions[session_id]
        except KeyError:
            known = sorted(self._sessions)
            preview = ", ".join(repr(sid) for sid in known[:8])
            if len(known) > 8:
                preview += f", ... ({len(known)} total)"
            hint = f"known session ids: {preview}" if known else "the pool is empty"
            raise KeyError(f"unknown session id {session_id!r}; {hint}") from None

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[PolicySession]:
        return iter(self._sessions.values())

    # -- batched feeding --------------------------------------------------------

    def feed_all(
        self,
        sample: TelemetrySample,
        feedback: Optional[Mapping[str, Sequence[FeedbackEvent]]] = None,
    ) -> Dict[str, CapDecision]:
        """Feed one telemetry sample to every session (a shared replayed stream).

        When every session is resident on the plane and no external feedback
        rides along, the shared sample takes a fast path: no N-entry sample
        dict is materialised, the feature row is built once, and one
        prediction per predictor group is broadcast across the pool.
        """
        plane = self._plane
        if (
            not feedback
            and plane is not None
            and plane.size
            and plane.size == len(self._sessions)
        ):
            plane.tick_all(sample)
            self._feed_count += plane.size
            decisions = plane.decisions
            return {
                session_id: decisions[session._plane_row]
                for session_id, session in self._sessions.items()
            }
        return self.feed_many({sid: sample for sid in self._sessions}, feedback=feedback)

    def feed_many(
        self,
        samples: Mapping[str, TelemetrySample],
        feedback: Optional[Mapping[str, Sequence[FeedbackEvent]]] = None,
    ) -> Dict[str, CapDecision]:
        """Feed per-session telemetry and return per-session decisions.

        Prediction-due USTA sessions are evaluated in batches (one matrix
        predict per predictor/screen-flag group); everything else goes through
        the scalar session feed.  Decisions come back keyed and ordered like
        ``samples``.

        Args:
            samples: per-session telemetry for this tick.
            feedback: optional per-session comfort reports filed since the
                last tick.  Each session's events are applied *before* its
                cap decision — exactly :meth:`PolicySession.feed`'s ordering —
                so external ("real user") feedback rides the batched
                prediction path instead of forcing sessions onto scalar
                feeds.  Keys must be a subset of ``samples``.
        """
        feedback = feedback or {}
        sessions = self._sessions
        plane = self._plane
        # Unknown ids fail loudly with the known-ids hint (historically a bare
        # dict KeyError with no context) — and they, like feedback aimed at a
        # session that cannot route it, fail before any session in the batch
        # has consumed its sample or feedback, so a bad batch has no effect.
        # The same validation pass partitions the batch: resident rows go to
        # the plane tick, resident rows carrying feedback drop to the scalar
        # feed (bit-identical for plane-eligible policies), the rest keeps
        # the historical batched-due/scalar treatment.
        plane_ids: List[str] = []
        plane_rows: List[int] = []
        plane_samples: List[TelemetrySample] = []
        scalar_resident: List[Tuple[str, PolicySession, TelemetrySample]] = []
        others: List[Tuple[str, PolicySession, TelemetrySample]] = []
        sessions_get = sessions.get
        append_id = plane_ids.append
        append_row = plane_rows.append
        append_sample = plane_samples.append
        feedback_get = feedback.get if feedback else None
        for session_id, sample in samples.items():
            session = sessions_get(session_id)
            if session is None:
                self._session(session_id)  # raises with the known-ids hint
            row = session._plane_row
            if row >= 0:
                if feedback_get is not None and feedback_get(session_id):
                    scalar_resident.append((session_id, session, sample))
                else:
                    append_id(session_id)
                    append_row(row)
                    append_sample(sample)
            else:
                others.append((session_id, session, sample))
        for session_id, events in feedback.items():
            if session_id not in samples:
                raise KeyError(
                    f"feedback for session {session_id!r} without a telemetry "
                    "sample in the same batch"
                )
            session = sessions[session_id]
            if events and getattr(session.manager, "apply_feedback", None) is None:
                raise ValueError(
                    f"session {session_id!r}'s policy has no comfort adapter; "
                    "add an 'adapter' entry to its policy spec to accept user "
                    "feedback"
                )

        if plane_rows:
            plane_decisions = plane.tick_many(plane_rows, plane_samples)
            self._feed_count += len(plane_rows)
            if not others and not scalar_resident:
                # The common serving batch: every session resident, output
                # order is samples order already.
                return dict(zip(plane_ids, plane_decisions))
            decisions: Dict[str, CapDecision] = dict(zip(plane_ids, plane_decisions))
        else:
            decisions = {}

        for session_id, session, sample in scalar_resident:
            decisions[session_id] = session.feed(sample, feedback=feedback[session_id])
            self._feed_count += 1

        due: Dict[Tuple[int, bool], List[Tuple[str, PolicySession, TelemetrySample]]] = {}
        for session_id, session, sample in others:
            manager = session.manager
            if self._batchable(manager) and manager.prediction_due(sample.time_s):
                # External feedback first (the scalar feed's ordering), then
                # an adaptive wrapper ingests the tick's simulated-user
                # feedback via pre_feed — the step its observe() would have
                # run before predicting.  Non-due wrapper ticks go through
                # the scalar feed below, where feed() handles both itself.
                for event in feedback.get(session_id, ()):
                    session.feed_feedback(event)
                pre_feed = getattr(manager, "pre_feed", None)
                if pre_feed is not None:
                    pre_feed(sample)
                key = (id(manager.predictor), bool(manager.predict_screen))
                due.setdefault(key, []).append((session_id, session, sample))
            else:
                decisions[session_id] = session.feed(
                    sample, feedback=feedback.get(session_id, ())
                )
                self._feed_count += 1

        for (_, predict_screen), group in due.items():
            predictor = group[0][1].manager.predictor
            features = np.vstack(
                [
                    PredictionFeatures.from_readings(
                        sample.sensor_readings, sample.utilization, sample.frequency_khz
                    ).as_vector()
                    for _, _, sample in group
                ]
            )
            predictions = predictor.predict_batch(features, predict_screen=predict_screen)
            self._batch_count += 1
            self._prediction_count += len(group)
            for (session_id, session, sample), prediction in zip(group, predictions):
                manager_decision = session.manager.apply_prediction(sample.time_s, prediction)
                decision = CapDecision.from_manager_decision(
                    manager_decision, session.table if session.resolve_frequency else None
                )
                session.note_decision(decision)
                decisions[session_id] = decision
                self._feed_count += 1

        return {session_id: decisions[session_id] for session_id in samples}

    def feed_feedback(self, session_id: str, event: FeedbackEvent) -> float:
        """Route one comfort report into one session's adapter (live limit back)."""
        return self._session(session_id).feed_feedback(event)

    @staticmethod
    def _batchable(manager) -> bool:
        """True when the batched due/apply split is faithful to ``observe``.

        A subclass that overrides ``observe`` itself (rather than the
        ``_cap_for`` hook) may implement logic the split would bypass, so it
        must go through the scalar session feed.  An adaptive wrapper is
        batchable when the controller it wraps is: its feedback step runs
        through ``pre_feed`` on due ticks and through ``observe`` otherwise.
        """
        if isinstance(manager, AdaptiveComfortManager):
            return type(manager) is AdaptiveComfortManager and SessionPool._batchable(
                manager.inner
            )
        return (
            isinstance(manager, USTAController)
            and type(manager).observe is USTAController.observe
        )

    # -- statistics -------------------------------------------------------------

    @property
    def feed_count(self) -> int:
        """Total telemetry samples consumed across all sessions."""
        return self._feed_count

    @property
    def prediction_count(self) -> int:
        """Predictions evaluated through the batched path (incl. the plane)."""
        count = self._prediction_count
        if self._plane is not None:
            count += self._plane.prediction_count
        return count

    @property
    def batch_count(self) -> int:
        """Matrix-predict calls issued (batches, incl. the plane)."""
        count = self._batch_count
        if self._plane is not None:
            count += self._plane.batch_count
        return count

    @property
    def average_batch_size(self) -> float:
        """Mean sessions per batched predictor call."""
        batches = self.batch_count
        if batches == 0:
            return 0.0
        return self.prediction_count / batches

    @property
    def plane_resident_count(self) -> int:
        """Sessions currently resident on the columnar session plane."""
        return 0 if self._plane is None else self._plane.size

    @property
    def plane_tick_count(self) -> int:
        """Vectorized plane ticks executed (due + held rows alike)."""
        return 0 if self._plane is None else self._plane.tick_count

    def describe_plane(self) -> Dict[str, object]:
        """Per-session plane residency report (``serve --explain-plane``).

        Mirrors ``RunBatch.describe_batching``: a summary plus one entry per
        session saying whether it rides the resident plane and, if not, why
        it fell back to the scalar feed.
        """
        sessions = []
        for session_id in sorted(self._sessions):
            reason = self._plane_reasons.get(session_id)
            if self._plane is None:
                reason = "session plane disabled for this pool"
            sessions.append(
                {
                    "session_id": session_id,
                    "resident": reason is None,
                    "fallback_reason": reason,
                }
            )
        resident = sum(1 for entry in sessions if entry["resident"])
        return {
            "plane_enabled": self._plane is not None,
            "session_count": len(sessions),
            "resident_count": resident,
            "fallback_count": len(sessions) - resident,
            "sessions": sessions,
        }
