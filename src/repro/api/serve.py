"""``repro serve`` — drive a population of online policy sessions.

This is the demonstration workload for the session API: replay one
benchmark's telemetry (as a device fleet would stream it back) into thousands
of concurrent per-user :class:`~repro.api.session.PolicySession` instances
through a :class:`~repro.api.session.SessionPool`, with predictions batched
across sessions.  It reports throughput (feeds/s), prediction batching
efficiency and how often each user's policy had a cap installed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..device.platform import DevicePlatform
from ..governors import create_governor
from ..sim.engine import Simulator
from ..workloads.benchmarks import build_benchmark
from ..workloads.trace import WorkloadTrace
from .registry import MANAGERS, UnknownComponentError
from .session import SessionPool
from .specs import ManagerSpec, PolicySpec
from .types import TelemetrySample

__all__ = [
    "ServeReport",
    "build_serve_pool",
    "describe_serve_plane",
    "per_user_capped_fractions",
    "replay_telemetry",
    "run_serve",
]


def replay_telemetry(
    trace: WorkloadTrace, seed: int = 0, governor: str = "ondemand"
) -> List[TelemetrySample]:
    """Simulate one baseline run of a trace and return its telemetry stream.

    This stands in for the on-device logging daemon: the samples carry exactly
    the signals a userspace policy sees (sensor channels, utilization, the
    frequency the window ran at).
    """
    platform = DevicePlatform(seed=seed)
    simulator = Simulator(
        platform=platform,
        governor=create_governor(governor, table=platform.freq_table),
    )
    result = simulator.run(trace)
    return [TelemetrySample.from_step_record(record) for record in result.records]


@dataclass
class ServeReport:
    """What one serve run did, for the CLI to render."""

    benchmark: str
    n_sessions: int
    n_steps: int
    feed_count: int
    prediction_count: int
    batch_count: int
    average_batch_size: float
    capped_sessions: int
    elapsed_s: float
    policy_label: str
    per_user_capped_fraction: Dict[str, float]
    #: Path of the session decision log, when the run drained one.
    decision_log: Optional[str] = None
    #: Sessions resident on the columnar plane (0 when disabled/ineligible).
    plane_resident: int = 0
    #: Vectorized plane ticks executed across the run.
    plane_ticks: int = 0

    @property
    def feeds_per_second(self) -> float:
        """Session-feeds per wall-clock second."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.feed_count / self.elapsed_s

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"policy: {self.policy_label}",
            f"{self.n_sessions} sessions x {self.n_steps} telemetry steps "
            f"in {self.elapsed_s:.2f}s ({self.feeds_per_second:,.0f} feeds/s)",
            f"predictions: {self.prediction_count} in {self.batch_count} batches "
            f"(avg batch {self.average_batch_size:.1f} sessions)",
            f"plane: {self.plane_resident}/{self.n_sessions} sessions resident "
            f"({self.plane_ticks} vectorized ticks)",
            f"sessions ever capped: {self.capped_sessions}/{self.n_sessions}",
        ]
        if self.decision_log is not None:
            lines.append(f"decision log: {self.decision_log}")
        if self.per_user_capped_fraction:
            lines.append(f"{'user':>6} {'% feeds capped':>15}")
            for user_id, fraction in sorted(self.per_user_capped_fraction.items()):
                lines.append(f"{user_id:>6} {100.0 * fraction:>15.1f}")
        return "\n".join(lines)


def manager_requires_predictor(spec: PolicySpec) -> bool:
    """Whether a policy's manager needs a predictor injected at build time.

    A spec that declares its own predictor recipe resolves it itself, and a
    registered manager may opt out entirely via a ``requires_predictor =
    False`` class attribute (the trip-point throttler reads the sensor
    directly) — forcing the context predictor on those would train a model
    nobody consults.
    """
    if spec.manager is None or spec.manager.predictor is not None:
        return False
    try:
        factory = MANAGERS.get(spec.manager.name)
    except UnknownComponentError:
        return True  # let the session build fail with the full spec error
    return getattr(factory, "requires_predictor", True)


def per_user_capped_fractions(pool: SessionPool, session_users) -> Dict[str, float]:
    """Fraction of each user's *feeds* (not sessions) that held a cap.

    Aggregates raw per-session cap/feed counts so sessions with different
    feed counts weigh in proportionally — averaging per-session fractions
    with equal weight mis-reports any user whose sessions consumed unequal
    telemetry.
    """
    feeds: Dict[str, int] = {}
    caps: Dict[str, int] = {}
    for session in pool:
        user_id = session_users[session.session_id]
        feeds[user_id] = feeds.get(user_id, 0) + session.feed_count
        caps[user_id] = caps.get(user_id, 0) + session.cap_count
    return {
        user_id: (caps[user_id] / count if count else 0.0)
        for user_id, count in feeds.items()
    }


def build_serve_pool(
    context,
    sessions: int = 1000,
    policy: Optional[PolicySpec] = None,
    use_plane: bool = True,
):
    """The session population :func:`run_serve` drives, before any telemetry.

    Returns ``(pool, session_users, spec)``.  Shared with the
    ``serve --explain-plane`` dry run so eligibility is reported against the
    exact pool the real run would build.
    """
    if sessions < 1:
        raise ValueError("sessions must be at least 1")
    spec = policy if policy is not None else PolicySpec(manager=ManagerSpec("usta"))

    # The context predictor is only the fallback; a policy that declares its
    # own predictor recipe keeps it (the recipe builder caches, so the first
    # session pays the training cost and the rest share the artifact), and a
    # predictor-less manager (trip-point) gets none at all.
    fallback_predictor = None
    if manager_requires_predictor(spec):
        fallback_predictor = context.predictor

    pool = SessionPool(use_plane=use_plane)
    profiles = list(context.population)
    session_users: Dict[str, str] = {}
    for index in range(sessions):
        profile = profiles[index % len(profiles)]
        session_id = f"{profile.user_id}-{index:05d}"
        pool.open(session_id, spec, user_profile=profile, predictor=fallback_predictor)
        session_users[session_id] = profile.user_id
    return pool, session_users, spec


def describe_serve_plane(
    context,
    sessions: int = 1000,
    policy: Optional[PolicySpec] = None,
) -> str:
    """Human-readable plane residency report (``serve --explain-plane``).

    Mirrors ``sweep --explain-batching``: a summary of how many sessions ride
    the resident columnar plane, then one line per scalar-fallback session
    with the reason — silent fallbacks are the usual cause of a serving
    throughput regression.
    """
    pool, _, spec = build_serve_pool(context, sessions=sessions, policy=policy)
    report = pool.describe_plane()
    label = spec.label or (
        f"{spec.manager.name}+{spec.governor.name}" if spec.manager else spec.governor.name
    )
    lines = [
        f"policy: {label}",
        f"session plane: {report['resident_count']} of "
        f"{report['session_count']} session(s) resident on the columnar "
        f"fast path, {report['fallback_count']} scalar",
    ]
    fallbacks = [s for s in report["sessions"] if not s["resident"]]
    if fallbacks:
        lines.append(
            "  scalar fallback (session still serves; its policy runs "
            "per session):"
        )
        for entry in fallbacks:
            lines.append(f"    {entry['session_id']}  — {entry['fallback_reason']}")
    return "\n".join(lines)


def run_serve(
    context,
    benchmark: str = "skype",
    duration_s: Optional[float] = None,
    sessions: int = 1000,
    policy: Optional[PolicySpec] = None,
    seed: Optional[int] = None,
    decision_log=None,
    telemetry: Optional[List[TelemetrySample]] = None,
    use_plane: bool = True,
) -> ServeReport:
    """Stream replayed telemetry through a per-user session population.

    Args:
        context: a :class:`~repro.analysis.context.ReproductionContext` (or
            anything with ``predictor``, ``population`` and ``seed``).
        benchmark: benchmark whose telemetry is replayed (ignored when
            ``telemetry`` is supplied; it remains the report label).
        duration_s: optional benchmark duration override.
        sessions: number of concurrent sessions (users are cycled from the
            ten-participant study population).
        policy: policy served to every session (per-user comfort limits are
            applied on top); defaults to user-specific USTA over ondemand.
        seed: workload/platform seed (the context's seed by default).
        decision_log: optional JSONL path the per-step cap decisions drain
            to as the run progresses (the ``serve --stream-to`` sink): one
            line per telemetry step listing the sessions holding an active
            cap, so a fleet-scale run leaves an audit trail instead of an
            in-memory log.  A fresh run truncates the file (a re-run must
            not interleave duplicate ``time_s`` lines into an old audit
            trail) and every line is flushed as it is written, so a crash
            loses nothing — the same guarantee the socket server's SIGTERM
            path makes.
        telemetry: an explicit sample stream to serve instead of simulating
            ``benchmark`` — recorded device traces
            (:func:`repro.telemetry.replay.load_hal_telemetry`) enter here.
        use_plane: keep eligible sessions resident on the pool's columnar
            session plane (the default); ``False`` forces the scalar
            per-session feed, for A/B timing and parity checks.
    """
    if sessions < 1:
        raise ValueError("sessions must be at least 1")
    seed = context.seed if seed is None else seed

    if telemetry is None:
        trace = build_benchmark(benchmark, seed=seed, duration_s=duration_s)
        telemetry = replay_telemetry(trace, seed=seed)
    elif not telemetry:
        raise ValueError("an explicit telemetry stream must not be empty")

    pool, session_users, spec = build_serve_pool(
        context, sessions=sessions, policy=policy, use_plane=use_plane
    )

    log_fh = None
    log_path: Optional[str] = None
    if decision_log is not None:
        path = Path(decision_log)
        path.parent.mkdir(parents=True, exist_ok=True)
        # "w", not "a": a fresh run owns its audit trail.  Appending here
        # used to interleave a re-run's lines into the previous run's log,
        # leaving duplicate time_s entries no reader could tell apart.
        log_fh = open(path, "w", encoding="utf-8")
        log_path = str(path)

    start = time.perf_counter()
    ever_capped = set()
    try:
        for sample in telemetry:
            decisions = pool.feed_all(sample)
            capped_now = []
            for session_id, decision in decisions.items():
                if decision.active:
                    ever_capped.add(session_id)
                    capped_now.append((session_id, decision.level_cap))
            if log_fh is not None:
                log_fh.write(
                    json.dumps(
                        {
                            "time_s": sample.time_s,
                            "active": len(capped_now),
                            "caps": sorted(capped_now),
                        },
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                # Per-line flush: a crashed run keeps its tail, like the
                # socket server's graceful-shutdown path guarantees.
                log_fh.flush()
    finally:
        if log_fh is not None:
            log_fh.close()
    elapsed = time.perf_counter() - start

    per_user_capped_fraction = per_user_capped_fractions(pool, session_users)

    label = spec.label or (
        f"{spec.manager.name}+{spec.governor.name}" if spec.manager else spec.governor.name
    )
    return ServeReport(
        benchmark=benchmark,
        n_sessions=sessions,
        n_steps=len(telemetry),
        feed_count=pool.feed_count,
        prediction_count=pool.prediction_count,
        batch_count=pool.batch_count,
        average_batch_size=pool.average_batch_size,
        capped_sessions=len(ever_capped),
        elapsed_s=elapsed,
        policy_label=label,
        per_user_capped_fraction=per_user_capped_fraction,
        decision_log=log_path,
        plane_resident=pool.plane_resident_count,
        plane_ticks=pool.plane_tick_count,
    )
