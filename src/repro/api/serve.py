"""``repro serve`` — drive a population of online policy sessions.

This is the demonstration workload for the session API: replay one
benchmark's telemetry (as a device fleet would stream it back) into thousands
of concurrent per-user :class:`~repro.api.session.PolicySession` instances
through a :class:`~repro.api.session.SessionPool`, with predictions batched
across sessions.  It reports throughput (feeds/s), prediction batching
efficiency and how often each user's policy had a cap installed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..device.platform import DevicePlatform
from ..governors import create_governor
from ..sim.engine import Simulator
from ..workloads.benchmarks import build_benchmark
from ..workloads.trace import WorkloadTrace
from .session import SessionPool
from .specs import ManagerSpec, PolicySpec
from .types import TelemetrySample

__all__ = ["ServeReport", "replay_telemetry", "run_serve"]


def replay_telemetry(
    trace: WorkloadTrace, seed: int = 0, governor: str = "ondemand"
) -> List[TelemetrySample]:
    """Simulate one baseline run of a trace and return its telemetry stream.

    This stands in for the on-device logging daemon: the samples carry exactly
    the signals a userspace policy sees (sensor channels, utilization, the
    frequency the window ran at).
    """
    platform = DevicePlatform(seed=seed)
    simulator = Simulator(
        platform=platform,
        governor=create_governor(governor, table=platform.freq_table),
    )
    result = simulator.run(trace)
    return [TelemetrySample.from_step_record(record) for record in result.records]


@dataclass
class ServeReport:
    """What one serve run did, for the CLI to render."""

    benchmark: str
    n_sessions: int
    n_steps: int
    feed_count: int
    prediction_count: int
    batch_count: int
    average_batch_size: float
    capped_sessions: int
    elapsed_s: float
    policy_label: str
    per_user_capped_fraction: Dict[str, float]
    #: Path of the session decision log, when the run drained one.
    decision_log: Optional[str] = None

    @property
    def feeds_per_second(self) -> float:
        """Session-feeds per wall-clock second."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.feed_count / self.elapsed_s

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"policy: {self.policy_label}",
            f"{self.n_sessions} sessions x {self.n_steps} telemetry steps "
            f"in {self.elapsed_s:.2f}s ({self.feeds_per_second:,.0f} feeds/s)",
            f"predictions: {self.prediction_count} in {self.batch_count} batches "
            f"(avg batch {self.average_batch_size:.1f} sessions)",
            f"sessions ever capped: {self.capped_sessions}/{self.n_sessions}",
        ]
        if self.decision_log is not None:
            lines.append(f"decision log: {self.decision_log}")
        if self.per_user_capped_fraction:
            lines.append(f"{'user':>6} {'% feeds capped':>15}")
            for user_id, fraction in sorted(self.per_user_capped_fraction.items()):
                lines.append(f"{user_id:>6} {100.0 * fraction:>15.1f}")
        return "\n".join(lines)


def run_serve(
    context,
    benchmark: str = "skype",
    duration_s: Optional[float] = None,
    sessions: int = 1000,
    policy: Optional[PolicySpec] = None,
    seed: Optional[int] = None,
    decision_log=None,
) -> ServeReport:
    """Stream replayed telemetry through a per-user session population.

    Args:
        context: a :class:`~repro.analysis.context.ReproductionContext` (or
            anything with ``predictor``, ``population`` and ``seed``).
        benchmark: benchmark whose telemetry is replayed.
        duration_s: optional benchmark duration override.
        sessions: number of concurrent sessions (users are cycled from the
            ten-participant study population).
        policy: policy served to every session (per-user comfort limits are
            applied on top); defaults to user-specific USTA over ondemand.
        seed: workload/platform seed (the context's seed by default).
        decision_log: optional JSONL path the per-step cap decisions drain
            to as the run progresses (the ``serve --stream-to`` sink): one
            appended line per telemetry step listing the sessions holding an
            active cap, so a fleet-scale run leaves an audit trail instead
            of an in-memory log.
    """
    if sessions < 1:
        raise ValueError("sessions must be at least 1")
    seed = context.seed if seed is None else seed
    spec = policy if policy is not None else PolicySpec(manager=ManagerSpec("usta"))

    trace = build_benchmark(benchmark, seed=seed, duration_s=duration_s)
    telemetry = replay_telemetry(trace, seed=seed)

    # The context predictor is only the fallback; a policy that declares its
    # own predictor recipe keeps it (the recipe builder caches, so the first
    # session pays the training cost and the rest share the artifact).
    fallback_predictor = None
    if spec.manager is not None and spec.manager.predictor is None:
        fallback_predictor = context.predictor

    pool = SessionPool()
    profiles = list(context.population)
    session_users: Dict[str, str] = {}
    for index in range(sessions):
        profile = profiles[index % len(profiles)]
        session_id = f"{profile.user_id}-{index:05d}"
        pool.open(session_id, spec, user_profile=profile, predictor=fallback_predictor)
        session_users[session_id] = profile.user_id

    log_fh = None
    log_path: Optional[str] = None
    if decision_log is not None:
        path = Path(decision_log)
        path.parent.mkdir(parents=True, exist_ok=True)
        log_fh = open(path, "a", encoding="utf-8")
        log_path = str(path)

    start = time.perf_counter()
    ever_capped = set()
    try:
        for sample in telemetry:
            decisions = pool.feed_all(sample)
            capped_now = []
            for session_id, decision in decisions.items():
                if decision.active:
                    ever_capped.add(session_id)
                    capped_now.append((session_id, decision.level_cap))
            if log_fh is not None:
                log_fh.write(
                    json.dumps(
                        {
                            "time_s": sample.time_s,
                            "active": len(capped_now),
                            "caps": sorted(capped_now),
                        },
                        separators=(",", ":"),
                    )
                    + "\n"
                )
    finally:
        if log_fh is not None:
            log_fh.close()
    elapsed = time.perf_counter() - start

    per_user_feeds: Dict[str, int] = {}
    per_user_caps: Dict[str, float] = {}
    for session in pool:
        user_id = session_users[session.session_id]
        per_user_feeds[user_id] = per_user_feeds.get(user_id, 0) + 1
        per_user_caps[user_id] = per_user_caps.get(user_id, 0.0) + session.capped_fraction
    per_user_capped_fraction = {
        user_id: per_user_caps[user_id] / per_user_feeds[user_id] for user_id in per_user_feeds
    }

    label = spec.label or (
        f"{spec.manager.name}+{spec.governor.name}" if spec.manager else spec.governor.name
    )
    return ServeReport(
        benchmark=benchmark,
        n_sessions=sessions,
        n_steps=len(telemetry),
        feed_count=pool.feed_count,
        prediction_count=pool.prediction_count,
        batch_count=pool.batch_count,
        average_batch_size=pool.average_batch_size,
        capped_sessions=len(ever_capped),
        elapsed_s=elapsed,
        policy_label=label,
        per_user_capped_fraction=per_user_capped_fraction,
        decision_log=log_path,
    )
