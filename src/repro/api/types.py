"""Wire types of the online policy interface.

On a real device the USTA daemon consumes a stream of on-device telemetry
(sensor readings, CPU utilization, current frequency) and emits frequency-cap
decisions that it writes to ``scaling_max_freq``.  :class:`TelemetrySample`
and :class:`CapDecision` are those two messages; :class:`~repro.api.session.
PolicySession` maps one onto the other.

A third message, :class:`FeedbackEvent`, travels in the opposite direction of
the telemetry: it is the user's thumb on the scale ("this is too hot" / "this
is fine"), the signal the paper's user-feedback loop adapts the comfort limit
from.  Sessions route feedback events into a
:class:`~repro.users.adaptation.ComfortAdapter`.

This module is intentionally a leaf (stdlib imports only) so the simulation
engine can speak the session wire format without import cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = ["TelemetrySample", "CapDecision", "FeedbackEvent"]


@dataclass(frozen=True)
class TelemetrySample:
    """One observation of the device, as a policy daemon would see it.

    Every value must be finite.  Real HAL dumps report dead sensor channels
    as placeholder ``0.0`` and pad threshold ladders with ``NaN``; a NaN (or
    infinity) that reaches the wire would fold silently into a linear
    predictor and poison every downstream cap decision, so construction
    rejects it loudly, naming the channel.  Ingest layers that meet dirty
    data (:mod:`repro.telemetry.replay`) drop or interpolate *before*
    building samples.

    Attributes:
        time_s: device uptime of the observation.
        utilization: CPU utilization observed over the last window, in [0, 1].
        frequency_khz: CPU frequency the window ran at.
        sensor_readings: on-device sensor channels (°C); USTA's predictor
            needs at least ``"cpu"`` and ``"battery"``.
    """

    time_s: float
    utilization: float
    frequency_khz: float
    sensor_readings: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (
            math.isfinite(self.time_s)
            and math.isfinite(self.utilization)
            and math.isfinite(self.frequency_khz)
        ):
            bad = [
                name
                for name, value in (
                    ("time_s", self.time_s),
                    ("utilization", self.utilization),
                    ("frequency_khz", self.frequency_khz),
                )
                if not math.isfinite(value)
            ]
            raise ValueError(
                f"telemetry sample has non-finite {', '.join(bad)} "
                f"(time_s={self.time_s!r}, utilization={self.utilization!r}, "
                f"frequency_khz={self.frequency_khz!r})"
            )
        for channel, value in self.sensor_readings.items():
            if not math.isfinite(value):
                raise ValueError(
                    f"telemetry sample at t={self.time_s}s carries a non-finite "
                    f"reading on sensor channel {channel!r} ({value!r}); drop "
                    "or interpolate dead-channel placeholders before the wire "
                    "(repro.telemetry.replay does this for HAL traces)"
                )

    @classmethod
    def from_step_record(cls, record) -> "TelemetrySample":
        """Telemetry as logged by one :class:`~repro.sim.results.StepRecord`.

        Used to replay recorded (or simulated) runs as online telemetry
        streams — the ``repro serve`` workload.
        """
        return cls(
            time_s=record.time_s,
            utilization=record.utilization,
            frequency_khz=float(record.frequency_khz),
            sensor_readings={
                "cpu": record.sensor_cpu_temp_c,
                "battery": record.sensor_battery_temp_c,
                "skin": record.sensor_skin_temp_c,
                "screen": record.sensor_screen_temp_c,
            },
        )


@dataclass(frozen=True)
class FeedbackEvent:
    """One explicit comfort report from the (real or simulated) user.

    Attributes:
        time_s: device uptime of the report.
        kind: ``"discomfort"`` ("too hot right now") or ``"comfort"``
            ("perfectly fine right now").
        skin_temp_c: the skin temperature the user was feeling when they
            reported, when known; adapters that track the comfort threshold
            (rather than just stepping the limit) need it.
    """

    DISCOMFORT = "discomfort"
    COMFORT = "comfort"

    time_s: float
    kind: str
    skin_temp_c: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in (self.DISCOMFORT, self.COMFORT):
            raise ValueError(
                f"feedback kind must be {self.DISCOMFORT!r} or {self.COMFORT!r}, "
                f"got {self.kind!r}"
            )

    @property
    def is_discomfort(self) -> bool:
        """True for a "too hot" report."""
        return self.kind == self.DISCOMFORT

    @classmethod
    def discomfort(cls, time_s: float, skin_temp_c: Optional[float] = None) -> "FeedbackEvent":
        """A "too hot" report."""
        return cls(time_s=time_s, kind=cls.DISCOMFORT, skin_temp_c=skin_temp_c)

    @classmethod
    def comfort(cls, time_s: float, skin_temp_c: Optional[float] = None) -> "FeedbackEvent":
        """A "feels fine" report."""
        return cls(time_s=time_s, kind=cls.COMFORT, skin_temp_c=skin_temp_c)


@dataclass(frozen=True)
class CapDecision:
    """What the policy decided after one telemetry sample.

    Attributes:
        level_cap: highest frequency level the governor may select
            (``None`` = no cap; on-device this clears ``scaling_max_freq``).
        max_frequency_khz: the cap as a frequency, when the session knows the
            platform's frequency table.
        predicted_skin_temp_c: the skin prediction behind the decision (held
            from the last prediction window between predictions).
        predicted_screen_temp_c: the screen prediction, when computed.
        comfort_limit_c: the live skin comfort limit the decision was made
            against (``None`` for policies without one); under an adaptive
            policy this is the limit the feedback loop has converged to so
            far, not the profile's frozen value.
    """

    level_cap: Optional[int]
    max_frequency_khz: Optional[int] = None
    predicted_skin_temp_c: Optional[float] = None
    predicted_screen_temp_c: Optional[float] = None
    comfort_limit_c: Optional[float] = None

    @property
    def active(self) -> bool:
        """True when a frequency cap is being requested."""
        return self.level_cap is not None

    @classmethod
    def no_cap(cls) -> "CapDecision":
        """The decision of a policy with nothing to say."""
        return _NO_CAP

    @classmethod
    def from_manager_decision(cls, decision, table=None) -> "CapDecision":
        """Wrap a :class:`~repro.sim.engine.ManagerDecision` for the wire."""
        cap = decision.level_cap
        max_khz = None
        if cap is not None and table is not None:
            max_khz = table.frequency_at(cap)
        return cls(
            level_cap=cap,
            max_frequency_khz=max_khz,
            predicted_skin_temp_c=decision.predicted_skin_temp_c,
            predicted_screen_temp_c=decision.predicted_screen_temp_c,
            comfort_limit_c=getattr(decision, "comfort_limit_c", None),
        )


_NO_CAP = CapDecision(level_cap=None)
