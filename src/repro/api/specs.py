"""Declarative, JSON round-trippable policy specifications.

A *policy* couples a baseline cpufreq governor with an optional thermal
manager (USTA).  Historically every call site hand-constructed
``Governor``/``USTAController``/``RuntimePredictor`` objects with bespoke
wiring; a :class:`PolicySpec` instead *describes* that construction as plain
data:

* JSON/dict round-trippable — ``spec.to_spec()`` / ``PolicySpec.from_spec``
  and ``to_json`` / ``from_json`` are inverses, so a policy can live in a
  ``policy.json`` file, an experiment-cell payload, or a service config;
* registry-backed — component names resolve through the
  :mod:`repro.api.registry` registries, so third-party governors/managers
  participate by decorating themselves;
* validated — unknown keys raise :class:`SpecError` with a did-you-mean hint
  instead of being silently ignored.

Heavy artifacts (a trained :class:`~repro.core.predictor.RuntimePredictor`)
are *not* embedded in the JSON.  A :class:`ManagerSpec` either names a
deterministic predictor recipe (:class:`PredictorSpec`, e.g. kind
``"trained"``) or has the predictor injected at build time
(``spec.build_manager(predictor=...)``), which is what the experiment runtime
and the session layer do with the shared context predictor.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from ..core.policy import ThrottlePolicy
from .registry import ADAPTERS, GOVERNORS, MANAGERS, PREDICTORS, UnknownComponentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.predictor import RuntimePredictor
    from ..device.freq_table import FrequencyTable
    from ..governors.base import Governor
    from ..sim.engine import ThermalManager
    from ..users.adaptation import ComfortAdapter, UserFeedbackModel
    from ..users.population import ThermalComfortProfile

__all__ = [
    "SpecError",
    "GovernorSpec",
    "PredictorSpec",
    "ManagerSpec",
    "AdapterSpec",
    "PolicySpec",
]


class SpecError(ValueError):
    """A policy spec is malformed (unknown keys, missing fields, bad values)."""


def _check_keys(
    kind: str,
    spec: Mapping,
    allowed: Sequence[str],
    required: Sequence[str] = (),
) -> None:
    """Reject non-mappings, unknown keys (with a suggestion) and missing keys."""
    if not isinstance(spec, Mapping):
        raise SpecError(f"a {kind} spec must be a mapping, got {type(spec).__name__}")
    for key in spec:
        if key not in allowed:
            close = difflib.get_close_matches(str(key), allowed, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise SpecError(
                f"unknown key {key!r} in {kind} spec{hint}; "
                f"valid keys: {', '.join(sorted(allowed))}"
            )
    for key in required:
        if key not in spec:
            raise SpecError(f"a {kind} spec requires the key {key!r}")


def _require_name(kind: str, value) -> str:
    if not isinstance(value, str) or not value:
        raise SpecError(f"a {kind} spec's 'name' must be a non-empty string, got {value!r}")
    return value


@dataclass(frozen=True)
class GovernorSpec:
    """Declarative description of a cpufreq governor.

    Attributes:
        name: registry name (``"ondemand"``, ``"conservative"``, ...).
        params: constructor keyword arguments (e.g. ``up_threshold``).
    """

    name: str = "ondemand"
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_name("governor", self.name)
        object.__setattr__(self, "params", dict(self.params))

    def build(self, table: Optional["FrequencyTable"] = None) -> "Governor":
        """Instantiate the governor (optionally on a specific frequency table)."""
        try:
            return GOVERNORS.create(self.name, table=table, **self.params)
        except UnknownComponentError as exc:
            raise SpecError(str(exc)) from exc
        except TypeError as exc:
            raise SpecError(f"invalid params for governor {self.name!r}: {exc}") from exc

    def to_spec(self) -> dict:
        """The spec as a JSON-serializable dictionary."""
        spec: dict = {"name": self.name}
        if self.params:
            spec["params"] = dict(self.params)
        return spec

    @classmethod
    def from_spec(cls, spec: Union[str, Mapping]) -> "GovernorSpec":
        """Parse a dictionary (or a bare governor-name shorthand)."""
        if isinstance(spec, str):
            return cls(name=spec)
        _check_keys("governor", spec, ("name", "params"), required=("name",))
        return cls(name=_require_name("governor", spec["name"]), params=spec.get("params", {}))


@dataclass(frozen=True)
class PredictorSpec:
    """Declarative recipe for a run-time skin/screen predictor.

    The default kind, ``"trained"``, reproduces the paper's offline pipeline
    deterministically (collect logging data under the baseline governor, train
    the named learner); params are forwarded to the registered builder
    (``model``, ``seed``, ``duration_scale``, ``benchmarks``, ...).
    """

    kind: str = "trained"
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_name("predictor", self.kind)
        object.__setattr__(self, "params", dict(self.params))

    def build(self) -> "RuntimePredictor":
        """Build (usually: train) the predictor this spec describes."""
        try:
            return PREDICTORS.create(self.kind, **self.params)
        except UnknownComponentError as exc:
            raise SpecError(str(exc)) from exc
        except TypeError as exc:
            raise SpecError(f"invalid params for predictor {self.kind!r}: {exc}") from exc

    def to_spec(self) -> dict:
        spec: dict = {"kind": self.kind}
        if self.params:
            spec["params"] = dict(self.params)
        return spec

    @classmethod
    def from_spec(cls, spec: Union[str, Mapping]) -> "PredictorSpec":
        if isinstance(spec, str):
            return cls(kind=spec)
        _check_keys("predictor", spec, ("kind", "params"), required=("kind",))
        return cls(kind=_require_name("predictor", spec["kind"]), params=spec.get("params", {}))


@dataclass(frozen=True)
class ManagerSpec:
    """Declarative description of a thermal manager (USTA layer).

    Attributes:
        name: registry name (``"usta"``, ``"usta-screen"``).
        params: constructor keyword arguments other than the predictor and the
            throttle policy (``skin_limit_c``, ``prediction_period_s``, ...).
        policy: optional :meth:`ThrottlePolicy.to_spec` dictionary (the
            paper's default steps when omitted).
        predictor: optional predictor recipe; when omitted, a predictor must
            be injected at :meth:`build` time.
    """

    name: str = "usta"
    params: Mapping[str, object] = field(default_factory=dict)
    policy: Optional[Mapping[str, object]] = None
    predictor: Optional[PredictorSpec] = None

    def __post_init__(self) -> None:
        _require_name("manager", self.name)
        object.__setattr__(self, "params", dict(self.params))
        if self.policy is not None:
            # Validate eagerly and normalise to the canonical dictionary form.
            try:
                object.__setattr__(self, "policy", ThrottlePolicy.from_spec(self.policy).to_spec())
            except ValueError as exc:
                raise SpecError(f"bad throttle policy in manager {self.name!r} spec: {exc}") from exc

    def throttle_policy(self) -> Optional[ThrottlePolicy]:
        """The manager's throttle policy, when the spec overrides the default."""
        return ThrottlePolicy.from_spec(self.policy) if self.policy is not None else None

    def for_user(
        self, profile: "ThermalComfortProfile", exclude: Sequence[str] = ()
    ) -> "ManagerSpec":
        """A copy of the spec with the comfort limit(s) of one study participant.

        The registered manager declares which constructor params come from a
        user profile via a ``profile_params`` class attribute — a tuple of
        ``(param_name, profile_attribute)`` pairs (``USTAController`` maps
        ``skin_limit_c``; the screen-aware variant adds ``screen_limit_c``).
        Managers that declare nothing are returned unchanged, so third-party
        managers without per-user limits survive population sweeps.

        Args:
            exclude: profile params to leave at the spec's configured value
                (adaptive policies exclude the limit the feedback loop learns).
        """
        try:
            factory = MANAGERS.get(self.name)
        except UnknownComponentError as exc:
            raise SpecError(str(exc)) from exc
        mapping = [
            (param, attribute)
            for param, attribute in getattr(factory, "profile_params", ())
            if param not in exclude
        ]
        if not mapping:
            return self
        params = dict(self.params)
        for param, attribute in mapping:
            params[param] = getattr(profile, attribute)
        return replace(self, params=params)

    def build(
        self,
        predictor: Optional["RuntimePredictor"] = None,
        table: Optional["FrequencyTable"] = None,
    ) -> "ThermalManager":
        """Instantiate the manager.

        Args:
            predictor: trained predictor to deploy (overrides the spec's
                ``predictor`` recipe; required when the spec has none).
            table: optional platform frequency table.
        """
        resolved = predictor
        if resolved is None and self.predictor is not None:
            resolved = self.predictor.build()
        if resolved is None:
            # A registered manager may opt out of the predictor requirement
            # (class attribute requires_predictor = False): the trip-point
            # throttler reads the sensor channel directly.
            try:
                factory = MANAGERS.get(self.name)
            except UnknownComponentError as exc:
                raise SpecError(str(exc)) from exc
            if getattr(factory, "requires_predictor", True):
                raise SpecError(
                    f"manager {self.name!r} needs a predictor: inject one via "
                    "build(predictor=...) or set the spec's 'predictor' recipe"
                )
        kwargs = dict(self.params)
        if self.policy is not None:
            kwargs["policy"] = ThrottlePolicy.from_spec(self.policy)
        if table is not None:
            kwargs["table"] = table
        try:
            return MANAGERS.create(self.name, predictor=resolved, **kwargs)
        except UnknownComponentError as exc:
            raise SpecError(str(exc)) from exc
        except TypeError as exc:
            raise SpecError(f"invalid params for manager {self.name!r}: {exc}") from exc

    def to_spec(self) -> dict:
        spec: dict = {"name": self.name}
        if self.params:
            spec["params"] = dict(self.params)
        if self.policy is not None:
            spec["policy"] = dict(self.policy)
        if self.predictor is not None:
            spec["predictor"] = self.predictor.to_spec()
        return spec

    @classmethod
    def from_spec(cls, spec: Union[str, Mapping]) -> "ManagerSpec":
        if isinstance(spec, str):
            return cls(name=spec)
        _check_keys("manager", spec, ("name", "params", "policy", "predictor"), required=("name",))
        predictor = spec.get("predictor")
        return cls(
            name=_require_name("manager", spec["name"]),
            params=spec.get("params", {}),
            policy=spec.get("policy"),
            predictor=PredictorSpec.from_spec(predictor) if predictor is not None else None,
        )


#: Keys accepted in an AdapterSpec's simulated-user ``feedback`` mapping;
#: they mirror :class:`~repro.users.adaptation.UserFeedbackModel`'s fields
#: (including the adversarial noise/lag knobs).
_FEEDBACK_KEYS = (
    "true_limit_c",
    "report_period_s",
    "comfort_band_c",
    "flip_probability",
    "delay_s",
    "seed",
)


@dataclass(frozen=True)
class AdapterSpec:
    """Declarative description of a comfort-limit adapter (user-feedback loop).

    Attributes:
        name: registry name (``"fixed"``, ``"feedback_step"``,
            ``"quantile_tracker"``).
        params: strategy constructor keyword arguments (``step_down_c``,
            ``quantile``, clamp bounds, ...).  ``initial_limit_c`` may be set
            explicitly; otherwise the manager's configured limit is used.
        feedback: optional simulated-user report-model configuration
            (:class:`~repro.users.adaptation.UserFeedbackModel` fields).  Its
            ``true_limit_c`` is what :meth:`for_user` fills in from a study
            participant; omit the whole mapping for sessions whose feedback
            arrives externally (a real user).
    """

    name: str = "feedback_step"
    params: Mapping[str, object] = field(default_factory=dict)
    feedback: Optional[Mapping[str, object]] = None

    def __post_init__(self) -> None:
        _require_name("adapter", self.name)
        object.__setattr__(self, "params", dict(self.params))
        if self.feedback is not None:
            _check_keys("adapter feedback", self.feedback, _FEEDBACK_KEYS)
            object.__setattr__(self, "feedback", dict(self.feedback))

    def for_user(self, profile: "ThermalComfortProfile") -> "AdapterSpec":
        """The same adapter with the participant's *true* limit as feedback truth.

        Note the asymmetry with :meth:`ManagerSpec.for_user`: an adaptive
        policy deliberately keeps the manager's (possibly mis-specified)
        initial limit — the profile's real limit goes into the simulated
        user's feedback model, and the loop has to learn it.
        """
        feedback = dict(self.feedback) if self.feedback is not None else {}
        feedback["true_limit_c"] = profile.skin_limit_c
        return replace(self, feedback=feedback)

    def build(self, initial_limit_c: Optional[float] = None) -> "ComfortAdapter":
        """Instantiate the adaptation strategy.

        Args:
            initial_limit_c: starting limit, used when ``params`` does not
                pin one (callers pass the manager's configured limit so the
                loop starts exactly where the static policy would sit).
        """
        kwargs = dict(self.params)
        if initial_limit_c is not None:
            kwargs.setdefault("initial_limit_c", initial_limit_c)
        try:
            return ADAPTERS.create(self.name, **kwargs)
        except UnknownComponentError as exc:
            raise SpecError(str(exc)) from exc
        except (TypeError, ValueError) as exc:
            raise SpecError(f"invalid params for adapter {self.name!r}: {exc}") from exc

    def build_feedback(self) -> Optional["UserFeedbackModel"]:
        """The simulated-user report model, when the spec configures one."""
        if self.feedback is None:
            return None
        if "true_limit_c" not in self.feedback:
            raise SpecError(
                f"adapter {self.name!r} feedback config needs 'true_limit_c' "
                "(call for_user(profile) or set it explicitly)"
            )
        from ..users.adaptation import UserFeedbackModel

        try:
            return UserFeedbackModel(**self.feedback)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"bad feedback config in adapter {self.name!r}: {exc}") from exc

    def to_spec(self) -> dict:
        spec: dict = {"name": self.name}
        if self.params:
            spec["params"] = dict(self.params)
        if self.feedback is not None:
            spec["feedback"] = dict(self.feedback)
        return spec

    @classmethod
    def from_spec(cls, spec: Union[str, Mapping]) -> "AdapterSpec":
        if isinstance(spec, str):
            return cls(name=spec)
        _check_keys("adapter", spec, ("name", "params", "feedback"), required=("name",))
        return cls(
            name=_require_name("adapter", spec["name"]),
            params=spec.get("params", {}),
            feedback=spec.get("feedback"),
        )


@dataclass(frozen=True)
class PolicySpec:
    """One complete DVFS policy: a governor plus an optional thermal manager.

    This is the unit the CLI's ``--policy policy.json`` consumes, the payload
    an :class:`~repro.runtime.plan.ExperimentCell` carries, and what
    :func:`~repro.api.session.open_session` builds an online session from.
    An optional :class:`AdapterSpec` turns the manager's comfort limit into a
    live, feedback-adapted quantity.
    """

    governor: GovernorSpec = field(default_factory=GovernorSpec)
    manager: Optional[ManagerSpec] = None
    adapter: Optional[AdapterSpec] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.adapter is not None and self.manager is None:
            raise SpecError(
                "a policy adapter needs a thermal manager to act on "
                "(set 'manager' alongside 'adapter')"
            )

    def for_user(self, profile: "ThermalComfortProfile") -> "PolicySpec":
        """The same policy configured for one participant.

        Static policies get the participant's comfort limit(s) frozen into
        the manager spec.  Adaptive policies keep the manager's initial
        *skin* limit — that is the quantity the feedback loop must learn,
        pointed at the participant's true value via
        :meth:`AdapterSpec.for_user` — while every other per-user manager
        param (e.g. ``usta-screen``'s screen limit, which no adapter
        touches) is still personalised.
        """
        if self.adapter is not None:
            return replace(
                self,
                manager=self.manager.for_user(profile, exclude=("skin_limit_c",)),
                adapter=self.adapter.for_user(profile),
            )
        if self.manager is None:
            return self
        return replace(self, manager=self.manager.for_user(profile))

    def validate_registered(self) -> "PolicySpec":
        """Fail fast when any component name is not in its registry.

        Spec parsing deliberately does not resolve names (a spec may be read
        before a plugin module registers its components); call this before
        expensive work — the CLI does it right after loading a policy file —
        to turn a late ``UnknownComponentError`` deep inside a run into an
        upfront :class:`SpecError`.

        Returns ``self`` so the call chains.
        """
        try:
            GOVERNORS.get(self.governor.name)
            if self.manager is not None:
                MANAGERS.get(self.manager.name)
                if self.manager.predictor is not None:
                    PREDICTORS.get(self.manager.predictor.kind)
            if self.adapter is not None:
                ADAPTERS.get(self.adapter.name)
        except UnknownComponentError as exc:
            raise SpecError(str(exc)) from exc
        return self

    # -- construction -----------------------------------------------------------

    def build_governor(self, table: Optional["FrequencyTable"] = None) -> "Governor":
        """Instantiate the baseline governor."""
        return self.governor.build(table=table)

    def build_manager(
        self,
        predictor: Optional["RuntimePredictor"] = None,
        table: Optional["FrequencyTable"] = None,
    ) -> Optional["ThermalManager"]:
        """Instantiate the thermal manager (``None`` for a bare-governor policy).

        With an :class:`AdapterSpec` present the manager comes back wrapped in
        an :class:`~repro.users.adaptation.AdaptiveComfortManager` whose
        adapter starts at the manager's configured limit.
        """
        if self.manager is None:
            return None
        manager = self.manager.build(predictor=predictor, table=table)
        if self.adapter is None:
            return manager
        from ..users.adaptation import AdaptiveComfortManager

        adapter = self.adapter.build(
            initial_limit_c=getattr(manager, "skin_limit_c", None)
        )
        try:
            return AdaptiveComfortManager(
                inner=manager,
                adapter=adapter,
                feedback=self.adapter.build_feedback(),
            )
        except TypeError as exc:
            raise SpecError(
                f"adapter {self.adapter.name!r} cannot wrap manager "
                f"{self.manager.name!r}: {exc}"
            ) from exc

    # -- serialization ----------------------------------------------------------

    def to_spec(self) -> dict:
        """The policy as a JSON-serializable dictionary."""
        spec: dict = {"governor": self.governor.to_spec()}
        if self.manager is not None:
            spec["manager"] = self.manager.to_spec()
        if self.adapter is not None:
            spec["adapter"] = self.adapter.to_spec()
        if self.label is not None:
            spec["label"] = self.label
        return spec

    @classmethod
    def from_spec(cls, spec: Mapping) -> "PolicySpec":
        """Parse a dictionary produced by :meth:`to_spec` (or hand-written)."""
        _check_keys("policy", spec, ("governor", "manager", "adapter", "label"))
        manager = spec.get("manager")
        adapter = spec.get("adapter")
        label = spec.get("label")
        if label is not None and not isinstance(label, str):
            raise SpecError(f"a policy spec's 'label' must be a string, got {label!r}")
        return cls(
            governor=GovernorSpec.from_spec(spec.get("governor", "ondemand")),
            manager=ManagerSpec.from_spec(manager) if manager is not None else None,
            adapter=AdapterSpec.from_spec(adapter) if adapter is not None else None,
            label=label,
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The policy as a JSON document."""
        return json.dumps(self.to_spec(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PolicySpec":
        """Parse a JSON document produced by :meth:`to_json` (or hand-written)."""
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"policy spec is not valid JSON: {exc}") from exc
        return cls.from_spec(spec)

    @classmethod
    def from_file(cls, path) -> "PolicySpec":
        """Load a policy from a ``policy.json`` file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
