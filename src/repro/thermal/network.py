"""Lumped RC compact thermal network.

The phone is modelled as a small graph of isothermal *nodes* (CPU die, board,
battery, back cover, screen, ...) connected by thermal *conductances* (W/°C).
Each internal node has a heat capacitance (J/°C) and may receive injected
power; *boundary* nodes (ambient air, the user's hand) have a fixed
temperature and act as heat sinks.

The governing equation is the usual compact-model ODE

    C * dT/dt = -G * T + G_b * T_b + P(t)

where ``C`` is the diagonal capacitance matrix, ``G`` the conductance
Laplacian restricted to internal nodes, ``G_b`` the coupling to boundary
nodes, ``T_b`` the boundary temperatures and ``P`` the injected power vector.
Integration and steady-state solving live in :mod:`repro.thermal.solver`.

This is the same modelling approach as the thermal simulators the paper cites
(Lee et al. [7], Therminator [8]) reduced to a handful of lumps — sufficient
to reproduce the minutes-scale skin/screen dynamics USTA reacts to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

__all__ = ["ThermalNode", "ThermalConductance", "ThermalNetwork"]


@dataclass(frozen=True)
class ThermalNode:
    """A lumped thermal node.

    Attributes:
        name: unique node identifier.
        capacitance_j_per_c: heat capacitance in J/°C.  Must be positive for
            internal nodes; ignored for boundary nodes.
        boundary: if True the node temperature is externally imposed and never
            integrated (ambient air, the user's hand).
        initial_temp_c: starting temperature in °C.
    """

    name: str
    capacitance_j_per_c: float = 1.0
    boundary: bool = False
    initial_temp_c: float = 25.0


@dataclass(frozen=True)
class ThermalConductance:
    """A thermal conductance (1/R) between two nodes, in W/°C."""

    node_a: str
    node_b: str
    conductance_w_per_c: float


class ThermalNetwork:
    """Container and matrix assembler for a lumped thermal network.

    The network is built incrementally with :meth:`add_node` and
    :meth:`add_conductance`; :meth:`assemble` freezes it into the matrices the
    solver consumes.  Node temperatures and injected power are addressed by
    node name so client code never deals with matrix indices.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, ThermalNode] = {}
        self._conductances: List[ThermalConductance] = []
        self._assembled = False
        # Monotonic counters solvers use to invalidate cached factorizations:
        # matrix_version covers the (C, G, G_b) matrices, boundary_version the
        # imposed boundary temperatures.
        self._matrix_version = 0
        self._boundary_version = 0
        # Filled by assemble():
        self._internal_names: List[str] = []
        self._boundary_names: List[str] = []
        self._index: Dict[str, int] = {}
        self._boundary_index: Dict[str, int] = {}
        self._capacitance: np.ndarray = np.empty(0)
        self._g_internal: np.ndarray = np.empty((0, 0))
        self._g_boundary: np.ndarray = np.empty((0, 0))
        self._temps: np.ndarray = np.empty(0)
        self._boundary_temps: np.ndarray = np.empty(0)

    # -- construction ---------------------------------------------------------

    def add_node(
        self,
        name: str,
        capacitance_j_per_c: float = 1.0,
        boundary: bool = False,
        initial_temp_c: float = 25.0,
    ) -> ThermalNode:
        """Add a node; returns the created :class:`ThermalNode`."""
        if self._assembled:
            raise RuntimeError("cannot add nodes after the network is assembled")
        if name in self._nodes:
            raise ValueError(f"duplicate node name {name!r}")
        if not boundary and capacitance_j_per_c <= 0:
            raise ValueError("internal nodes need a positive capacitance")
        node = ThermalNode(
            name=name,
            capacitance_j_per_c=capacitance_j_per_c,
            boundary=boundary,
            initial_temp_c=initial_temp_c,
        )
        self._nodes[name] = node
        return node

    def add_conductance(self, node_a: str, node_b: str, conductance_w_per_c: float) -> None:
        """Add a thermal conductance between two existing nodes."""
        if self._assembled:
            raise RuntimeError("cannot add conductances after the network is assembled")
        for name in (node_a, node_b):
            if name not in self._nodes:
                raise KeyError(f"unknown node {name!r}")
        if node_a == node_b:
            raise ValueError("a conductance must connect two distinct nodes")
        if conductance_w_per_c <= 0:
            raise ValueError("conductance must be positive")
        self._conductances.append(ThermalConductance(node_a, node_b, conductance_w_per_c))

    # -- assembly -------------------------------------------------------------

    def assemble(self) -> None:
        """Freeze the topology and build the solver matrices."""
        if self._assembled:
            return
        if not self._nodes:
            raise RuntimeError("cannot assemble an empty network")

        self._internal_names = [n.name for n in self._nodes.values() if not n.boundary]
        self._boundary_names = [n.name for n in self._nodes.values() if n.boundary]
        if not self._internal_names:
            raise RuntimeError("the network needs at least one internal node")

        self._index = {name: i for i, name in enumerate(self._internal_names)}
        self._boundary_index = {name: i for i, name in enumerate(self._boundary_names)}

        n = len(self._internal_names)
        m = len(self._boundary_names)
        self._capacitance = np.array(
            [self._nodes[name].capacitance_j_per_c for name in self._internal_names],
            dtype=float,
        )
        self._g_internal = np.zeros((n, n), dtype=float)
        self._g_boundary = np.zeros((n, m), dtype=float)

        for edge in self._conductances:
            g = edge.conductance_w_per_c
            a_internal = edge.node_a in self._index
            b_internal = edge.node_b in self._index
            if a_internal and b_internal:
                i, j = self._index[edge.node_a], self._index[edge.node_b]
                self._g_internal[i, i] += g
                self._g_internal[j, j] += g
                self._g_internal[i, j] -= g
                self._g_internal[j, i] -= g
            elif a_internal or b_internal:
                internal = edge.node_a if a_internal else edge.node_b
                boundary = edge.node_b if a_internal else edge.node_a
                i = self._index[internal]
                j = self._boundary_index[boundary]
                self._g_internal[i, i] += g
                self._g_boundary[i, j] += g
            # boundary-to-boundary conductances carry no information; ignore

        self._temps = np.array(
            [self._nodes[name].initial_temp_c for name in self._internal_names], dtype=float
        )
        self._boundary_temps = np.array(
            [self._nodes[name].initial_temp_c for name in self._boundary_names], dtype=float
        )
        self._assembled = True
        self._matrix_version += 1
        self._boundary_version += 1

    # -- state access ----------------------------------------------------------

    @property
    def assembled(self) -> bool:
        """True once :meth:`assemble` has run."""
        return self._assembled

    @property
    def matrix_version(self) -> int:
        """Counter bumped whenever the solver matrices (C, G, G_b) change.

        Solvers key cached factorizations of ``C/dt + G`` on this value so a
        re-assembly or a run-time conductance change (hand contact toggling)
        invalidates them.
        """
        return self._matrix_version

    @property
    def boundary_version(self) -> int:
        """Counter bumped whenever a boundary temperature changes.

        Covers the cached constant RHS term ``G_b @ T_b``.
        """
        return self._boundary_version

    @property
    def internal_names(self) -> Tuple[str, ...]:
        """Names of integrated (non-boundary) nodes, in matrix order."""
        self._require_assembled()
        return tuple(self._internal_names)

    @property
    def boundary_names(self) -> Tuple[str, ...]:
        """Names of boundary nodes, in matrix order."""
        self._require_assembled()
        return tuple(self._boundary_names)

    @property
    def node_names(self) -> Tuple[str, ...]:
        """All node names (internal followed by boundary)."""
        self._require_assembled()
        return tuple(self._internal_names) + tuple(self._boundary_names)

    @property
    def capacitances(self) -> np.ndarray:
        """Capacitance vector (J/°C) of the internal nodes."""
        self._require_assembled()
        return self._capacitance.copy()

    @property
    def conductance_matrix(self) -> np.ndarray:
        """Conductance Laplacian restricted to internal nodes (W/°C)."""
        self._require_assembled()
        return self._g_internal.copy()

    @property
    def boundary_coupling(self) -> np.ndarray:
        """Internal-to-boundary coupling matrix (W/°C)."""
        self._require_assembled()
        return self._g_boundary.copy()

    @property
    def temperatures_vector(self) -> np.ndarray:
        """Current internal temperature vector (°C), in matrix order."""
        self._require_assembled()
        return self._temps.copy()

    @property
    def boundary_temperatures_vector(self) -> np.ndarray:
        """Current boundary temperature vector (°C), in matrix order."""
        self._require_assembled()
        return self._boundary_temps.copy()

    def temperatures(self) -> Dict[str, float]:
        """All node temperatures keyed by node name."""
        self._require_assembled()
        temps = {name: float(self._temps[i]) for name, i in self._index.items()}
        temps.update(
            {name: float(self._boundary_temps[i]) for name, i in self._boundary_index.items()}
        )
        return temps

    def temperature_of(self, name: str) -> float:
        """Temperature of a single node (internal or boundary)."""
        self._require_assembled()
        if name in self._index:
            return float(self._temps[self._index[name]])
        if name in self._boundary_index:
            return float(self._boundary_temps[self._boundary_index[name]])
        raise KeyError(f"unknown node {name!r}")

    def set_temperatures(self, temps: Mapping[str, float]) -> None:
        """Overwrite node temperatures (internal and/or boundary) by name."""
        self._require_assembled()
        for name, value in temps.items():
            if name in self._index:
                self._temps[self._index[name]] = float(value)
            elif name in self._boundary_index:
                self._boundary_temps[self._boundary_index[name]] = float(value)
                self._boundary_version += 1
            else:
                raise KeyError(f"unknown node {name!r}")

    def set_boundary_temperature(self, name: str, temp_c: float) -> None:
        """Set the temperature of a boundary node."""
        self._require_assembled()
        if name not in self._boundary_index:
            raise KeyError(f"{name!r} is not a boundary node")
        self._boundary_temps[self._boundary_index[name]] = float(temp_c)
        self._boundary_version += 1

    def set_conductance(self, node_a: str, node_b: str, conductance_w_per_c: float) -> None:
        """Change the value of an existing internal/boundary coupling at run time.

        Only internal↔boundary couplings can be changed after assembly (this is
        what hand-contact toggling needs); the previous value of the coupling
        is removed from the matrices and the new one inserted.
        """
        self._require_assembled()
        if conductance_w_per_c < 0:
            raise ValueError("conductance must be non-negative")
        internal, boundary = None, None
        if node_a in self._index and node_b in self._boundary_index:
            internal, boundary = node_a, node_b
        elif node_b in self._index and node_a in self._boundary_index:
            internal, boundary = node_b, node_a
        else:
            raise KeyError("set_conductance only supports internal<->boundary couplings")
        i = self._index[internal]
        j = self._boundary_index[boundary]
        previous = self._g_boundary[i, j]
        self._g_internal[i, i] += conductance_w_per_c - previous
        self._g_boundary[i, j] = conductance_w_per_c
        self._matrix_version += 1

    def power_vector(self, power_w: Mapping[str, float]) -> np.ndarray:
        """Build the injected-power vector from a {node: Watts} mapping.

        Power injected into boundary nodes is silently dropped (a boundary is
        an infinite reservoir); unknown node names raise ``KeyError``.
        """
        self._require_assembled()
        vector = np.zeros(len(self._internal_names), dtype=float)
        for name, value in power_w.items():
            if name in self._index:
                vector[self._index[name]] += float(value)
            elif name in self._boundary_index:
                continue
            else:
                raise KeyError(f"unknown node {name!r}")
        return vector

    def apply_temperature_vector(self, temps: np.ndarray) -> None:
        """Overwrite the internal temperature vector (solver callback)."""
        self._require_assembled()
        if temps.shape != self._temps.shape:
            raise ValueError("temperature vector has the wrong shape")
        self._temps = np.asarray(temps, dtype=float).copy()

    def reset(self, initial_temps: Optional[Mapping[str, float]] = None) -> None:
        """Reset all nodes to their declared initial temperatures (or overrides)."""
        self._require_assembled()
        self._temps = np.array(
            [self._nodes[name].initial_temp_c for name in self._internal_names], dtype=float
        )
        self._boundary_temps = np.array(
            [self._nodes[name].initial_temp_c for name in self._boundary_names], dtype=float
        )
        self._boundary_version += 1
        if initial_temps:
            self.set_temperatures(initial_temps)

    # -- helpers ----------------------------------------------------------------

    def _require_assembled(self) -> None:
        if not self._assembled:
            raise RuntimeError("the network must be assembled first (call assemble())")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ThermalNetwork(nodes={len(self._nodes)}, "
            f"conductances={len(self._conductances)}, assembled={self._assembled})"
        )
