"""Time integration and steady-state solving for the thermal network.

The compact-model ODE

    C * dT/dt = -G * T + G_b * T_b + P

is stiff (the CPU die time constant is seconds, the battery's is tens of
minutes), so the default integrator is backward (implicit) Euler, which is
unconditionally stable and lets the simulator take one-second steps without
sub-cycling.  A forward-Euler integrator with automatic sub-stepping is kept
for cross-checking, and a direct steady-state solve supports calibration and
property tests.

Because the step matrix ``A = C/dt + G`` only depends on the network topology
and the step size, the implicit path factors it once (LU) and reuses the
factorization across steps; the factorization is invalidated through the
network's :attr:`~repro.thermal.network.ThermalNetwork.matrix_version`
counter when the topology or ``dt`` changes.  The same factorization also
backs :meth:`ThermalSolver.step_many`, which integrates N independent device
instances that share one network as a single ``(n_nodes, N)`` solve — the
substrate of the batched experiment runtime in :mod:`repro.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly on machines with SciPy
    from scipy.linalg import get_lapack_funcs as _get_lapack_funcs
    from scipy.linalg import lu_factor as _lu_factor
except ImportError:  # pragma: no cover - SciPy-less fallback
    _get_lapack_funcs = None
    _lu_factor = None

from .network import ThermalNetwork

__all__ = ["ThermalSolver", "steady_state"]


def steady_state(network: ThermalNetwork, power_w: Mapping[str, float]) -> Dict[str, float]:
    """Solve ``G * T = G_b * T_b + P`` for the steady-state temperatures.

    Args:
        network: an assembled :class:`ThermalNetwork`.
        power_w: injected power per node (Watts).

    Returns:
        Steady-state temperatures for every node (boundary nodes keep their
        imposed temperatures).
    """
    if not network.assembled:
        network.assemble()
    g = network.conductance_matrix
    rhs = network.boundary_coupling @ network.boundary_temperatures_vector
    rhs = rhs + network.power_vector(power_w)
    temps = np.linalg.solve(g, rhs)
    result = dict(zip(network.internal_names, (float(t) for t in temps)))
    for name in network.boundary_names:
        result[name] = network.temperature_of(name)
    return result


@dataclass
class ThermalSolver:
    """Steps a :class:`ThermalNetwork` forward in time.

    Attributes:
        network: the assembled network to integrate.
        method: ``"implicit"`` (backward Euler, default) or ``"explicit"``
            (forward Euler with automatic sub-stepping).
        max_explicit_dt_s: sub-step ceiling for the explicit method.
    """

    network: ThermalNetwork
    method: str = "implicit"
    max_explicit_dt_s: float = 0.25

    def __post_init__(self) -> None:
        if self.method not in ("implicit", "explicit"):
            raise ValueError("method must be 'implicit' or 'explicit'")
        if not self.network.assembled:
            self.network.assemble()
        # Cached implicit-Euler factorization of A = C/dt + G, keyed on the
        # step size and the network's version counters.
        self._cache_dt: Optional[float] = None
        self._cache_lu: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._cache_getrs = None
        self._cache_matrix: Optional[np.ndarray] = None
        self._cache_c_over_dt: Optional[np.ndarray] = None
        self._cache_rhs_const: Optional[np.ndarray] = None
        self._cache_matrix_version: int = -1
        self._cache_boundary_version: int = -1

    def step(self, dt_s: float, power_w: Mapping[str, float]) -> Dict[str, float]:
        """Advance the network by ``dt_s`` seconds with the given injected power.

        Returns the node temperatures after the step (all nodes, by name).
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if self.method == "implicit":
            self._step_implicit(dt_s, power_w)
        else:
            self._step_explicit(dt_s, power_w)
        return self.network.temperatures()

    # -- factorization cache -----------------------------------------------------

    def invalidate_cache(self) -> None:
        """Drop the cached factorization (forces a refactorization next step).

        Normally unnecessary — the cache tracks the network's version counters
        — but exposed for callers that mutate network internals directly.
        """
        self._cache_dt = None
        self._cache_matrix_version = -1
        self._cache_boundary_version = -1

    def _refresh_factorization(self, dt_s: float) -> None:
        """Ensure the cached factorization matches ``dt_s`` and the network.

        The matrix ``A = C/dt + G`` is factored once per (dt, topology) pair;
        the constant RHS term ``G_b @ T_b`` is refreshed independently when a
        boundary temperature changes (it does not require refactoring).
        """
        net = self.network
        if (
            self._cache_dt != dt_s
            or self._cache_matrix_version != net.matrix_version
        ):
            c = net.capacitances
            g = net.conductance_matrix
            c_over_dt = c / dt_s
            a = np.diag(c_over_dt) + g
            self._cache_c_over_dt = c_over_dt
            self._cache_matrix = a
            if _lu_factor is not None:
                lu, piv = _lu_factor(a)
                # LAPACK wants Fortran order; converting once here avoids a
                # copy inside every getrs call.
                lu = np.asfortranarray(lu)
                self._cache_lu = (lu, piv)
                self._cache_getrs = _get_lapack_funcs(("getrs",), (lu,))[0]
            else:
                self._cache_lu = None
                self._cache_getrs = None
            self._cache_dt = dt_s
            self._cache_matrix_version = net.matrix_version
            # G_b may have changed together with G; force an RHS refresh.
            self._cache_boundary_version = -1
        if self._cache_boundary_version != net.boundary_version:
            self._cache_rhs_const = (
                net.boundary_coupling @ net.boundary_temperatures_vector
            )
            self._cache_boundary_version = net.boundary_version

    def _solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` against the cached factorization.

        Calls LAPACK ``getrs`` directly — the same back-substitution
        ``np.linalg.solve`` (``gesv``) performs after its factorization, so
        the result is bit-for-bit identical to an unfactored solve.
        """
        if self._cache_getrs is not None:
            lu, piv = self._cache_lu
            x, info = self._cache_getrs(lu, piv, b)
            if info != 0:  # pragma: no cover - defensive; A is diagonally dominant
                raise np.linalg.LinAlgError(f"getrs failed with info={info}")
            return x
        return np.linalg.solve(self._cache_matrix, b)

    # -- integrators ------------------------------------------------------------

    def _step_implicit(self, dt_s: float, power_w: Mapping[str, float]) -> None:
        net = self.network
        self._refresh_factorization(dt_s)
        t_old = net.temperatures_vector
        p = net.power_vector(power_w)

        # (C/dt + G) T_new = C/dt * T_old + G_b T_b + P
        b = self._cache_c_over_dt * t_old + self._cache_rhs_const + p
        t_new = self._solve(b)
        net.apply_temperature_vector(t_new)

    def _step_explicit(self, dt_s: float, power_w: Mapping[str, float]) -> None:
        net = self.network
        c = net.capacitances
        g = net.conductance_matrix
        rhs_const = net.boundary_coupling @ net.boundary_temperatures_vector
        p = net.power_vector(power_w)

        # Stability limit for forward Euler: dt < 2 * C_i / G_ii for every node.
        diag = np.diag(g)
        with np.errstate(divide="ignore"):
            limits = np.where(diag > 0, c / diag, np.inf)
        stable_dt = min(self.max_explicit_dt_s, float(0.5 * np.min(limits)))
        steps = max(1, int(np.ceil(dt_s / stable_dt)))
        sub_dt = dt_s / steps

        t = net.temperatures_vector
        for _ in range(steps):
            dTdt = (-g @ t + rhs_const + p) / c
            t = t + sub_dt * dTdt
        net.apply_temperature_vector(t)

    # -- vectorized stepping ------------------------------------------------------

    def step_many(
        self,
        dt_s: float,
        power_matrix: np.ndarray,
        temps_matrix: np.ndarray,
        exact: bool = True,
        columns: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance N independent instances of this network by one implicit step.

        Every column of ``temps_matrix`` is the internal temperature vector of
        one device instance and every column of ``power_matrix`` its injected
        power; all instances share this solver's network matrices and boundary
        temperatures, so the cached factorization is applied to all N
        right-hand sides at once.  The solver's own network state is *not*
        touched — callers own the state matrix.

        Args:
            dt_s: step size in seconds.
            power_matrix: injected power, shape ``(n_internal, N)``.
            temps_matrix: internal temperatures, shape ``(n_internal, N)``.
            exact: when True (default) each column is solved individually so
                the result is bit-for-bit identical to N scalar
                :meth:`step` calls; when False all columns are solved in one
                blocked LAPACK call, which is faster but may differ from the
                scalar path in the last ulp.
            columns: optional 1-D integer index array selecting which columns
                to integrate — the masked/ragged form the heterogeneous batch
                engine uses for instances that share *this* solver's matrices
                while other instances (a different hand-contact state, an
                already-finished trace) sit the step out.  The return value
                then has shape ``(n_internal, len(columns))`` and the caller
                scatters it back.

        Returns:
            The new temperature matrix: shape ``(n_internal, N)``, or
            ``(n_internal, len(columns))`` when ``columns`` is given.
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if self.method != "implicit":
            raise ValueError("step_many requires the implicit method")
        temps_matrix = np.asarray(temps_matrix, dtype=float)
        power_matrix = np.asarray(power_matrix, dtype=float)
        if temps_matrix.ndim != 2 or power_matrix.shape != temps_matrix.shape:
            raise ValueError("power and temperature matrices must share shape (n_internal, N)")
        if columns is not None:
            temps_matrix = temps_matrix[:, columns]
            power_matrix = power_matrix[:, columns]
        self._refresh_factorization(dt_s)
        if not exact:
            b = (
                self._cache_c_over_dt[:, None] * temps_matrix
                + self._cache_rhs_const[:, None]
                + power_matrix
            )
            return self._solve(b)
        # Build the RHS in Fortran order so every b[:, j] below is a
        # contiguous slice: LAPACK then back-substitutes each column in place
        # instead of copying it in and out of the f2py wrapper.  The
        # elementwise order ((C/dt)*T, then +const, then +P) matches the
        # expression above, so only the memory layout differs, not the bits.
        b = np.empty(temps_matrix.shape, order="F")
        np.multiply(self._cache_c_over_dt[:, None], temps_matrix, out=b)
        b += self._cache_rhs_const[:, None]
        b += power_matrix
        getrs = self._cache_getrs
        if getrs is None:
            matrix = self._cache_matrix
            for j in range(b.shape[1]):
                b[:, j] = np.linalg.solve(matrix, b[:, j])
            return b
        lu, piv = self._cache_lu
        for j in range(b.shape[1]):
            _, info = getrs(lu, piv, b[:, j], overwrite_b=True)
            if info != 0:  # pragma: no cover - defensive; A is diagonally dominant
                raise np.linalg.LinAlgError(f"getrs failed with info={info}")
        return b

    def make_stepper(self, dt_s: float):
        """Prebind the exact multi-instance step for a hot batch loop.

        Returns ``step(power_matrix, temps_matrix) -> new_temps`` doing what
        :meth:`step_many` with ``exact=True`` does — bit-for-bit — minus the
        per-call argument validation and factorization lookups, which the
        batch engines pay hundreds of times per run otherwise.  The returned
        callable is pinned to ``dt_s`` and to the network's matrices and
        boundary temperatures *as of this call*: rebuild it after any change
        to either (the engines build one per run, after the members' hand
        state has been applied).
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if self.method != "implicit":
            raise ValueError("make_stepper requires the implicit method")
        self._refresh_factorization(dt_s)
        c_over_dt = self._cache_c_over_dt[:, None]
        rhs_const = self._cache_rhs_const[:, None]
        empty = np.empty
        multiply = np.multiply
        getrs = self._cache_getrs
        if getrs is None:
            matrix = self._cache_matrix
            solve = np.linalg.solve

            def step(power_matrix: np.ndarray, temps_matrix: np.ndarray) -> np.ndarray:
                b = empty(temps_matrix.shape, order="F")
                multiply(c_over_dt, temps_matrix, out=b)
                b += rhs_const
                b += power_matrix
                for j in range(b.shape[1]):
                    b[:, j] = solve(matrix, b[:, j])
                return b

            return step

        lu, piv = self._cache_lu

        def step(power_matrix: np.ndarray, temps_matrix: np.ndarray) -> np.ndarray:
            b = empty(temps_matrix.shape, order="F")
            multiply(c_over_dt, temps_matrix, out=b)
            b += rhs_const
            b += power_matrix
            # b is Fortran-ordered, so iterating b.T yields each column as a
            # contiguous 1-D view and getrs back-substitutes it in place.
            for col in b.T:
                _, info = getrs(lu, piv, col, overwrite_b=True)
                if info != 0:  # pragma: no cover - defensive; A is diagonally dominant
                    raise np.linalg.LinAlgError(f"getrs failed with info={info}")
            return b

        return step

    # -- convenience -------------------------------------------------------------

    def run(
        self,
        duration_s: float,
        dt_s: float,
        power_w: Mapping[str, float],
    ) -> Dict[str, float]:
        """Integrate a constant power profile for ``duration_s`` seconds.

        The number of whole steps is computed up front (mirroring the explicit
        integrator's sub-step logic) so long horizons do not suffer from
        float accumulation drift in the ``elapsed`` counter.
        """
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        steps = int(np.floor(duration_s / dt_s + 1e-9))
        remainder = duration_s - steps * dt_s
        temps = self.network.temperatures()
        for _ in range(steps):
            temps = self.step(dt_s, power_w)
        if remainder > 1e-9:
            temps = self.step(remainder, power_w)
        return temps
