"""Time integration and steady-state solving for the thermal network.

The compact-model ODE

    C * dT/dt = -G * T + G_b * T_b + P

is stiff (the CPU die time constant is seconds, the battery's is tens of
minutes), so the default integrator is backward (implicit) Euler, which is
unconditionally stable and lets the simulator take one-second steps without
sub-cycling.  A forward-Euler integrator with automatic sub-stepping is kept
for cross-checking, and a direct steady-state solve supports calibration and
property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from .network import ThermalNetwork

__all__ = ["ThermalSolver", "steady_state"]


def steady_state(network: ThermalNetwork, power_w: Mapping[str, float]) -> Dict[str, float]:
    """Solve ``G * T = G_b * T_b + P`` for the steady-state temperatures.

    Args:
        network: an assembled :class:`ThermalNetwork`.
        power_w: injected power per node (Watts).

    Returns:
        Steady-state temperatures for every node (boundary nodes keep their
        imposed temperatures).
    """
    if not network.assembled:
        network.assemble()
    g = network.conductance_matrix
    rhs = network.boundary_coupling @ network.boundary_temperatures_vector
    rhs = rhs + network.power_vector(power_w)
    temps = np.linalg.solve(g, rhs)
    result = dict(zip(network.internal_names, (float(t) for t in temps)))
    for name in network.boundary_names:
        result[name] = network.temperature_of(name)
    return result


@dataclass
class ThermalSolver:
    """Steps a :class:`ThermalNetwork` forward in time.

    Attributes:
        network: the assembled network to integrate.
        method: ``"implicit"`` (backward Euler, default) or ``"explicit"``
            (forward Euler with automatic sub-stepping).
        max_explicit_dt_s: sub-step ceiling for the explicit method.
    """

    network: ThermalNetwork
    method: str = "implicit"
    max_explicit_dt_s: float = 0.25

    def __post_init__(self) -> None:
        if self.method not in ("implicit", "explicit"):
            raise ValueError("method must be 'implicit' or 'explicit'")
        if not self.network.assembled:
            self.network.assemble()
        self._cache_dt: Optional[float] = None
        self._cache_lu: Optional[np.ndarray] = None

    def step(self, dt_s: float, power_w: Mapping[str, float]) -> Dict[str, float]:
        """Advance the network by ``dt_s`` seconds with the given injected power.

        Returns the node temperatures after the step (all nodes, by name).
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if self.method == "implicit":
            self._step_implicit(dt_s, power_w)
        else:
            self._step_explicit(dt_s, power_w)
        return self.network.temperatures()

    # -- integrators ------------------------------------------------------------

    def _step_implicit(self, dt_s: float, power_w: Mapping[str, float]) -> None:
        net = self.network
        c = net.capacitances
        g = net.conductance_matrix
        t_old = net.temperatures_vector
        rhs_const = net.boundary_coupling @ net.boundary_temperatures_vector
        p = net.power_vector(power_w)

        # (C/dt + G) T_new = C/dt * T_old + G_b T_b + P
        a = np.diag(c / dt_s) + g
        b = (c / dt_s) * t_old + rhs_const + p
        t_new = np.linalg.solve(a, b)
        net.apply_temperature_vector(t_new)

    def _step_explicit(self, dt_s: float, power_w: Mapping[str, float]) -> None:
        net = self.network
        c = net.capacitances
        g = net.conductance_matrix
        rhs_const = net.boundary_coupling @ net.boundary_temperatures_vector
        p = net.power_vector(power_w)

        # Stability limit for forward Euler: dt < 2 * C_i / G_ii for every node.
        diag = np.diag(g)
        with np.errstate(divide="ignore"):
            limits = np.where(diag > 0, c / diag, np.inf)
        stable_dt = min(self.max_explicit_dt_s, float(0.5 * np.min(limits)))
        steps = max(1, int(np.ceil(dt_s / stable_dt)))
        sub_dt = dt_s / steps

        t = net.temperatures_vector
        for _ in range(steps):
            dTdt = (-g @ t + rhs_const + p) / c
            t = t + sub_dt * dTdt
        net.apply_temperature_vector(t)

    # -- convenience -------------------------------------------------------------

    def run(
        self,
        duration_s: float,
        dt_s: float,
        power_w: Mapping[str, float],
    ) -> Dict[str, float]:
        """Integrate a constant power profile for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        elapsed = 0.0
        temps = self.network.temperatures()
        while elapsed < duration_s - 1e-9:
            step = min(dt_s, duration_s - elapsed)
            temps = self.step(step, power_w)
            elapsed += step
        return temps
