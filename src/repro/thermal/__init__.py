"""Compact thermal-network substrate (nodes, solver, Nexus 4 calibration)."""

from .ambient import AMBIENT_NODE, HAND_NODE, AmbientConditions, HandContact
from .network import ThermalConductance, ThermalNetwork, ThermalNode
from .nexus4 import (
    NEXUS4_NODES,
    Nexus4ThermalParameters,
    build_nexus4_network,
)
from .solver import ThermalSolver, steady_state

__all__ = [
    "AMBIENT_NODE",
    "HAND_NODE",
    "AmbientConditions",
    "HandContact",
    "ThermalConductance",
    "ThermalNetwork",
    "ThermalNode",
    "NEXUS4_NODES",
    "Nexus4ThermalParameters",
    "build_nexus4_network",
    "ThermalSolver",
    "steady_state",
]
