"""Ambient and hand-contact boundary conditions.

The paper's §III.A checks whether human touch changes the exterior temperature
of the device and finds the effect is small when the phone is active.  To
reproduce that ablation the thermal model exposes the hand as a boundary node
whose coupling to the back cover can be switched on (phone held in the palm)
or off (phone on a table), plus the ambient air temperature.
"""

from __future__ import annotations

from dataclasses import dataclass

from .network import ThermalNetwork

__all__ = ["AmbientConditions", "HandContact"]

AMBIENT_NODE = "ambient"
HAND_NODE = "hand"


@dataclass
class AmbientConditions:
    """Environment the phone sits in.

    Attributes:
        air_temp_c: ambient air temperature (°C); the paper's lab is ~23 °C.
        hand_temp_c: palm skin temperature (°C); human palms sit near 33 °C.
    """

    air_temp_c: float = 23.0
    hand_temp_c: float = 33.0

    def apply(self, network: ThermalNetwork) -> None:
        """Impose the boundary temperatures on an assembled network."""
        network.set_boundary_temperature(AMBIENT_NODE, self.air_temp_c)
        if HAND_NODE in network.boundary_names:
            network.set_boundary_temperature(HAND_NODE, self.hand_temp_c)


@dataclass
class HandContact:
    """Models whether (and how firmly) the user's palm touches the back cover.

    A palm pressed against the back cover adds a conduction path to a ~33 °C
    reservoir; it warms a cold idle phone slightly and shaves a little off the
    peak of a hot one, but — as the paper observes — does not change the
    exterior temperature much while the phone is active, because the
    palm-to-cover conductance is small compared to the internal heat flow.

    Attributes:
        contact_node: the back-cover node the palm touches.
        conductance_w_per_c: palm-to-cover conductance while touching.
        touching: current contact state.
    """

    contact_node: str = "back_cover"
    conductance_w_per_c: float = 0.05
    touching: bool = False

    def apply(self, network: ThermalNetwork) -> None:
        """Set the hand coupling on an assembled network according to the state."""
        if HAND_NODE not in network.boundary_names:
            return
        value = self.conductance_w_per_c if self.touching else 0.0
        network.set_conductance(self.contact_node, HAND_NODE, value)

    def touch(self, network: ThermalNetwork) -> None:
        """Start touching the device."""
        self.touching = True
        self.apply(network)

    def release(self, network: ThermalNetwork) -> None:
        """Stop touching the device."""
        self.touching = False
        self.apply(network)
