"""Calibrated compact thermal model of the Google Nexus 4.

Node layout (side view, back of the phone at the bottom)::

        screen  ───────────────────────────────  (user-facing glass + LCD)
          │                │
        board ── cpu       battery               (PCB + frame; SoC die on PCB)
          │        │          │
        back_cover_upper   back_cover            (polycarbonate back; the paper's
          │                   │                   "skin" point is the middle of
        ambient / hand     ambient / hand          the back cover)

Capacitances reflect a ~140 g handset (total ≈ 175 J/°C); internal
conductances are large compared to the ~0.2 W/°C exterior film coefficient so
the whole phone warms together on a 10–20 minute time constant, matching the
paper's observation that a half-hour video call is enough to reach peak skin
temperature and that heavy benchmarks exceed every user's comfort limit.

Calibration targets (baseline ondemand governor, 23 °C ambient):

* sustained heavy load (Skype video call class, ≈4 W platform) → back-cover
  peak in the low 40s °C after 30 min, screen ~2–4 °C cooler;
* moderate load (AnTuTu CPU class, ≈3 W) → back cover high 30s °C;
* light load (YouTube playback, ≈2 W) → back cover ≈30 °C;
* idle/charging → low 30s °C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .ambient import AMBIENT_NODE, HAND_NODE, AmbientConditions
from .network import ThermalNetwork

__all__ = ["Nexus4ThermalParameters", "build_nexus4_network", "NEXUS4_NODES"]

# Node names used throughout the package.
CPU_NODE = "cpu"
BOARD_NODE = "board"
BATTERY_NODE = "battery"
BACK_COVER_NODE = "back_cover"
BACK_COVER_UPPER_NODE = "back_cover_upper"
SCREEN_NODE = "screen"

NEXUS4_NODES = (
    CPU_NODE,
    BOARD_NODE,
    BATTERY_NODE,
    BACK_COVER_NODE,
    BACK_COVER_UPPER_NODE,
    SCREEN_NODE,
)


@dataclass
class Nexus4ThermalParameters:
    """Capacitances (J/°C) and conductances (W/°C) of the Nexus 4 model.

    All values can be overridden to model a different handset or to run
    sensitivity studies; the defaults are the calibrated Nexus 4 values.
    """

    # Heat capacitances (J/°C)
    cpu_capacitance: float = 5.0
    board_capacitance: float = 32.0
    battery_capacitance: float = 55.0
    back_cover_capacitance: float = 16.0
    back_cover_upper_capacitance: float = 11.0
    screen_capacitance: float = 30.0

    # Internal conductances (W/°C).  The SoC and battery sit against the back
    # cover, so the back-side couplings are stronger than the screen-side ones
    # — this is what makes the skin (back cover) the hottest exterior surface,
    # as in the paper's measurements.
    cpu_board: float = 0.6
    board_battery: float = 0.55
    board_back_cover_upper: float = 0.36
    board_back_cover: float = 0.30
    battery_back_cover: float = 0.30
    board_screen: float = 0.13
    battery_screen: float = 0.06
    back_cover_upper_back_cover: float = 0.15

    # Exterior (film) conductances to ambient (W/°C)
    back_cover_ambient: float = 0.050
    back_cover_upper_ambient: float = 0.030
    screen_ambient: float = 0.100
    battery_ambient: float = 0.008
    board_ambient: float = 0.006

    # Hand contact (configured at run time through HandContact)
    hand_back_cover: float = 0.05

    # Environment
    ambient: AmbientConditions = field(default_factory=AmbientConditions)

    def initial_temperatures(self) -> Dict[str, float]:
        """All nodes start at ambient (a phone that has been sitting idle)."""
        return {name: self.ambient.air_temp_c for name in NEXUS4_NODES}


def build_nexus4_network(params: Nexus4ThermalParameters | None = None) -> ThermalNetwork:
    """Build and assemble the calibrated Nexus 4 thermal network.

    Args:
        params: optional parameter overrides; defaults to the calibrated model.

    Returns:
        An assembled :class:`ThermalNetwork` whose nodes are the entries of
        :data:`NEXUS4_NODES` plus the ``ambient`` and ``hand`` boundaries.
    """
    params = params or Nexus4ThermalParameters()
    initial = params.initial_temperatures()

    net = ThermalNetwork()
    net.add_node(CPU_NODE, params.cpu_capacitance, initial_temp_c=initial[CPU_NODE])
    net.add_node(BOARD_NODE, params.board_capacitance, initial_temp_c=initial[BOARD_NODE])
    net.add_node(BATTERY_NODE, params.battery_capacitance, initial_temp_c=initial[BATTERY_NODE])
    net.add_node(
        BACK_COVER_NODE, params.back_cover_capacitance, initial_temp_c=initial[BACK_COVER_NODE]
    )
    net.add_node(
        BACK_COVER_UPPER_NODE,
        params.back_cover_upper_capacitance,
        initial_temp_c=initial[BACK_COVER_UPPER_NODE],
    )
    net.add_node(SCREEN_NODE, params.screen_capacitance, initial_temp_c=initial[SCREEN_NODE])
    net.add_node(AMBIENT_NODE, boundary=True, initial_temp_c=params.ambient.air_temp_c)
    net.add_node(HAND_NODE, boundary=True, initial_temp_c=params.ambient.hand_temp_c)

    # Internal heat paths
    net.add_conductance(CPU_NODE, BOARD_NODE, params.cpu_board)
    net.add_conductance(BOARD_NODE, BATTERY_NODE, params.board_battery)
    net.add_conductance(BOARD_NODE, BACK_COVER_UPPER_NODE, params.board_back_cover_upper)
    net.add_conductance(BOARD_NODE, BACK_COVER_NODE, params.board_back_cover)
    net.add_conductance(BATTERY_NODE, BACK_COVER_NODE, params.battery_back_cover)
    net.add_conductance(BOARD_NODE, SCREEN_NODE, params.board_screen)
    net.add_conductance(BATTERY_NODE, SCREEN_NODE, params.battery_screen)
    net.add_conductance(BACK_COVER_UPPER_NODE, BACK_COVER_NODE, params.back_cover_upper_back_cover)

    # Exterior film conductances
    net.add_conductance(BACK_COVER_NODE, AMBIENT_NODE, params.back_cover_ambient)
    net.add_conductance(BACK_COVER_UPPER_NODE, AMBIENT_NODE, params.back_cover_upper_ambient)
    net.add_conductance(SCREEN_NODE, AMBIENT_NODE, params.screen_ambient)
    net.add_conductance(BATTERY_NODE, AMBIENT_NODE, params.battery_ambient)
    net.add_conductance(BOARD_NODE, AMBIENT_NODE, params.board_ambient)

    net.assemble()
    params.ambient.apply(net)
    return net
