"""Parser for ``dumpsys thermal``-style Android thermal HAL dumps.

A dump (SNIPPETS.md snippet 2; ``adb shell dumpsys thermal`` on a modern
Android device) interleaves service preamble with three payload sections::

    Thermal Status: 1
    Cached temperatures:
        Temperature{mValue=38.1, mType=0, mName=AP, mStatus=0}
        ...
    HAL Ready: true
    Current temperatures from HAL:
        Temperature{mValue=44.8, mType=0, mName=AP, mStatus=0}
        ...
    Temperature static thresholds from HAL:
        TemperatureThreshold{mType=3, mName=SKIN,
            mHotThrottlingThresholds=[36.0, 38.0, 40.0, 42.0, 45.0, NaN, NaN],
            mColdThrottlingThresholds=[NaN, NaN, NaN, NaN, NaN, NaN, NaN]}

Real captures are messy: dead channels report a placeholder ``0.0`` (SUBBAT,
USB), threshold ladders are ``NaN``-padded to seven severity slots, sensor
names vary by vendor, and a dump pulled mid-write can truncate an entry.
:func:`parse_thermal_dump` is therefore *tolerant*: complete entries parse
into typed records, unknown sensors are kept verbatim, and anything torn is
skipped with a note in :attr:`ThermalHalDump.warnings` instead of an error.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "SEVERITY_NAMES",
    "HalParseError",
    "HalTemperature",
    "ThresholdLadder",
    "ThermalHalDump",
    "parse_thermal_dump",
]

#: Android ``ThrottlingSeverity`` names; a ladder's slot index is the
#: severity entered when the sensor crosses that slot's threshold.
SEVERITY_NAMES = (
    "NONE",
    "LIGHT",
    "MODERATE",
    "SEVERE",
    "CRITICAL",
    "EMERGENCY",
    "SHUTDOWN",
)


class HalParseError(ValueError):
    """A dump is beyond salvage (empty, or not HAL-dump-shaped at all)."""


@dataclass(frozen=True)
class HalTemperature:
    """One ``Temperature{...}`` entry of a dump.

    Attributes:
        name: HAL sensor name (``SKIN``, ``AP``, ``BAT``, vendor-specific...).
        value_c: reported temperature; dead channels report exactly ``0.0``.
        sensor_type: Android ``TemperatureType`` ordinal (``mType``), when
            present.
        status: ``ThrottlingSeverity`` ordinal the service attributed to the
            reading (``mStatus``), 0 = NONE.
    """

    name: str
    value_c: float
    sensor_type: Optional[int] = None
    status: int = 0

    @property
    def is_placeholder(self) -> bool:
        """True for the exact-``0.0`` reading dead HAL channels report."""
        return self.value_c == 0.0

    @property
    def is_usable(self) -> bool:
        """Finite and not the dead-channel placeholder."""
        return math.isfinite(self.value_c) and not self.is_placeholder


@dataclass(frozen=True)
class ThresholdLadder:
    """One sensor's ``TemperatureThreshold{...}`` hot-throttling ladder.

    The HAL pads ladders to seven severity slots with ``NaN``; only the
    finite slots are trip points (snippet 2's SKIN ladder trips at
    [36, 38, 40, 42, 45] °C, BAT only at severities 5 and 6).
    """

    name: str
    hot_thresholds_c: Tuple[float, ...]
    cold_thresholds_c: Tuple[float, ...] = ()
    sensor_type: Optional[int] = None

    def finite_trips(self) -> Tuple[Tuple[int, float], ...]:
        """The real trip points as (severity-slot, threshold °C) pairs."""
        return tuple(
            (slot, value)
            for slot, value in enumerate(self.hot_thresholds_c)
            if math.isfinite(value)
        )

    @property
    def n_trips(self) -> int:
        """Number of finite hot trip points (0 for an all-NaN ladder)."""
        return len(self.finite_trips())

    @property
    def top_trip_c(self) -> Optional[float]:
        """The hottest finite trip point, or ``None`` for an all-NaN ladder."""
        trips = self.finite_trips()
        return trips[-1][1] if trips else None

    def severity_for(self, temp_c: float) -> int:
        """How many trip points ``temp_c`` has crossed (0 = below them all).

        Note this counts *crossed trips*, not the Android severity-slot
        ordinal: a ladder whose only finite slots are 5 and 6 (snippet 2's
        BAT) reports severity 1 after the first crossing.  For throttling
        that is the quantity that matters — each crossed trip is one more
        escalation step.
        """
        if not math.isfinite(temp_c):
            raise ValueError(
                f"severity of ladder {self.name!r} needs a finite temperature, "
                f"got {temp_c!r}"
            )
        return sum(1 for _, value in self.finite_trips() if temp_c >= value)

    def shifted(self, delta_c: float) -> "ThresholdLadder":
        """The same ladder with every finite trip moved by ``delta_c`` °C.

        NaN padding stays in place, so the severity-slot structure (and
        therefore trip spacing) is preserved — this is how the paper's
        per-user comfort limits map onto ladder positions.
        """
        if not math.isfinite(delta_c):
            raise ValueError(f"ladder shift must be finite, got {delta_c!r}")
        return ThresholdLadder(
            name=self.name,
            hot_thresholds_c=tuple(
                value + delta_c if math.isfinite(value) else value
                for value in self.hot_thresholds_c
            ),
            cold_thresholds_c=self.cold_thresholds_c,
            sensor_type=self.sensor_type,
        )


@dataclass(frozen=True)
class ThermalHalDump:
    """One parsed dump: cached + current temperature blocks and the ladders."""

    cached: Tuple[HalTemperature, ...] = ()
    current: Tuple[HalTemperature, ...] = ()
    thresholds: Tuple[ThresholdLadder, ...] = ()
    thermal_status: Optional[int] = None
    hal_ready: Optional[bool] = None
    #: Notes about entries the parser had to skip (truncated/torn lines).
    warnings: Tuple[str, ...] = ()

    @property
    def temperatures(self) -> Dict[str, HalTemperature]:
        """Best reading per sensor name.

        A fresh ``Current temperatures from HAL`` entry supersedes the
        service's cached copy; within a block, the last entry for a repeated
        name wins (matching how the service itself overwrites its cache).
        """
        merged: Dict[str, HalTemperature] = {}
        for entry in self.cached:
            merged[entry.name] = entry
        for entry in self.current:
            merged[entry.name] = entry
        return merged

    def threshold_for(self, name: str) -> Optional[ThresholdLadder]:
        """The ladder for one sensor name, or ``None``."""
        for ladder in self.thresholds:
            if ladder.name == name:
                return ladder
        return None

    @property
    def is_empty(self) -> bool:
        """True when the dump yielded no readings and no ladders."""
        return not (self.cached or self.current or self.thresholds)


_TEMPERATURE_RE = re.compile(r"Temperature\{([^{}]*)\}")
_THRESHOLD_RE = re.compile(r"TemperatureThreshold\{(.*)\}")
_LIST_RE = re.compile(r"(\w+)=\[([^\]]*)\]")
_FIELD_RE = re.compile(r"(\w+)=([^,\[\]{}]+)")

# Section headers → which block subsequent Temperature{} entries land in.
_SECTION_HEADERS = (
    ("cached temperatures", "cached"),
    ("current temperatures", "current"),
    ("temperature static thresholds", "thresholds"),
    ("current cooling devices", "other"),
)


def _parse_float(text: str) -> float:
    # The HAL prints Java floats: plain decimals plus "NaN"/"Infinity".
    text = text.strip()
    lowered = text.lower()
    if lowered == "nan":
        return math.nan
    if lowered in ("infinity", "inf"):
        return math.inf
    if lowered in ("-infinity", "-inf"):
        return -math.inf
    return float(text)


def _parse_fields(body: str) -> Dict[str, str]:
    return {match.group(1): match.group(2).strip() for match in _FIELD_RE.finditer(body)}


def _parse_temperature(body: str) -> HalTemperature:
    fields = _parse_fields(body)
    if "mName" not in fields or "mValue" not in fields:
        raise ValueError(f"entry is missing mName/mValue: {body!r}")
    sensor_type = fields.get("mType")
    status = fields.get("mStatus")
    return HalTemperature(
        name=fields["mName"],
        value_c=_parse_float(fields["mValue"]),
        sensor_type=int(sensor_type) if sensor_type is not None else None,
        status=int(status) if status is not None else 0,
    )


def _parse_threshold(body: str) -> ThresholdLadder:
    lists = {match.group(1): match.group(2) for match in _LIST_RE.finditer(body)}
    fields = _parse_fields(_LIST_RE.sub("", body))
    if "mName" not in fields or "mHotThrottlingThresholds" not in lists:
        raise ValueError(f"ladder is missing mName/mHotThrottlingThresholds: {body!r}")

    def values(text: str) -> Tuple[float, ...]:
        return tuple(_parse_float(item) for item in text.split(",") if item.strip())

    sensor_type = fields.get("mType")
    return ThresholdLadder(
        name=fields["mName"],
        hot_thresholds_c=values(lists["mHotThrottlingThresholds"]),
        cold_thresholds_c=values(lists.get("mColdThrottlingThresholds", "")),
        sensor_type=int(sensor_type) if sensor_type is not None else None,
    )


def parse_thermal_dump(text: str) -> ThermalHalDump:
    """Parse one ``dumpsys thermal`` capture into a :class:`ThermalHalDump`.

    Tolerant by design: every complete ``Temperature{...}`` /
    ``TemperatureThreshold{...}`` entry is kept (unknown sensor names
    included), torn entries — e.g. a capture truncated mid-``Temperature{`` —
    are skipped with a note in :attr:`ThermalHalDump.warnings`.

    Raises:
        HalParseError: only when the text is empty/blank — a whole-file
            failure, not a bad entry.
    """
    if not text or not text.strip():
        raise HalParseError("empty thermal HAL dump")

    cached: List[HalTemperature] = []
    current: List[HalTemperature] = []
    thresholds: List[ThresholdLadder] = []
    warnings: List[str] = []
    thermal_status: Optional[int] = None
    hal_ready: Optional[bool] = None
    # Entries before any section header are treated as current readings —
    # the friendliest reading of a hand-trimmed capture.
    section = "current"

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        lowered = line.lower()
        for prefix, name in _SECTION_HEADERS:
            if lowered.startswith(prefix):
                section = name
                break
        if lowered.startswith("thermal status:"):
            try:
                thermal_status = int(line.split(":", 1)[1])
            except ValueError:
                warnings.append(f"line {line_no}: unreadable thermal status {line!r}")
            continue
        if lowered.startswith("hal ready:"):
            hal_ready = line.split(":", 1)[1].strip().lower() == "true"
            continue

        if "TemperatureThreshold{" in line:
            match = _THRESHOLD_RE.search(line)
            if match is None:
                warnings.append(f"line {line_no}: truncated TemperatureThreshold entry")
                continue
            try:
                thresholds.append(_parse_threshold(match.group(1)))
            except ValueError as exc:
                warnings.append(f"line {line_no}: {exc}")
            continue
        if "Temperature{" in line:
            match = _TEMPERATURE_RE.search(line)
            if match is None:
                warnings.append(f"line {line_no}: truncated Temperature entry")
                continue
            try:
                entry = _parse_temperature(match.group(1))
            except ValueError as exc:
                warnings.append(f"line {line_no}: {exc}")
                continue
            (cached if section == "cached" else current).append(entry)

    return ThermalHalDump(
        cached=tuple(cached),
        current=tuple(current),
        thresholds=tuple(thresholds),
        thermal_status=thermal_status,
        hal_ready=hal_ready,
        warnings=tuple(warnings),
    )
