"""The stock trip-point throttler encoded by HAL threshold ladders.

This is the baseline USTA is measured against on real traces: no predictor,
no per-user comfort model — just the device's ``TemperatureThreshold`` ladder
(:class:`~repro.telemetry.hal.ThresholdLadder`).  Each trip point the sensor
crosses escalates the throttle by ``levels_per_trip`` frequency levels;
crossing the last trip clamps to the minimum level (the HAL's
CRITICAL/SHUTDOWN behaviour, minus the shutdown).

Registered as thermal manager ``"trip-point"``, so it drops into policy
specs declaratively::

    {"governor": "ondemand",
     "manager": {"name": "trip-point",
                 "params": {"hot_thresholds_c": [36, 38, 40, 42, 45]}}}

Unlike every other registered manager it needs no predictor
(``requires_predictor = False``): it reads the sensor directly, exactly like
the in-kernel throttler it models.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

from ..api.registry import register_manager
from ..device.freq_table import FrequencyTable, nexus4_frequency_table
from ..sim.engine import ManagerDecision
from .hal import ThresholdLadder

__all__ = ["DEFAULT_SKIN_TRIPS_C", "TripPointManager"]

#: Snippet 2's stock SKIN ladder — what an unconfigured device ships.
DEFAULT_SKIN_TRIPS_C = (36.0, 38.0, 40.0, 42.0, 45.0)


@register_manager("trip-point")
class TripPointManager:
    """Severity-ladder frequency throttler (the HAL's stock policy).

    Args:
        predictor: accepted (and ignored) for registry-call uniformity —
            trip-point throttling needs no model.
        hot_thresholds_c: the ladder's hot trip points, ascending; ``None``
            or NaN entries are severity-slot padding, exactly as the HAL
            prints them.  Defaults to :data:`DEFAULT_SKIN_TRIPS_C`.  An
            all-NaN ladder is legal and never throttles (dumps show such
            ladders for sensors the vendor left unconfigured).
        sensor: telemetry channel the ladder watches (``"skin"``).
        levels_per_trip: frequency levels shed per crossed trip point.
        table: platform frequency table.
        ladder_name: label for the ladder (error text, introspection).
    """

    name = "trip-point"
    #: ManagerSpec.build contract: no predictor required (or used).
    requires_predictor = False

    def __init__(
        self,
        predictor=None,
        hot_thresholds_c: Optional[Sequence[Optional[float]]] = None,
        sensor: str = "skin",
        levels_per_trip: int = 2,
        table: Optional[FrequencyTable] = None,
        ladder_name: str = "SKIN",
    ):
        if hot_thresholds_c is None:
            hot_thresholds_c = DEFAULT_SKIN_TRIPS_C
        thresholds = tuple(
            math.nan if value is None else float(value) for value in hot_thresholds_c
        )
        finite = [value for value in thresholds if math.isfinite(value)]
        if any(b <= a for a, b in zip(finite, finite[1:])):
            raise ValueError(
                f"trip points must be strictly ascending, got {finite}"
            )
        if levels_per_trip < 1:
            raise ValueError("levels_per_trip must be at least 1")
        if not sensor:
            raise ValueError("sensor channel must be a non-empty string")
        self.ladder = ThresholdLadder(name=ladder_name, hot_thresholds_c=thresholds)
        self.sensor = sensor
        self.levels_per_trip = int(levels_per_trip)
        self.table = table if table is not None else nexus4_frequency_table()
        self._current_severity = 0

    @classmethod
    def from_ladder(cls, ladder: ThresholdLadder, **kwargs) -> "TripPointManager":
        """Build the throttler a parsed dump's ladder encodes."""
        kwargs.setdefault("ladder_name", ladder.name)
        return cls(hot_thresholds_c=ladder.hot_thresholds_c, **kwargs)

    # -- introspection ----------------------------------------------------------

    @property
    def current_severity(self) -> int:
        """Crossed-trip count of the last observation (0 before any feed)."""
        return self._current_severity

    def cap_for_temperature(self, temp_c: float) -> Optional[int]:
        """The level cap the ladder dictates at one sensor temperature."""
        severity = self.ladder.severity_for(temp_c)
        if severity == 0:
            return None
        if severity >= self.ladder.n_trips:
            return self.table.min_level
        return self.table.clamp_level(
            self.table.max_level - self.levels_per_trip * severity
        )

    # -- ThermalManager protocol ------------------------------------------------

    def observe(
        self,
        time_s: float,
        sensor_readings: Mapping[str, float],
        utilization: float,
        frequency_khz: float,
    ) -> ManagerDecision:
        """Compare the watched sensor against the ladder; no state, no model."""
        try:
            reading = sensor_readings[self.sensor]
        except KeyError:
            available = ", ".join(sorted(sensor_readings)) or "none"
            raise ValueError(
                f"trip-point ladder {self.ladder.name!r} watches channel "
                f"{self.sensor!r}, which the telemetry does not carry "
                f"(channels: {available})"
            ) from None
        if not math.isfinite(reading):
            raise ValueError(
                f"trip-point ladder {self.ladder.name!r} got a non-finite "
                f"{self.sensor!r} reading ({reading!r}) at t={time_s}s"
            )
        self._current_severity = self.ladder.severity_for(reading)
        return ManagerDecision(level_cap=self.cap_for_temperature(reading))

    def reset(self) -> None:
        """Trip-point throttling is stateless; only the severity echo clears."""
        self._current_severity = 0
