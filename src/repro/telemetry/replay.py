"""Replay recorded thermal HAL dumps as online telemetry.

The bridge from :mod:`repro.telemetry.hal` to the session wire format: HAL
sensor names map onto the predictor's channels (``SKIN→skin``, ``AP→cpu``,
``BAT→battery``), placeholder ``0.0`` readings from dead channels are
dropped, and gaps in a channel are linearly interpolated across the trace —
so the resulting :class:`~repro.api.types.TelemetrySample` stream is clean
enough for :class:`~repro.api.session.PolicySession` / ``repro serve``, which
(deliberately) reject non-finite readings at the wire.

Two capture layouts load through :func:`load_hal_trace`:

* a directory of ``*.txt`` dumps, one ``dumpsys thermal`` capture per file;
  a trailing number in the file name is its timestamp in seconds
  (``dump_0012.txt`` → t=12 s), otherwise files are spaced
  ``sample_period_s`` apart in sorted order;
* a ``.jsonl`` trace log, one object per line:
  ``{"time_s": 12.0, "utilization": 0.8, "frequency_khz": 1512000,
  "dump": "<raw dumpsys text>"}`` (or ``"sensors": {"SKIN": 39.5, ...}``
  with already-extracted readings).

HAL dumps carry no CPU utilization or frequency, so directory traces take
constant defaults (documented below) unless the JSONL layout supplies them.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..api.types import TelemetrySample
from .hal import HalTemperature, ThermalHalDump, ThresholdLadder, parse_thermal_dump

__all__ = [
    "HAL_CHANNEL_MAP",
    "REQUIRED_CHANNELS",
    "DEFAULT_UTILIZATION",
    "DEFAULT_FREQUENCY_KHZ",
    "HalReplayError",
    "HalTraceStep",
    "load_hal_trace",
    "hal_telemetry",
    "load_hal_telemetry",
    "trace_thresholds",
    "describe_hal_trace",
]

#: HAL sensor name → predictor channel.  Names not listed here map to their
#: lowercased form (``PA`` → ``pa``) and ride along as extra channels.
HAL_CHANNEL_MAP: Dict[str, str] = {
    "SKIN": "skin",
    "AP": "cpu",
    "BAT": "battery",
    "SCREEN": "screen",
}

#: Channels the USTA predictor cannot run without.
REQUIRED_CHANNELS: Tuple[str, ...] = ("cpu", "battery")

#: CPU-state defaults for dump-directory traces (HAL dumps carry neither):
#: a busy foreground workload at the Nexus 4 top frequency.
DEFAULT_UTILIZATION = 0.8
DEFAULT_FREQUENCY_KHZ = 1_512_000.0

_TRAILING_NUMBER_RE = re.compile(r"(\d+(?:\.\d+)?)$")


class HalReplayError(ValueError):
    """A recorded trace cannot be replayed (missing channels, no dumps...)."""


@dataclass(frozen=True)
class HalTraceStep:
    """One timestamped capture of a recorded trace.

    Attributes:
        time_s: capture timestamp.
        dump: the parsed HAL dump, when the step carried raw dump text.
        sensors: raw HAL-name → °C readings (extracted from ``dump`` or
            supplied directly by a JSONL line).
        utilization / frequency_khz: CPU state at the capture (defaults for
            dump-directory traces, which record neither).
        source: file (or ``file:line``) the step came from, for error text.
    """

    time_s: float
    sensors: Mapping[str, float] = field(default_factory=dict)
    dump: Optional[ThermalHalDump] = None
    utilization: float = DEFAULT_UTILIZATION
    frequency_khz: float = DEFAULT_FREQUENCY_KHZ
    source: str = "?"


def _usable_sensors(dump: ThermalHalDump) -> Dict[str, float]:
    """Best per-sensor readings of a dump, placeholders and NaN dropped."""
    return {
        name: entry.value_c
        for name, entry in dump.temperatures.items()
        if entry.is_usable
    }


def _step_from_dump(
    text: str, time_s: float, source: str, utilization: float, frequency_khz: float
) -> HalTraceStep:
    dump = parse_thermal_dump(text)
    return HalTraceStep(
        time_s=time_s,
        sensors=_usable_sensors(dump),
        dump=dump,
        utilization=utilization,
        frequency_khz=frequency_khz,
        source=source,
    )


def _load_dump_directory(
    directory: Path,
    sample_period_s: float,
    utilization: float,
    frequency_khz: float,
) -> List[HalTraceStep]:
    files = sorted(directory.glob("*.txt"))
    if not files:
        raise HalReplayError(f"no *.txt HAL dumps in {directory}")
    stamped: List[Tuple[float, Path]] = []
    matched = 0
    for index, path in enumerate(files):
        match = _TRAILING_NUMBER_RE.search(path.stem)
        if match is not None:
            stamped.append((float(match.group(1)), path))
            matched += 1
        else:
            stamped.append((index * sample_period_s, path))
    if matched != len(files):
        # Mixed or absent numbering: fall back to uniform spacing for all.
        stamped = [(index * sample_period_s, path) for index, path in enumerate(files)]
    stamped.sort(key=lambda item: (item[0], item[1].name))
    return [
        _step_from_dump(
            path.read_text(encoding="utf-8"),
            time_s=time_s,
            source=path.name,
            utilization=utilization,
            frequency_khz=frequency_khz,
        )
        for time_s, path in stamped
    ]


def _load_jsonl(
    path: Path,
    sample_period_s: float,
    utilization: float,
    frequency_khz: float,
) -> List[HalTraceStep]:
    steps: List[HalTraceStep] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            source = f"{path.name}:{line_no}"
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise HalReplayError(f"{source}: invalid JSON: {exc}") from exc
            if not isinstance(record, Mapping):
                raise HalReplayError(f"{source}: expected an object per line")
            time_s = float(record.get("time_s", len(steps) * sample_period_s))
            step_util = float(record.get("utilization", utilization))
            step_freq = float(record.get("frequency_khz", frequency_khz))
            if "dump" in record:
                steps.append(
                    _step_from_dump(
                        record["dump"], time_s, source, step_util, step_freq
                    )
                )
            elif "sensors" in record:
                sensors = {
                    str(name): float(value)
                    for name, value in record["sensors"].items()
                }
                steps.append(
                    HalTraceStep(
                        time_s=time_s,
                        sensors={
                            name: value
                            for name, value in sensors.items()
                            if math.isfinite(value) and value != 0.0
                        },
                        utilization=step_util,
                        frequency_khz=step_freq,
                        source=source,
                    )
                )
            else:
                raise HalReplayError(
                    f"{source}: a trace line needs 'dump' (raw dumpsys text) "
                    "or 'sensors' (name -> °C readings)"
                )
    if not steps:
        raise HalReplayError(f"no trace lines in {path}")
    return steps


def load_hal_trace(
    path,
    sample_period_s: float = 1.0,
    utilization: float = DEFAULT_UTILIZATION,
    frequency_khz: float = DEFAULT_FREQUENCY_KHZ,
) -> List[HalTraceStep]:
    """Load a recorded HAL trace (dump directory or ``.jsonl`` log).

    Steps come back sorted by time.  See the module docstring for the two
    layouts and the CPU-state defaults.
    """
    path = Path(path)
    if path.is_dir():
        steps = _load_dump_directory(path, sample_period_s, utilization, frequency_khz)
    elif path.is_file():
        steps = _load_jsonl(path, sample_period_s, utilization, frequency_khz)
    else:
        raise HalReplayError(f"no HAL trace at {path}")
    return sorted(steps, key=lambda step: step.time_s)


def _channel_name(hal_name: str) -> str:
    return HAL_CHANNEL_MAP.get(hal_name, hal_name.lower())


def _interpolate_column(
    times: Sequence[float], values: List[float]
) -> List[float]:
    """Fill NaN holes by linear interpolation over time (edges extend)."""
    known = [(t, v) for t, v in zip(times, values) if math.isfinite(v)]
    if not known:
        return values
    filled: List[float] = []
    for t, v in zip(times, values):
        if math.isfinite(v):
            filled.append(v)
            continue
        before = [(kt, kv) for kt, kv in known if kt <= t]
        after = [(kt, kv) for kt, kv in known if kt >= t]
        if before and after:
            (t0, v0), (t1, v1) = before[-1], after[0]
            if t1 == t0:
                filled.append(v0)
            else:
                filled.append(v0 + (v1 - v0) * (t - t0) / (t1 - t0))
        elif before:
            filled.append(before[-1][1])
        else:
            filled.append(after[0][1])
    return filled


def hal_telemetry(
    steps: Sequence[HalTraceStep], interpolate: bool = True
) -> List[TelemetrySample]:
    """Adapt trace steps onto the session wire format.

    HAL names map through :data:`HAL_CHANNEL_MAP` (unknown names keep their
    lowercased form).  With ``interpolate`` (the default), a channel that is
    missing from some steps — a dead placeholder in one dump, alive in the
    next — is filled by linear interpolation over time, because the wire
    types reject non-finite readings by design.  A required channel
    (:data:`REQUIRED_CHANNELS`) that never reports a usable value raises
    :class:`HalReplayError` naming the channel.
    """
    if not steps:
        raise HalReplayError("empty HAL trace: nothing to replay")
    times = [step.time_s for step in steps]
    columns: Dict[str, List[float]] = {}
    for index, step in enumerate(steps):
        for hal_name, value in step.sensors.items():
            channel = _channel_name(hal_name)
            column = columns.setdefault(channel, [math.nan] * len(steps))
            column[index] = value

    for channel in REQUIRED_CHANNELS:
        if channel not in columns:
            hal_names = sorted(
                name for name in HAL_CHANNEL_MAP if HAL_CHANNEL_MAP[name] == channel
            )
            raise HalReplayError(
                f"recorded trace never reports channel {channel!r} "
                f"(HAL sensor {'/'.join(hal_names)}); the predictor cannot "
                f"run without it — sensors seen: "
                f"{sorted(set().union(*(s.sensors for s in steps))) or 'none'}"
            )

    samples: List[TelemetrySample] = []
    for channel, column in columns.items():
        if interpolate:
            columns[channel] = _interpolate_column(times, column)
        elif any(not math.isfinite(v) for v in column):
            holes = sum(1 for v in column if not math.isfinite(v))
            raise HalReplayError(
                f"channel {channel!r} has {holes} missing reading(s) and "
                "interpolation is off; pass interpolate=True or repair the trace"
            )
    for index, step in enumerate(steps):
        samples.append(
            TelemetrySample(
                time_s=step.time_s,
                utilization=step.utilization,
                frequency_khz=step.frequency_khz,
                sensor_readings={
                    channel: column[index] for channel, column in columns.items()
                },
            )
        )
    return samples


def load_hal_telemetry(path, **kwargs) -> List[TelemetrySample]:
    """``hal_telemetry(load_hal_trace(path))`` in one call.

    Keyword arguments split between the two: ``interpolate`` goes to
    :func:`hal_telemetry`, the rest to :func:`load_hal_trace`.
    """
    interpolate = kwargs.pop("interpolate", True)
    return hal_telemetry(load_hal_trace(path, **kwargs), interpolate=interpolate)


def trace_thresholds(steps: Sequence[HalTraceStep]) -> Dict[str, ThresholdLadder]:
    """The threshold ladders a trace carries (first dump that reports each)."""
    ladders: Dict[str, ThresholdLadder] = {}
    for step in steps:
        if step.dump is None:
            continue
        for ladder in step.dump.thresholds:
            ladders.setdefault(ladder.name, ladder)
    return ladders


def describe_hal_trace(steps: Sequence[HalTraceStep]) -> str:
    """Human-readable summary of a loaded trace (the ``replay-hal`` header)."""
    if not steps:
        return "empty HAL trace"
    ranges: Dict[str, Tuple[float, float]] = {}
    for step in steps:
        for hal_name, value in step.sensors.items():
            low, high = ranges.get(hal_name, (value, value))
            ranges[hal_name] = (min(low, value), max(high, value))
    duration = steps[-1].time_s - steps[0].time_s
    lines = [
        f"{len(steps)} capture(s) spanning {duration:.1f}s "
        f"(t={steps[0].time_s:.1f}s .. {steps[-1].time_s:.1f}s)",
        f"{'sensor':>8} {'channel':>8} {'min °C':>8} {'max °C':>8}",
    ]
    for hal_name in sorted(ranges):
        low, high = ranges[hal_name]
        lines.append(
            f"{hal_name:>8} {_channel_name(hal_name):>8} {low:>8.1f} {high:>8.1f}"
        )
    ladders = trace_thresholds(steps)
    for name in sorted(ladders):
        trips = ", ".join(f"{value:.1f}" for _, value in ladders[name].finite_trips())
        lines.append(f"ladder {name}: trips at [{trips}] °C")
    warned = sum(len(step.dump.warnings) for step in steps if step.dump is not None)
    if warned:
        lines.append(f"({warned} torn entr(ies) skipped during parsing)")
    return "\n".join(lines)
