"""HAL-replay smoke: parse the committed dump fixture and replay it end to end.

What ``make hal-smoke`` (and CI via ``make check``) executes::

    python -m repro.telemetry.smoke

The scenario, end to end:

1. parse ``tests/data/hal_dumps/`` (six anonymized ``dumpsys thermal``
   captures, one deliberately torn) and check the parser's merge,
   placeholder and interpolation behaviour against known values;
2. run ``repro-usta serve --hal-trace`` in-process with the committed
   trip-point example policy and require every session to cap (the trace
   crosses the stock 36 °C SKIN trip);
3. run ``repro-usta hal-compare --hal-trace`` in-process and require the
   USTA-vs-trip-point report to score all three schemes.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import math
import sys
from pathlib import Path

from .replay import hal_telemetry, load_hal_trace, trace_thresholds

#: Repo-root-relative locations of the committed fixtures.
_ROOT = Path(__file__).resolve().parents[3]
DUMP_DIR = _ROOT / "tests" / "data" / "hal_dumps"
TRIP_POLICY = _ROOT / "examples" / "trip_point_policy.json"


def check_fixture(failures: list) -> None:
    """Direct-parse assertions on the committed dump directory."""
    steps = load_hal_trace(DUMP_DIR)
    if len(steps) != 6:
        failures.append(f"expected 6 captures in {DUMP_DIR}, parsed {len(steps)}")
        return
    times = [step.time_s for step in steps]
    if times != [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]:
        failures.append(f"filename timestamps misparsed: {times}")

    # dump_0020 drops SKIN from the current block: the cached reading must win.
    skin_20 = steps[2].sensors.get("SKIN")
    if skin_20 != 38.3:
        failures.append(f"cached-SKIN fallback broken: got {skin_20!r}, want 38.3")
    # dump_0030 reports the SKIN placeholder 0.0 in both blocks: the channel
    # must be *absent* that step (interpolated later), never a literal 0.0.
    if "SKIN" in steps[3].sensors:
        failures.append("placeholder 0.0 SKIN reading leaked into step sensors")
    # dump_0050 carries a torn USB Temperature line: a warning, not an error.
    if not any("truncated" in w for w in steps[5].dump.warnings):
        failures.append("torn Temperature entry did not produce a parser warning")

    ladders = trace_thresholds(steps)
    skin_ladder = ladders.get("SKIN")
    if skin_ladder is None or skin_ladder.n_trips != 5:
        failures.append(f"SKIN threshold ladder misparsed: {skin_ladder!r}")

    telemetry = hal_telemetry(steps)
    if len(telemetry) != 6:
        failures.append(f"replay produced {len(telemetry)} samples, want 6")
        return
    # The t=30 hole sits between 38.3 (t=20) and 41.8 (t=40) -> 40.05.
    skin_30 = telemetry[3].sensor_readings["skin"]
    if not math.isclose(skin_30, 40.05, abs_tol=1e-9):
        failures.append(f"interpolated SKIN at t=30 is {skin_30}, want 40.05")
    if any(
        not math.isfinite(v)
        for sample in telemetry
        for v in sample.sensor_readings.values()
    ):
        failures.append("non-finite reading survived into wire telemetry")
    print(
        f"hal-smoke: parsed {len(steps)} captures "
        f"({sum(len(s.dump.warnings) for s in steps)} warning(s)), "
        f"interpolated SKIN@30s={skin_30:.2f}°C"
    )


def run_cli(argv: list) -> str:
    """Run the repro CLI in-process, returning its stdout (raises on failure)."""
    from repro.cli import main as cli_main

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = cli_main(argv)
    if code != 0:
        raise RuntimeError(f"repro-usta {argv} exited {code}")
    return buffer.getvalue()


def check_replay_serve(failures: list) -> None:
    """``serve --hal-trace`` with the trip-point example policy."""
    output = run_cli(
        [
            "serve",
            "--hal-trace",
            str(DUMP_DIR),
            "--policy",
            str(TRIP_POLICY),
            "--sessions",
            "24",
            "--smoke",
            "--scale",
            "0.02",
            "--model",
            "linear_regression",
        ]
    )
    # The trace crosses the stock 36 °C trip, so every session must cap.
    if "sessions ever capped: 24/24" not in output:
        failures.append(f"serve --hal-trace did not cap all sessions:\n{output}")
    else:
        print("hal-smoke: serve --hal-trace capped 24/24 trip-point sessions")


def check_hal_compare(failures: list) -> None:
    """``hal-compare --hal-trace``: all three schemes scored for every user."""
    output = run_cli(
        [
            "hal-compare",
            "--hal-trace",
            str(DUMP_DIR),
            "--smoke",
            "--scale",
            "0.02",
            "--model",
            "linear_regression",
        ]
    )
    missing = [s for s in ("trip-stock", "trip-user", "usta") if s not in output]
    if missing:
        failures.append(f"hal-compare output is missing scheme(s) {missing}")
    else:
        print("hal-smoke: hal-compare scored trip-stock/trip-user/usta")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)

    failures: list = []
    check_fixture(failures)
    if not failures:
        check_replay_serve(failures)
        check_hal_compare(failures)

    if failures:
        for failure in failures:
            print(f"hal-smoke: FAIL - {failure}")
        return 1
    print("hal-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
