"""Real-device telemetry ingestion (Android thermal HAL).

Everything this system had ever served was synthetic telemetry replayed from
the simulator.  This package is the production-facing interface: it parses
``dumpsys thermal``-style HAL dumps (:mod:`repro.telemetry.hal`), adapts them
onto the session wire format so recorded device logs replay through
:class:`~repro.api.session.PolicySession` / ``repro serve``
(:mod:`repro.telemetry.replay`), and registers the stock trip-point throttler
those dumps' threshold ladders encode (:mod:`repro.telemetry.trip`) — the
baseline USTA is compared against on real traces.
"""

from .hal import (
    HalParseError,
    HalTemperature,
    ThermalHalDump,
    ThresholdLadder,
    parse_thermal_dump,
)
from .replay import (
    HAL_CHANNEL_MAP,
    HalReplayError,
    HalTraceStep,
    describe_hal_trace,
    hal_telemetry,
    load_hal_telemetry,
    load_hal_trace,
    trace_thresholds,
)
from .trip import DEFAULT_SKIN_TRIPS_C, TripPointManager

__all__ = [
    "HalParseError",
    "HalTemperature",
    "ThermalHalDump",
    "ThresholdLadder",
    "parse_thermal_dump",
    "HAL_CHANNEL_MAP",
    "HalReplayError",
    "HalTraceStep",
    "describe_hal_trace",
    "hal_telemetry",
    "load_hal_telemetry",
    "load_hal_trace",
    "trace_thresholds",
    "DEFAULT_SKIN_TRIPS_C",
    "TripPointManager",
]
