"""End-to-end construction of the predictor and the USTA controller.

This module reproduces the paper's offline framework (§III.A):

1. run the benchmark suite on the (simulated) instrumented device under the
   baseline ondemand governor while the logging application records CPU
   temperature, battery temperature, utilization and frequency alongside the
   thermistor ground truth (:func:`collect_training_data`);
2. pool all benchmarks into one global dataset and evaluate the four candidate
   learners with 10-fold cross-validation (:func:`evaluate_prediction_models`
   — this is Figure 3);
3. train the chosen learner on the full dataset and wrap it into a
   :class:`~repro.core.predictor.RuntimePredictor`
   (:func:`train_runtime_predictor`);
4. configure a :class:`~repro.core.usta.USTAController` with a comfort limit
   (:func:`build_usta_controller`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..device.platform import DevicePlatform
from ..ml.base import Regressor, create_model
from ..ml.crossval import CrossValidationResult, cross_validate
from ..ml.dataset import Dataset
from ..ml.linear import LinearRegression
from ..ml.m5p import M5ModelTree
from ..ml.mlp import MultilayerPerceptron
from ..ml.reptree import RepTree
from ..sim.logger import SCREEN_TARGET, SKIN_TARGET, SystemLogger
from ..users.population import ThermalComfortProfile
from ..workloads.benchmarks import BENCHMARK_NAMES, build_benchmark
from .predictor import RuntimePredictor
from .usta import USTAController

__all__ = [
    "PAPER_MODEL_NAMES",
    "TrainingData",
    "collect_training_data",
    "evaluate_prediction_models",
    "train_runtime_predictor",
    "build_usta_controller",
    "default_model_factories",
]

#: The four WEKA algorithms the paper compares (Figure 3), by registry name.
PAPER_MODEL_NAMES: Tuple[str, ...] = (
    "linear_regression",
    "multilayer_perceptron",
    "m5p",
    "reptree",
)


def default_model_factories(seed: int = 0) -> Dict[str, Callable[[], Regressor]]:
    """Factories for the four paper models with sensible default hyper-parameters."""
    return {
        "linear_regression": lambda: LinearRegression(),
        "multilayer_perceptron": lambda: MultilayerPerceptron(
            hidden_sizes=(12,), epochs=120, learning_rate=0.02, seed=seed
        ),
        "m5p": lambda: M5ModelTree(min_leaf=8),
        "reptree": lambda: RepTree(min_leaf=5, seed=seed),
    }


@dataclass
class TrainingData:
    """The pooled, global training set built from all benchmarks."""

    logger: SystemLogger
    benchmarks: Tuple[str, ...]

    @property
    def num_records(self) -> int:
        """Number of logged samples."""
        return len(self.logger)

    def skin_dataset(self) -> Dataset:
        """Features + skin-temperature target."""
        return self.logger.to_dataset(SKIN_TARGET)

    def screen_dataset(self) -> Dataset:
        """Features + screen-temperature target."""
        return self.logger.to_dataset(SCREEN_TARGET)


def collect_training_data(
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 0,
    log_period_s: float = 3.0,
    duration_scale: float = 1.0,
    platform_factory: Optional[Callable[[], DevicePlatform]] = None,
    jobs: Optional[int] = None,
    runner: Optional["BatchRunner"] = None,
) -> TrainingData:
    """Run the benchmark suite under the baseline governor and log predictor data.

    The benchmark runs are declared as one
    :class:`~repro.runtime.plan.ExperimentPlan` (one logging cell per
    benchmark) and executed through a
    :class:`~repro.runtime.runner.BatchRunner`, so the most expensive stage
    of the pipeline can fan out over a process pool with ``jobs > 1``.

    Args:
        benchmarks: benchmark names to run (all thirteen by default).
        seed: base seed for workload generation and sensor noise.
        log_period_s: logging application period.
        duration_scale: multiply every benchmark's duration by this factor
            (useful to build smaller datasets in tests and quick examples).
        platform_factory: custom platform constructor (defaults to a fresh
            Nexus-4 platform per benchmark; must be picklable when combined
            with ``jobs > 1``).
        jobs: worker-process count for parallel collection.
        runner: custom batch runner (overrides ``jobs``).

    Returns:
        A :class:`TrainingData` whose logger pools the records of every
        benchmark, mirroring the paper's single global dataset.
    """
    from ..api.specs import PolicySpec
    from ..runtime import BatchRunner, ExperimentCell, ExperimentPlan

    if duration_scale <= 0:
        raise ValueError("duration_scale must be positive")
    names = tuple(benchmarks) if benchmarks is not None else BENCHMARK_NAMES

    baseline_policy = PolicySpec(label="ondemand-logging")
    plan = ExperimentPlan()
    for index, name in enumerate(names):
        trace = build_benchmark(name, seed=seed + index)
        if duration_scale != 1.0:
            trace = trace.truncated(max(log_period_s, trace.duration_s * duration_scale))
        plan.add(
            ExperimentCell(
                cell_id=name,
                trace=trace,
                policy=baseline_policy,
                seed=seed + index,
                log_period_s=log_period_s,
                platform_factory=platform_factory,
                metadata={"benchmark": name},
            )
        )
    store = (runner if runner is not None else BatchRunner.for_jobs(jobs)).run(plan)

    pooled = SystemLogger(period_s=log_period_s)
    for cell_result in store:
        pooled.extend(cell_result.logger)
    return TrainingData(logger=pooled, benchmarks=names)


def evaluate_prediction_models(
    data: TrainingData,
    model_names: Sequence[str] = PAPER_MODEL_NAMES,
    folds: int = 10,
    seed: int = 0,
    model_factories: Optional[Dict[str, Callable[[], Regressor]]] = None,
) -> Dict[str, Dict[str, CrossValidationResult]]:
    """10-fold cross-validation of the candidate learners (Figure 3).

    Returns:
        ``{model_name: {"skin": result, "screen": result}}`` with the paper's
        error-rate metric available on each
        :class:`~repro.ml.crossval.CrossValidationResult`.
    """
    factories = model_factories or default_model_factories(seed=seed)
    skin_data = data.skin_dataset()
    screen_data = data.screen_dataset()

    results: Dict[str, Dict[str, CrossValidationResult]] = {}
    for name in model_names:
        if name not in factories:
            raise KeyError(f"no factory registered for model {name!r}")
        factory = factories[name]
        results[name] = {
            "skin": cross_validate(factory, skin_data, folds=folds, seed=seed),
            "screen": cross_validate(factory, screen_data, folds=folds, seed=seed),
        }
    return results


def train_runtime_predictor(
    data: TrainingData,
    model_name: str = "reptree",
    include_screen: bool = True,
    seed: int = 0,
    model_factories: Optional[Dict[str, Callable[[], Regressor]]] = None,
) -> RuntimePredictor:
    """Train the deployed predictor on the full global dataset.

    The paper deploys REPTree; pass ``model_name="m5p"`` (or any registered
    model) to study alternatives.
    """
    factories = model_factories or default_model_factories(seed=seed)
    if model_name in factories:
        make = factories[model_name]
    else:
        make = lambda: create_model(model_name)  # noqa: E731 - tiny adapter

    skin_model = make().fit(data.skin_dataset())
    screen_model = make().fit(data.screen_dataset()) if include_screen else None
    return RuntimePredictor(skin_model=skin_model, screen_model=screen_model)


def build_usta_controller(
    predictor: RuntimePredictor,
    skin_limit_c: float = 37.0,
    profile: Optional[ThermalComfortProfile] = None,
    **kwargs,
) -> USTAController:
    """Build a USTA controller for a default or user-specific comfort limit.

    Args:
        predictor: the trained run-time predictor.
        skin_limit_c: the comfort limit to enforce (37 °C = the paper's
            default user).  Ignored when ``profile`` is given.
        profile: configure USTA for a specific participant instead.
        **kwargs: forwarded to :class:`USTAController` (policy, period, ...).
    """
    if profile is not None:
        return USTAController.for_user(predictor, profile, **kwargs)
    return USTAController(predictor=predictor, skin_limit_c=skin_limit_c, **kwargs)
