"""USTA: the User-specific Skin Temperature-Aware DVFS controller.

USTA sits on top of the baseline ondemand governor.  Every
``prediction_period_s`` (3 s in the paper) it predicts the skin temperature
from on-device signals and compares it against the user's comfort limit:

* prediction more than 2 °C below the limit → USTA stays out of the way and
  the ondemand governor optimises for power alone;
* within 2 °C → the maximum allowed frequency is lowered by one level;
* within 1 °C → lowered by two levels;
* within 0.5 °C or above the limit → the maximum frequency is clamped to the
  minimum level.

The controller implements the :class:`~repro.sim.engine.ThermalManager`
protocol, so it plugs directly into the simulation engine; on a real device
the same logic would run in a userspace daemon writing
``scaling_max_freq``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..api.registry import register_manager
from ..device.freq_table import FrequencyTable, nexus4_frequency_table
from ..sim.engine import ManagerDecision
from ..users.population import ThermalComfortProfile
from .policy import ThrottlePolicy
from .predictor import PredictionFeatures, RuntimePredictor, SkinScreenPrediction

__all__ = ["USTAController", "USTAControllerFactory"]


@dataclass(frozen=True)
class USTAControllerFactory:
    """Builds fresh USTA controllers for batched-runtime experiment cells.

    Carries only what a controller needs (the trained predictor and a comfort
    limit), so process-pool executors pickle a small payload per cell instead
    of whatever object graph a bound method would drag along.
    """

    predictor: RuntimePredictor
    skin_limit_c: float = 37.0

    def __call__(self) -> "USTAController":
        return USTAController(predictor=self.predictor, skin_limit_c=self.skin_limit_c)


@register_manager("usta")
@dataclass
class USTAController:
    """The skin-temperature-aware DVFS layer.

    Attributes:
        predictor: the trained run-time skin/screen temperature predictor.
        skin_limit_c: the user's skin temperature comfort limit (°C); the paper
            uses 37 °C for the "default" user and each participant's own limit
            in the user-specific experiments.
        policy: margin → frequency-cap rules (the paper's by default).
        prediction_period_s: how often the prediction runs (3 s in the paper).
        table: the platform's frequency table.
        predict_screen: also predict the screen temperature at every window
            (costs extra latency; USTA's control decision only needs the skin).
    """

    predictor: RuntimePredictor
    skin_limit_c: float = 37.0
    policy: ThrottlePolicy = field(default_factory=ThrottlePolicy)
    prediction_period_s: float = 3.0
    table: FrequencyTable = field(default_factory=nexus4_frequency_table)
    predict_screen: bool = False

    #: Name used in result labels ("usta+ondemand").
    name: str = "usta"

    # Constructor params that come from a user's comfort profile, as
    # (param_name, profile_attribute) pairs — the contract ManagerSpec.for_user
    # uses to configure per-user cells/sessions.  Deliberately not a dataclass
    # field (no annotation): it describes the class, not an instance.
    profile_params = (("skin_limit_c", "skin_limit_c"),)

    def __post_init__(self) -> None:
        if self.prediction_period_s <= 0:
            raise ValueError("prediction_period_s must be positive")
        if not 25.0 < self.skin_limit_c < 60.0:
            raise ValueError("skin_limit_c must be a plausible skin-temperature limit")
        self._last_prediction_time: Optional[float] = None
        self._current_cap: Optional[int] = None
        self._last_prediction: Optional[float] = None
        self._last_screen_prediction: Optional[float] = None
        self._total_latency_s: float = 0.0
        self._prediction_count: int = 0
        # The live limit the cap computation reads.  It starts at (and resets
        # to) the configured profile value; a comfort adapter moves it through
        # set_skin_limit as the user-feedback loop learns.
        self._live_limit_c: float = self.skin_limit_c

    # -- configuration helpers ---------------------------------------------------------

    @classmethod
    def for_user(
        cls,
        predictor: RuntimePredictor,
        profile: ThermalComfortProfile,
        **kwargs,
    ) -> "USTAController":
        """Configure USTA for a specific user's comfort limit."""
        return cls(predictor=predictor, skin_limit_c=profile.skin_limit_c, **kwargs)

    @property
    def activation_temp_c(self) -> float:
        """Skin temperature above which USTA starts intervening (live limit)."""
        return self.current_skin_limit_c - self.policy.activation_margin_c

    @property
    def current_skin_limit_c(self) -> float:
        """The live comfort limit the cap computation uses.

        Equal to the configured ``skin_limit_c`` until a comfort adapter
        (:mod:`repro.users.adaptation`) moves it via :meth:`set_skin_limit`.
        """
        return self._live_limit_c

    def set_skin_limit(self, limit_c: float) -> None:
        """Install a new live comfort limit (the user-feedback loop's knob).

        The configured ``skin_limit_c`` is untouched — :meth:`reset` returns
        to it — so a run always starts from the declared profile value.
        """
        if not 25.0 < limit_c < 60.0:
            raise ValueError("skin limit must be a plausible skin-temperature limit")
        self._live_limit_c = float(limit_c)

    # -- run-time statistics --------------------------------------------------------------

    @property
    def prediction_count(self) -> int:
        """Number of predictions performed since the last reset."""
        return self._prediction_count

    @property
    def average_prediction_latency_s(self) -> float:
        """Mean wall-clock latency per prediction (the paper's overhead metric)."""
        if self._prediction_count == 0:
            return 0.0
        return self._total_latency_s / self._prediction_count

    @property
    def last_prediction_c(self) -> Optional[float]:
        """Most recent skin-temperature prediction."""
        return self._last_prediction

    @property
    def current_cap(self) -> Optional[int]:
        """Currently requested frequency-level cap (``None`` = no cap)."""
        return self._current_cap

    # -- ThermalManager protocol ---------------------------------------------------------------

    def reset(self) -> None:
        """Clear controller state before a new run."""
        self._last_prediction_time = None
        self._current_cap = None
        self._last_prediction = None
        self._last_screen_prediction = None
        self._total_latency_s = 0.0
        self._prediction_count = 0
        self._live_limit_c = self.skin_limit_c

    def observe(
        self,
        time_s: float,
        sensor_readings: Dict[str, float],
        utilization: float,
        frequency_khz: float,
    ) -> ManagerDecision:
        """Run the periodic skin-temperature check and return the desired cap.

        Between prediction windows the previously decided cap is kept in
        place; the prediction (and hence any change of the cap) happens every
        ``prediction_period_s`` seconds.
        """
        if self.prediction_due(time_s):
            features = PredictionFeatures.from_readings(sensor_readings, utilization, frequency_khz)
            prediction = self.predictor.predict(features, predict_screen=self.predict_screen)
            return self.apply_prediction(time_s, prediction)
        return self.held_decision()

    # -- batched-session support -----------------------------------------------------
    #
    # The observe() loop above is the scalar path.  A SessionPool splits the
    # same logic in two so the predictor can run once for a whole batch of
    # sessions: prediction_due() → (pooled predict_batch) → apply_prediction().

    def prediction_due(self, time_s: float) -> bool:
        """True when the periodic prediction window has elapsed."""
        return (
            self._last_prediction_time is None
            or time_s - self._last_prediction_time >= self.prediction_period_s - 1e-9
        )

    def apply_prediction(self, time_s: float, prediction: SkinScreenPrediction) -> ManagerDecision:
        """Consume one (possibly batch-computed) prediction and update the cap."""
        self._last_prediction_time = time_s
        self._last_prediction = prediction.skin_temp_c
        self._last_screen_prediction = prediction.screen_temp_c
        self._total_latency_s += prediction.latency_s
        self._prediction_count += 1
        self._current_cap = self._cap_for(prediction)
        return self.held_decision()

    def restore_batch_state(
        self,
        *,
        last_prediction_time: Optional[float],
        last_prediction: Optional[float],
        last_screen_prediction: Optional[float],
        total_latency_s: float,
        prediction_count: int,
        current_cap: Optional[int],
        live_limit_c: float,
    ) -> None:
        """Install state accumulated by a vectorized policy plane.

        The SoA engine keeps this controller's per-tick state in arrays and
        writes it back through here once at the batch boundary, leaving the
        controller exactly as if :meth:`apply_prediction` had run every
        window.  ``live_limit_c`` goes through :meth:`set_skin_limit` so the
        plausibility guard still applies.
        """
        self._last_prediction_time = last_prediction_time
        self._last_prediction = last_prediction
        self._last_screen_prediction = last_screen_prediction
        self._total_latency_s = total_latency_s
        self._prediction_count = prediction_count
        self._current_cap = current_cap
        self.set_skin_limit(live_limit_c)

    def held_decision(self) -> ManagerDecision:
        """The decision currently in force (kept between prediction windows)."""
        return ManagerDecision(
            level_cap=self._current_cap,
            predicted_skin_temp_c=self._last_prediction,
            predicted_screen_temp_c=self._last_screen_prediction,
            comfort_limit_c=self._live_limit_c,
        )

    def _cap_for(self, prediction: SkinScreenPrediction) -> Optional[int]:
        """Map one prediction onto a frequency-level cap (subclass hook)."""
        return self.policy.cap_for_prediction(
            prediction.skin_temp_c, self.current_skin_limit_c, self.table
        )
