"""USTA's frequency-throttling policy.

From the paper (§III.B):

    "USTA has a threshold for activation which is set to 2°C below the skin
    temperature limit of the user.  If the difference between the predicted
    skin temperature and the temperature limit is between 1°C and 2°C, the
    maximum allowed CPU frequency is decreased by one level (...).  If the
    difference between the prediction and the temperature limit is between
    0.5°C and 1°C, then, the maximum allowed CPU frequency is decreased by two
    levels.  Finally, if the prediction is closer than 0.5°C to the limit or
    it is exceeding the limit, then, the maximum CPU frequency is set to the
    minimum frequency level."

:class:`ThrottlePolicy` encodes exactly those rules, parameterised so the
ablation benchmarks can vary the margins and the step sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..device.freq_table import FrequencyTable

__all__ = ["ThrottleStep", "ThrottlePolicy"]


@dataclass(frozen=True)
class ThrottleStep:
    """One rule of the throttle policy.

    Attributes:
        margin_above_c: the rule applies while ``limit - prediction`` is
            *less than* this margin (and at least the next rule's margin).
        levels_below_max: how many levels below the maximum to cap the
            frequency at; ``None`` means "cap at the minimum level".
    """

    margin_above_c: float
    levels_below_max: Optional[int]


@dataclass
class ThrottlePolicy:
    """Maps the predicted margin to the comfort limit onto a frequency cap.

    The default steps are the paper's: activation at a 2 °C margin, one level
    down inside 2 °C, two levels down inside 1 °C, minimum frequency inside
    0.5 °C (or when the limit is exceeded).
    """

    #: Sentinel used by the array variants (:meth:`caps_for_margins`,
    #: :meth:`cap_for_predictions`) where the scalar API returns ``None``:
    #: "no cap installed".  Integer so the result stays a plain int64 array.
    NO_CAP = -1

    steps: Tuple[ThrottleStep, ...] = (
        ThrottleStep(margin_above_c=2.0, levels_below_max=1),
        ThrottleStep(margin_above_c=1.0, levels_below_max=2),
        ThrottleStep(margin_above_c=0.5, levels_below_max=None),
    )

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a throttle policy needs at least one step")
        margins = [s.margin_above_c for s in self.steps]
        if margins != sorted(margins, reverse=True):
            raise ValueError("steps must be ordered by strictly decreasing margin")
        if len(set(margins)) != len(margins):
            raise ValueError("step margins must be distinct")
        for step in self.steps:
            if step.levels_below_max is not None and step.levels_below_max < 0:
                raise ValueError("levels_below_max must be non-negative or None")

    @property
    def activation_margin_c(self) -> float:
        """USTA intervenes only when the prediction is within this margin of the limit."""
        return self.steps[0].margin_above_c

    def cap_for_margin(self, margin_c: float, table: FrequencyTable) -> Optional[int]:
        """Frequency-level cap for a given margin ``limit - prediction``.

        Returns ``None`` when no cap should be installed (the prediction is
        comfortably below the activation threshold) and otherwise the highest
        level the governor may select.
        """
        if margin_c >= self.activation_margin_c:
            return None
        # Walk the rules from the loosest margin to the tightest; the last rule
        # whose margin the prediction has crossed wins.  Boundaries are
        # inclusive on the hotter side (a margin of exactly 1.0 °C uses the
        # two-level rule).
        cap_levels: Optional[int] = self.steps[0].levels_below_max
        for step in self.steps:
            if margin_c <= step.margin_above_c:
                cap_levels = step.levels_below_max
            else:
                break
        if cap_levels is None:
            return table.min_level
        return table.clamp_level(table.max_level - cap_levels)

    def cap_for_prediction(
        self, predicted_skin_temp_c: float, limit_c: float, table: FrequencyTable
    ) -> Optional[int]:
        """Convenience wrapper taking the prediction and the limit directly."""
        return self.cap_for_margin(limit_c - predicted_skin_temp_c, table)

    def caps_for_margins(self, margins_c: np.ndarray, table: FrequencyTable) -> np.ndarray:
        """Vectorized :meth:`cap_for_margin` over an array of margins.

        Returns an int64 array where :data:`NO_CAP` stands in for the scalar
        API's ``None``.  Element-for-element identical to calling
        :meth:`cap_for_margin` on each margin: because the steps are ordered
        by strictly decreasing margin, the rules a margin has crossed form a
        prefix of the step list, so the winning rule is simply the last
        satisfied one (``count - 1``).  A NaN margin satisfies no comparison
        and, exactly like the scalar walk, falls back to the first step.
        """
        margins = np.asarray(margins_c, dtype=float)
        step_caps = np.array(
            [
                table.min_level
                if step.levels_below_max is None
                else table.clamp_level(table.max_level - step.levels_below_max)
                for step in self.steps
            ],
            dtype=np.int64,
        )
        thresholds = np.array([step.margin_above_c for step in self.steps], dtype=float)
        counts = (margins[:, None] <= thresholds[None, :]).sum(axis=1)
        caps = step_caps[np.maximum(counts - 1, 0)]
        return np.where(margins >= self.activation_margin_c, np.int64(self.NO_CAP), caps)

    def cap_for_predictions(
        self,
        predicted_skin_temps_c: np.ndarray,
        limits_c: np.ndarray,
        table: FrequencyTable,
    ) -> np.ndarray:
        """Vectorized :meth:`cap_for_prediction` over arrays of rows.

        ``limits_c`` broadcasts against the predictions, so one shared limit
        or one limit per row both work.  See :meth:`caps_for_margins` for the
        ``None`` → :data:`NO_CAP` convention.
        """
        predicted = np.asarray(predicted_skin_temps_c, dtype=float)
        limits = np.asarray(limits_c, dtype=float)
        return self.caps_for_margins(limits - predicted, table)

    # -- declarative spec round-trip ---------------------------------------------------

    def to_spec(self) -> Dict[str, object]:
        """The policy as a JSON-serializable dictionary (see :meth:`from_spec`)."""
        return {
            "steps": [
                {"margin_above_c": step.margin_above_c, "levels_below_max": step.levels_below_max}
                for step in self.steps
            ]
        }

    @classmethod
    def from_spec(cls, spec: Mapping) -> "ThrottlePolicy":
        """Rebuild a policy from its :meth:`to_spec` dictionary.

        Raises:
            ValueError: for non-mapping specs, unknown keys, or step tables
                that violate the policy invariants.
        """
        if not isinstance(spec, Mapping):
            raise ValueError(f"a throttle-policy spec must be a mapping, got {type(spec).__name__}")
        unknown = set(spec) - {"steps"}
        if unknown:
            raise ValueError(
                f"unknown key(s) {sorted(unknown)} in throttle-policy spec; valid keys: steps"
            )
        if "steps" not in spec:
            raise ValueError("a throttle-policy spec requires the key 'steps'")
        steps = []
        for entry in spec["steps"]:
            if not isinstance(entry, Mapping):
                raise ValueError(f"each throttle step must be a mapping, got {entry!r}")
            bad = set(entry) - {"margin_above_c", "levels_below_max"}
            if bad:
                raise ValueError(
                    f"unknown key(s) {sorted(bad)} in throttle step; "
                    "valid keys: margin_above_c, levels_below_max"
                )
            if "margin_above_c" not in entry:
                raise ValueError("each throttle step requires 'margin_above_c'")
            levels = entry.get("levels_below_max")
            steps.append(
                ThrottleStep(
                    margin_above_c=float(entry["margin_above_c"]),
                    levels_below_max=None if levels is None else int(levels),
                )
            )
        return cls(steps=tuple(steps))

    # -- alternative policies for ablation studies -----------------------------------

    @classmethod
    def paper_default(cls) -> "ThrottlePolicy":
        """The exact policy described in the paper."""
        return cls()

    @classmethod
    def aggressive(cls) -> "ThrottlePolicy":
        """Throttle earlier and harder (3 °C activation, bigger steps)."""
        return cls(
            steps=(
                ThrottleStep(margin_above_c=3.0, levels_below_max=2),
                ThrottleStep(margin_above_c=1.5, levels_below_max=4),
                ThrottleStep(margin_above_c=0.75, levels_below_max=None),
            )
        )

    @classmethod
    def gentle(cls) -> "ThrottlePolicy":
        """Throttle later and in smaller steps (1 °C activation)."""
        return cls(
            steps=(
                ThrottleStep(margin_above_c=1.0, levels_below_max=1),
                ThrottleStep(margin_above_c=0.5, levels_below_max=2),
                ThrottleStep(margin_above_c=0.0, levels_below_max=4),
            )
        )

    @classmethod
    def with_activation_margin(cls, activation_margin_c: float) -> "ThrottlePolicy":
        """The paper's step structure, scaled to a different activation margin.

        Used by the margin-ablation benchmark: the three break points keep the
        same proportions (100%, 50% and 25% of the activation margin).
        """
        if activation_margin_c <= 0:
            raise ValueError("activation_margin_c must be positive")
        return cls(
            steps=(
                ThrottleStep(margin_above_c=activation_margin_c, levels_below_max=1),
                ThrottleStep(margin_above_c=activation_margin_c * 0.5, levels_below_max=2),
                ThrottleStep(margin_above_c=activation_margin_c * 0.25, levels_below_max=None),
            )
        )
