"""The paper's contribution: skin-temperature prediction + the USTA DVFS layer."""

from .pipeline import (
    PAPER_MODEL_NAMES,
    TrainingData,
    build_usta_controller,
    collect_training_data,
    default_model_factories,
    evaluate_prediction_models,
    train_runtime_predictor,
)
from .policy import ThrottlePolicy, ThrottleStep
from .predictor import PredictionFeatures, RuntimePredictor, SkinScreenPrediction
from .screen_aware import ScreenAwareUSTAController
from .usta import USTAController, USTAControllerFactory

__all__ = [
    "PAPER_MODEL_NAMES",
    "TrainingData",
    "build_usta_controller",
    "collect_training_data",
    "default_model_factories",
    "evaluate_prediction_models",
    "train_runtime_predictor",
    "ThrottlePolicy",
    "ThrottleStep",
    "PredictionFeatures",
    "RuntimePredictor",
    "SkinScreenPrediction",
    "USTAController",
    "USTAControllerFactory",
    "ScreenAwareUSTAController",
]
