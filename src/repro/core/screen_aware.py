"""Screen-aware extension of USTA.

The paper's comfort study (Fig. 1) records a *screen* comfort limit for every
participant as well as the skin limit, and its predictor estimates both
temperatures, but the published controller only acts on the skin temperature.
This module implements the natural extension the paper leaves open: a
controller that predicts both exterior temperatures every window and applies
the throttle policy to whichever surface is closest to its own limit.

It is exercised by the ``examples/custom_policy.py`` workflow and by the
``bench_ablation_margin`` family of ablations; the default reproduction of the
paper's figures continues to use the published skin-only controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..api.registry import register_manager
from ..users.population import ThermalComfortProfile
from .predictor import RuntimePredictor, SkinScreenPrediction
from .usta import USTAController

__all__ = ["ScreenAwareUSTAController"]


@register_manager("usta-screen")
@dataclass
class ScreenAwareUSTAController(USTAController):
    """USTA variant that also enforces a screen-temperature limit.

    Attributes:
        screen_limit_c: the user's screen comfort limit (°C).  The governor cap
            is the tighter of the skin-margin cap and the screen-margin cap.
    """

    screen_limit_c: float = 35.0

    #: Name used in result labels ("usta-screen+ondemand").
    name: str = "usta-screen"

    # Per-user parameterization contract (see USTAController.profile_params):
    # this variant also takes the participant's screen comfort limit.
    profile_params = (
        ("skin_limit_c", "skin_limit_c"),
        ("screen_limit_c", "screen_limit_c"),
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 25.0 < self.screen_limit_c < 60.0:
            raise ValueError("screen_limit_c must be a plausible screen-temperature limit")
        if self.predictor.screen_model is None:
            raise ValueError("ScreenAwareUSTAController needs a predictor with a screen model")
        # The screen prediction is required every window, whatever the caller
        # passed for predict_screen.
        self.predict_screen = True

    @classmethod
    def for_user(
        cls,
        predictor: RuntimePredictor,
        profile: ThermalComfortProfile,
        **kwargs,
    ) -> "ScreenAwareUSTAController":
        """Configure the controller from both of a participant's limits."""
        return cls(
            predictor=predictor,
            skin_limit_c=profile.skin_limit_c,
            screen_limit_c=profile.screen_limit_c,
            **kwargs,
        )

    def _cap_for(self, prediction: SkinScreenPrediction) -> Optional[int]:
        """The tighter of the skin-margin cap and the screen-margin cap.

        The periodic scheduling (and hence the batched-session support)
        lives in the base class; this hook only changes how one prediction
        maps onto a cap.
        """
        skin_cap = self.policy.cap_for_prediction(
            prediction.skin_temp_c, self.current_skin_limit_c, self.table
        )
        screen_cap: Optional[int] = None
        if prediction.screen_temp_c is not None:
            screen_cap = self.policy.cap_for_prediction(
                prediction.screen_temp_c, self.screen_limit_c, self.table
            )
        return self._tighter_cap(skin_cap, screen_cap)

    @staticmethod
    def _tighter_cap(skin_cap: Optional[int], screen_cap: Optional[int]) -> Optional[int]:
        """The stricter (lower) of two optional level caps."""
        if skin_cap is None:
            return screen_cap
        if screen_cap is None:
            return skin_cap
        return min(skin_cap, screen_cap)
