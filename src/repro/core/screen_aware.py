"""Screen-aware extension of USTA.

The paper's comfort study (Fig. 1) records a *screen* comfort limit for every
participant as well as the skin limit, and its predictor estimates both
temperatures, but the published controller only acts on the skin temperature.
This module implements the natural extension the paper leaves open: a
controller that predicts both exterior temperatures every window and applies
the throttle policy to whichever surface is closest to its own limit.

It is exercised by the ``examples/custom_policy.py`` workflow and by the
``bench_ablation_margin`` family of ablations; the default reproduction of the
paper's figures continues to use the published skin-only controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.engine import ManagerDecision
from ..users.population import ThermalComfortProfile
from .predictor import PredictionFeatures, RuntimePredictor
from .usta import USTAController

__all__ = ["ScreenAwareUSTAController"]


@dataclass
class ScreenAwareUSTAController(USTAController):
    """USTA variant that also enforces a screen-temperature limit.

    Attributes:
        screen_limit_c: the user's screen comfort limit (°C).  The governor cap
            is the tighter of the skin-margin cap and the screen-margin cap.
    """

    screen_limit_c: float = 35.0

    #: Name used in result labels ("usta-screen+ondemand").
    name: str = "usta-screen"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 25.0 < self.screen_limit_c < 60.0:
            raise ValueError("screen_limit_c must be a plausible screen-temperature limit")
        if self.predictor.screen_model is None:
            raise ValueError("ScreenAwareUSTAController needs a predictor with a screen model")
        # The screen prediction is required every window, whatever the caller
        # passed for predict_screen.
        self.predict_screen = True

    @classmethod
    def for_user(
        cls,
        predictor: RuntimePredictor,
        profile: ThermalComfortProfile,
        **kwargs,
    ) -> "ScreenAwareUSTAController":
        """Configure the controller from both of a participant's limits."""
        return cls(
            predictor=predictor,
            skin_limit_c=profile.skin_limit_c,
            screen_limit_c=profile.screen_limit_c,
            **kwargs,
        )

    def observe(
        self,
        time_s: float,
        sensor_readings: Dict[str, float],
        utilization: float,
        frequency_khz: float,
    ) -> ManagerDecision:
        """Predict both surfaces and keep the tighter of the two caps."""
        due = (
            self._last_prediction_time is None
            or time_s - self._last_prediction_time >= self.prediction_period_s - 1e-9
        )
        if due:
            features = PredictionFeatures.from_readings(sensor_readings, utilization, frequency_khz)
            prediction = self.predictor.predict(features, predict_screen=True)
            self._last_prediction_time = time_s
            self._last_prediction = prediction.skin_temp_c
            self._last_screen_prediction = prediction.screen_temp_c
            self._total_latency_s += prediction.latency_s
            self._prediction_count += 1

            skin_cap = self.policy.cap_for_prediction(
                prediction.skin_temp_c, self.skin_limit_c, self.table
            )
            screen_cap: Optional[int] = None
            if prediction.screen_temp_c is not None:
                screen_cap = self.policy.cap_for_prediction(
                    prediction.screen_temp_c, self.screen_limit_c, self.table
                )
            self._current_cap = self._tighter_cap(skin_cap, screen_cap)

        return ManagerDecision(
            level_cap=self._current_cap,
            predicted_skin_temp_c=self._last_prediction,
            predicted_screen_temp_c=self._last_screen_prediction,
        )

    @staticmethod
    def _tighter_cap(skin_cap: Optional[int], screen_cap: Optional[int]) -> Optional[int]:
        """The stricter (lower) of two optional level caps."""
        if skin_cap is None:
            return screen_cap
        if screen_cap is None:
            return skin_cap
        return min(skin_cap, screen_cap)
