"""Run-time skin and screen temperature predictor.

The predictor is the piece USTA queries every 3 seconds: it takes the signals
available on a stock phone — CPU temperature, battery temperature, CPU
utilization and CPU frequency — and estimates the back-cover ("skin") and
screen temperatures that would otherwise require external thermistors.

The models behind it are the regressors of :mod:`repro.ml`; the paper deploys
REPTree (fast to build, no halting) and notes M5P is slightly better once
sub-1 °C errors are ignored.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..api.registry import register_predictor
from ..ml.base import Regressor
from ..sim.logger import FEATURE_NAMES

__all__ = [
    "PredictionFeatures",
    "SkinScreenPrediction",
    "BatchPredictionArrays",
    "RuntimePredictor",
    "build_trained_predictor",
]


@dataclass(frozen=True)
class PredictionFeatures:
    """The on-device signals the predictor consumes."""

    cpu_temp_c: float
    battery_temp_c: float
    utilization: float
    frequency_khz: float

    def as_vector(self) -> np.ndarray:
        """Feature vector in the canonical column order used for training."""
        return np.array(
            [self.cpu_temp_c, self.battery_temp_c, self.utilization, self.frequency_khz],
            dtype=float,
        )

    @classmethod
    def from_readings(
        cls,
        sensor_readings: Mapping[str, float],
        utilization: float,
        frequency_khz: float,
    ) -> "PredictionFeatures":
        """Build features from the sensor suite's readings plus CPU state.

        Raises ``ValueError`` naming the offending channel when a required
        sensor is missing or any input is non-finite — a NaN here would fold
        silently into the regression and come back as a NaN "prediction" that
        disables throttling without a trace.
        """
        try:
            cpu = float(sensor_readings["cpu"])
            battery = float(sensor_readings["battery"])
        except KeyError as exc:
            available = ", ".join(sorted(sensor_readings)) or "none"
            raise ValueError(
                f"predictor features need sensor channel {exc.args[0]!r} "
                f"(channels present: {available})"
            ) from None
        features = cls(
            cpu_temp_c=cpu,
            battery_temp_c=battery,
            utilization=float(utilization),
            frequency_khz=float(frequency_khz),
        )
        bad = [
            name
            for name, value in (
                ("cpu", features.cpu_temp_c),
                ("battery", features.battery_temp_c),
                ("utilization", features.utilization),
                ("frequency_khz", features.frequency_khz),
            )
            if not math.isfinite(value)
        ]
        if bad:
            raise ValueError(
                f"non-finite predictor feature(s) {', '.join(bad)}: a HAL "
                "placeholder/NaN reading must be dropped or interpolated "
                "before prediction, never folded into the model"
            )
        return features


@dataclass(frozen=True)
class SkinScreenPrediction:
    """One prediction of the exterior temperatures."""

    skin_temp_c: float
    screen_temp_c: Optional[float]
    latency_s: float


@dataclass(frozen=True)
class BatchPredictionArrays:
    """Column-wise result of one batched prediction.

    The array counterpart of a list of :class:`SkinScreenPrediction`: row
    ``i`` of each array is sample ``i``'s prediction, and ``latency_s`` is
    the amortized per-sample wall-clock of the batch (the latency each
    session reports, exactly as :meth:`RuntimePredictor.predict_batch`).
    """

    skin_temp_c: np.ndarray
    screen_temp_c: Optional[np.ndarray]
    latency_s: float


@dataclass
class RuntimePredictor:
    """Wraps the trained skin (and optionally screen) regression models.

    Attributes:
        skin_model: fitted regressor predicting the back-cover temperature.
        screen_model: optional fitted regressor for the screen temperature
            (the paper notes it can be predicted selectively, e.g. only during
            phone calls, to save overhead).
        feature_names: order of the feature columns the models were trained on.
    """

    skin_model: Regressor
    screen_model: Optional[Regressor] = None
    feature_names: Tuple[str, ...] = FEATURE_NAMES

    def __post_init__(self) -> None:
        if not self.skin_model.is_fitted:
            raise ValueError("skin_model must be fitted")
        if self.screen_model is not None and not self.screen_model.is_fitted:
            raise ValueError("screen_model must be fitted when provided")
        if tuple(self.feature_names) != FEATURE_NAMES:
            raise ValueError(f"feature_names must be {FEATURE_NAMES}")

    @property
    def model_name(self) -> str:
        """Name of the underlying skin model (e.g. ``"reptree"``)."""
        return self.skin_model.name

    def predict(self, features: PredictionFeatures, predict_screen: bool = True) -> SkinScreenPrediction:
        """Predict the exterior temperatures from on-device signals.

        Args:
            features: the current on-device signals.
            predict_screen: also predict the screen temperature when a screen
                model is available (disable to halve the run-time cost, as the
                paper suggests).
        """
        vector = features.as_vector().reshape(1, -1)
        start = time.perf_counter()
        skin = float(self.skin_model.predict(vector)[0])
        screen: Optional[float] = None
        if predict_screen and self.screen_model is not None:
            screen = float(self.screen_model.predict(vector)[0])
        latency = time.perf_counter() - start
        return SkinScreenPrediction(skin_temp_c=skin, screen_temp_c=screen, latency_s=latency)

    def predict_batch(
        self, features: np.ndarray, predict_screen: bool = True
    ) -> List[SkinScreenPrediction]:
        """Predict for a whole batch of feature rows in one regressor call.

        This is the session pool's fast path: when N concurrent policy
        sessions hit their prediction window on the same tick, one
        ``(N, 4)`` matrix predict replaces N scalar calls.  The reported
        per-prediction latency is the batch wall-clock divided by N (the
        amortized cost each session pays).

        Args:
            features: ``(n_samples, n_features)`` matrix in the canonical
                column order (see :meth:`PredictionFeatures.as_vector`).
            predict_screen: also evaluate the screen model when available.
        """
        arrays = self.predict_batch_arrays(features, predict_screen=predict_screen)
        skin = arrays.skin_temp_c
        screen = arrays.screen_temp_c
        return [
            SkinScreenPrediction(
                skin_temp_c=float(skin[i]),
                screen_temp_c=float(screen[i]) if screen is not None else None,
                latency_s=arrays.latency_s,
            )
            for i in range(len(skin))
        ]

    def predict_batch_arrays(
        self, features: np.ndarray, predict_screen: bool = True, exact: bool = False
    ) -> BatchPredictionArrays:
        """Batched prediction returning columns instead of row objects.

        The SoA engine's policy plane consumes this form directly: the skin
        (and optionally screen) predictions stay arrays, avoiding N
        ``SkinScreenPrediction`` allocations per prediction window.  With
        ``exact=False`` values are identical to :meth:`predict_batch` — both
        run the same single matrix predict.

        ``exact=True`` evaluates a model one row at a time instead: a
        whole-matrix predict may differ from N single-row predicts in the
        last ulp when the model's batched evaluation depends on the row
        count (a BLAS matmul picks different kernels by shape), and the
        vectorized engine's bit-parity contract against the scalar path
        cannot tolerate that — the same reason its thermal solve
        back-substitutes per column.  Models declaring
        ``batch_row_invariant`` (trees; the order-fixed linear sweep)
        guarantee matrix == per-row bitwise, so they keep the one-call
        shortcut even in exact mode.
        """
        matrix = np.atleast_2d(np.asarray(features, dtype=float))
        if matrix.shape[1] != len(self.feature_names):
            raise ValueError(
                f"feature matrix must have {len(self.feature_names)} columns, "
                f"got {matrix.shape[1]}"
            )
        start = time.perf_counter()
        want_screen = predict_screen and self.screen_model is not None
        screen: Optional[np.ndarray] = None

        def _rows(model) -> np.ndarray:
            if exact and len(matrix) > 1 and not getattr(model, "batch_row_invariant", False):
                predict = model.predict
                return np.array([predict(matrix[i : i + 1])[0] for i in range(len(matrix))])
            return np.asarray(model.predict(matrix), dtype=float)

        skin = _rows(self.skin_model)
        if want_screen:
            screen = _rows(self.screen_model)
        latency = (time.perf_counter() - start) / len(matrix)
        return BatchPredictionArrays(skin_temp_c=skin, screen_temp_c=screen, latency_s=latency)

    def predict_from_readings(
        self,
        sensor_readings: Mapping[str, float],
        utilization: float,
        frequency_khz: float,
        predict_screen: bool = True,
    ) -> SkinScreenPrediction:
        """Predict directly from a sensor-suite reading dictionary."""
        features = PredictionFeatures.from_readings(sensor_readings, utilization, frequency_khz)
        return self.predict(features, predict_screen=predict_screen)

    def measure_overhead(
        self, features: Sequence[PredictionFeatures], repeats: int = 10
    ) -> Dict[str, float]:
        """Measure the prediction latency (the paper reports ~12 ms per window).

        Returns mean per-prediction latency for the skin model alone and for
        skin + screen together, in seconds.
        """
        if not features:
            raise ValueError("need at least one feature sample to measure overhead")
        vectors = np.vstack([f.as_vector() for f in features])

        start = time.perf_counter()
        for _ in range(repeats):
            for row in vectors:
                self.skin_model.predict(row.reshape(1, -1))
        skin_latency = (time.perf_counter() - start) / (repeats * len(features))

        both_latency = skin_latency
        if self.screen_model is not None:
            start = time.perf_counter()
            for _ in range(repeats):
                for row in vectors:
                    self.screen_model.predict(row.reshape(1, -1))
            screen_latency = (time.perf_counter() - start) / (repeats * len(features))
            both_latency = skin_latency + screen_latency

        return {
            "skin_latency_s": skin_latency,
            "total_latency_s": both_latency,
        }


#: Cache of deterministically trained predictors, keyed by recipe parameters,
#: so many spec-built experiment cells in one process train at most once.
_TRAINED_CACHE: Dict[Tuple, RuntimePredictor] = {}

#: Per-process cache traffic of :func:`build_trained_predictor` — how often a
#: recipe was answered from memory, resolved from the disk artifact cache, or
#: actually collected-and-trained (the expensive path the cache exists to
#: avoid).  Read via :func:`predictor_cache_stats`.
_CACHE_STATS: Dict[str, int] = {"memory_hits": 0, "disk_hits": 0, "trained": 0, "stored": 0}


def predictor_cache_stats() -> Dict[str, int]:
    """This process's trained-predictor cache counters (a copy)."""
    return dict(_CACHE_STATS)


def reset_predictor_caches() -> None:
    """Clear the in-memory recipe cache and counters (testing hook).

    The disk artifact cache is untouched — point ``REPRO_ARTIFACT_DIR``
    somewhere else (or at ``off``) to isolate it.
    """
    _TRAINED_CACHE.clear()
    for name in _CACHE_STATS:
        _CACHE_STATS[name] = 0


@register_predictor("trained")
def build_trained_predictor(
    model: str = "reptree",
    seed: int = 0,
    duration_scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    include_screen: bool = True,
    log_period_s: float = 3.0,
) -> RuntimePredictor:
    """Reproduce the paper's offline pipeline deterministically from a recipe.

    This is the registered builder behind ``PredictorSpec(kind="trained")``:
    collect logging data by running the benchmark suite under the baseline
    governor, then train the named learner on the pooled dataset.  The same
    recipe always yields the same predictor, which is what makes spec-built
    policies reproducible without shipping model weights.

    Resolution is two-level: an in-process memo (many cells of one sweep
    share one training run), then the content-addressed disk cache of
    :mod:`repro.runtime.artifacts` (many *processes* — pool workers, repeated
    sweeps, ``repro serve`` restarts — share one trained artifact).  Only a
    cold miss on both levels collects data and trains.
    """
    key = (
        model,
        seed,
        duration_scale,
        tuple(benchmarks) if benchmarks is not None else None,
        include_screen,
        log_period_s,
    )
    if key in _TRAINED_CACHE:
        _CACHE_STATS["memory_hits"] += 1
        return _TRAINED_CACHE[key]

    # Imported lazily: the runtime and pipeline layers sit above this module.
    from ..runtime.artifacts import (
        configured_artifact_cache,
        predictor_content_key,
        training_data_sha,
    )

    cache = configured_artifact_cache()
    content_key = predictor_content_key(
        "trained",
        {
            "model": model,
            "seed": seed,
            "duration_scale": duration_scale,
            "benchmarks": list(benchmarks) if benchmarks is not None else None,
            "include_screen": include_screen,
            "log_period_s": log_period_s,
        },
    )
    if cache is not None:
        cached = cache.resolve(content_key)
        if cached is not None:
            _CACHE_STATS["disk_hits"] += 1
            _TRAINED_CACHE[key] = cached
            return cached

    from .pipeline import collect_training_data, train_runtime_predictor

    data = collect_training_data(
        benchmarks=benchmarks,
        seed=seed,
        log_period_s=log_period_s,
        duration_scale=duration_scale,
    )
    predictor = train_runtime_predictor(
        data, model_name=model, include_screen=include_screen, seed=seed
    )
    _CACHE_STATS["trained"] += 1
    if cache is not None:
        cache.store(content_key, training_data_sha(data), predictor)
        _CACHE_STATS["stored"] += 1
    _TRAINED_CACHE[key] = predictor
    return predictor
