"""Workload traces.

A *workload trace* is the time series of activity a benchmark or application
imposes on the device: CPU demand (fraction of maximum-frequency capacity),
GPU activity, radio/camera activity, screen state and brightness, charging
state and whether the user is holding the phone.  Traces are sampled at a
fixed period (1 s by default) and are what the simulation engine replays
against the :class:`~repro.device.platform.DevicePlatform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..device.platform import DeviceActivity

__all__ = ["TraceArrays", "WorkloadSample", "WorkloadTrace"]


@dataclass(frozen=True)
class TraceArrays:
    """A workload trace materialised as one numpy column per sample field.

    This is the structure-of-arrays view the batched runtime consumes: the
    heterogeneous population engine stacks each member's columns into padded
    ``(n_members, n_steps)`` matrices and advances every member with array
    arithmetic instead of per-sample attribute access.  Values are exactly the
    sample fields (floats bit-identical to the scalar path; flags as booleans),
    so array math that mirrors the scalar model's operation order stays
    bit-exact.
    """

    cpu_demand: np.ndarray
    gpu_activity: np.ndarray
    radio_activity: np.ndarray
    brightness: np.ndarray
    screen_on: np.ndarray
    charging: np.ndarray
    touching: np.ndarray
    sample_period_s: float

    def __len__(self) -> int:
        return len(self.cpu_demand)


@dataclass(frozen=True)
class WorkloadSample:
    """Activity requested during one trace sample."""

    cpu_demand: float = 0.0
    gpu_activity: float = 0.0
    radio_activity: float = 0.0
    screen_on: bool = True
    brightness: float = 0.7
    charging: bool = False
    touching: bool = True

    def __post_init__(self) -> None:
        for name in ("cpu_demand", "gpu_activity", "radio_activity", "brightness"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")

    def to_activity(self) -> DeviceActivity:
        """Convert to the device-facing :class:`DeviceActivity`."""
        return DeviceActivity(
            cpu_demand=self.cpu_demand,
            gpu_activity=self.gpu_activity,
            radio_activity=self.radio_activity,
            screen_on=self.screen_on,
            brightness=self.brightness,
            charging=self.charging,
            touching=self.touching,
        )


@dataclass
class WorkloadTrace:
    """A named, fixed-period sequence of :class:`WorkloadSample` entries.

    Attributes:
        name: workload identifier (e.g. ``"skype"``).
        samples: the activity samples in playback order.
        sample_period_s: trace sampling period in seconds.
        description: optional human-readable description.
    """

    name: str
    samples: List[WorkloadSample] = field(default_factory=list)
    sample_period_s: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[WorkloadSample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> WorkloadSample:
        return self.samples[index]

    # -- properties -----------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Total trace duration in seconds."""
        return len(self.samples) * self.sample_period_s

    @property
    def mean_cpu_demand(self) -> float:
        """Average CPU demand over the trace."""
        if not self.samples:
            return 0.0
        return sum(s.cpu_demand for s in self.samples) / len(self.samples)

    @property
    def peak_cpu_demand(self) -> float:
        """Maximum CPU demand over the trace."""
        if not self.samples:
            return 0.0
        return max(s.cpu_demand for s in self.samples)

    def as_arrays(self) -> TraceArrays:
        """Materialise the trace as a :class:`TraceArrays` column set.

        The result is cached on the trace (keyed on the current sample count,
        so `samples` appended after the first call invalidate it); traces are
        treated as immutable once replayed — every trace-algebra method
        returns a copy rather than mutating in place.
        """
        cached = getattr(self, "_arrays_cache", None)
        if cached is not None and len(cached) == len(self.samples):
            return cached
        samples = self.samples
        arrays = TraceArrays(
            cpu_demand=np.array([s.cpu_demand for s in samples], dtype=float),
            gpu_activity=np.array([s.gpu_activity for s in samples], dtype=float),
            radio_activity=np.array([s.radio_activity for s in samples], dtype=float),
            brightness=np.array([s.brightness for s in samples], dtype=float),
            screen_on=np.array([s.screen_on for s in samples], dtype=bool),
            charging=np.array([s.charging for s in samples], dtype=bool),
            touching=np.array([s.touching for s in samples], dtype=bool),
            sample_period_s=self.sample_period_s,
        )
        self._arrays_cache = arrays
        return arrays

    def arrays_window(self, start: int, stop: int) -> TraceArrays:
        """Materialise just the samples in ``[start, stop)`` as columns.

        The windowed population engine replays long traces in fixed-size step
        windows, so the full :meth:`as_arrays` materialisation (O(len) numpy
        columns per trace) is never required.  When a full-trace cache already
        exists the window is answered as zero-copy views into it; otherwise the
        window's columns are built from the sample slice and *not* cached —
        windows are consumed once, and caching them would defeat the bounded
        memory the windowed engine exists to provide.  Values are bit-identical
        to the corresponding ``as_arrays()`` slices either way.
        """
        if start < 0 or stop < start:
            raise ValueError(f"invalid trace window [{start}, {stop})")
        cached = getattr(self, "_arrays_cache", None)
        if cached is not None and len(cached) == len(self.samples):
            return TraceArrays(
                cpu_demand=cached.cpu_demand[start:stop],
                gpu_activity=cached.gpu_activity[start:stop],
                radio_activity=cached.radio_activity[start:stop],
                brightness=cached.brightness[start:stop],
                screen_on=cached.screen_on[start:stop],
                charging=cached.charging[start:stop],
                touching=cached.touching[start:stop],
                sample_period_s=self.sample_period_s,
            )
        samples = self.samples[start:stop]
        return TraceArrays(
            cpu_demand=np.array([s.cpu_demand for s in samples], dtype=float),
            gpu_activity=np.array([s.gpu_activity for s in samples], dtype=float),
            radio_activity=np.array([s.radio_activity for s in samples], dtype=float),
            brightness=np.array([s.brightness for s in samples], dtype=float),
            screen_on=np.array([s.screen_on for s in samples], dtype=bool),
            charging=np.array([s.charging for s in samples], dtype=bool),
            touching=np.array([s.touching for s in samples], dtype=bool),
            sample_period_s=self.sample_period_s,
        )

    def iter_windows(
        self, window_steps: int, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[tuple]:
        """Yield ``(window_start, TraceArrays)`` chunks of ``window_steps`` samples.

        The chunked counterpart of :meth:`as_arrays`: the concatenation of the
        yielded columns equals the full materialisation exactly, but at most
        one window of columns is live at a time (see :meth:`arrays_window`).
        The final window may be shorter.
        """
        if window_steps < 1:
            raise ValueError("window_steps must be at least 1")
        end = len(self.samples) if stop is None else min(stop, len(self.samples))
        for w0 in range(start, end, window_steps):
            yield w0, self.arrays_window(w0, min(w0 + window_steps, end))

    def sample_at(self, time_s: float) -> WorkloadSample:
        """The sample active at absolute trace time ``time_s`` (clamped)."""
        if not self.samples:
            raise ValueError(f"trace {self.name!r} is empty")
        index = int(time_s / self.sample_period_s)
        index = max(0, min(len(self.samples) - 1, index))
        return self.samples[index]

    # -- trace algebra ----------------------------------------------------------

    def truncated(self, duration_s: float) -> "WorkloadTrace":
        """A copy of the trace limited to the first ``duration_s`` seconds."""
        count = max(1, int(round(duration_s / self.sample_period_s)))
        return WorkloadTrace(
            name=self.name,
            samples=list(self.samples[:count]),
            sample_period_s=self.sample_period_s,
            description=self.description,
        )

    def repeated(self, times: int) -> "WorkloadTrace":
        """A copy with the sample sequence repeated ``times`` times."""
        if times < 1:
            raise ValueError("times must be at least 1")
        return WorkloadTrace(
            name=self.name,
            samples=list(self.samples) * times,
            sample_period_s=self.sample_period_s,
            description=self.description,
        )

    def concatenated(self, other: "WorkloadTrace", name: Optional[str] = None) -> "WorkloadTrace":
        """This trace followed by another (periods must match)."""
        if abs(other.sample_period_s - self.sample_period_s) > 1e-9:
            raise ValueError("cannot concatenate traces with different sample periods")
        return WorkloadTrace(
            name=name or f"{self.name}+{other.name}",
            samples=list(self.samples) + list(other.samples),
            sample_period_s=self.sample_period_s,
            description=self.description,
        )

    def scaled_demand(self, factor: float, name: Optional[str] = None) -> "WorkloadTrace":
        """A copy with CPU demand multiplied by ``factor`` (clipped to [0, 1])."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        samples = [
            replace(s, cpu_demand=min(1.0, s.cpu_demand * factor)) for s in self.samples
        ]
        return WorkloadTrace(
            name=name or self.name,
            samples=samples,
            sample_period_s=self.sample_period_s,
            description=self.description,
        )

    def mapped(
        self, transform: Callable[[WorkloadSample], WorkloadSample], name: Optional[str] = None
    ) -> "WorkloadTrace":
        """A copy with every sample passed through ``transform``."""
        return WorkloadTrace(
            name=name or self.name,
            samples=[transform(s) for s in self.samples],
            sample_period_s=self.sample_period_s,
            description=self.description,
        )

    @classmethod
    def from_samples(
        cls,
        name: str,
        samples: Iterable[WorkloadSample],
        sample_period_s: float = 1.0,
        description: str = "",
    ) -> "WorkloadTrace":
        """Build a trace from any iterable of samples."""
        return cls(
            name=name,
            samples=list(samples),
            sample_period_s=sample_period_s,
            description=description,
        )

    @classmethod
    def constant(
        cls,
        name: str,
        duration_s: float,
        sample: WorkloadSample,
        sample_period_s: float = 1.0,
        description: str = "",
    ) -> "WorkloadTrace":
        """Build a trace that repeats one sample for ``duration_s`` seconds."""
        count = max(1, int(round(duration_s / sample_period_s)))
        return cls(
            name=name,
            samples=[sample] * count,
            sample_period_s=sample_period_s,
            description=description,
        )
