"""The thirteen benchmark workloads used in the paper's evaluation.

The paper collects data with thirteen benchmarks: several configurations
derived from the customizable AnTuTu Benchmark Set (CPU, CPU-GPU-RAM, User
Experience, the full set, and a 1.5-hour CPU run), AnTuTu Tester, GFXBench 3.0,
Vellamo, Skype (30-minute video call), YouTube playback, plus two built-in
functionalities (video Record and Charging) and the game *The Legend of Holy
Archer*.

Each entry below is a synthetic trace generator tuned to the qualitative
activity profile of the corresponding application class (compute bursts,
GPU-bound rendering, sustained video call with camera and radio, idle
charging, ...).  Durations are chosen to match the paper where it states them
(30-minute Skype call, 1.5-hour AnTuTu CPU run) and to realistic run lengths
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .generators import BurstyLoad, ConstantLoad, LoadGenerator, PeriodicLoad, PhasedLoad, RampLoad
from .trace import WorkloadSample, WorkloadTrace

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "build_benchmark",
    "build_all_benchmarks",
    "SKYPE_BENCHMARK",
    "ANTUTU_TESTER_BENCHMARK",
]

MINUTE = 60.0


@dataclass(frozen=True)
class BenchmarkSpec:
    """Description of one paper benchmark.

    Attributes:
        name: benchmark identifier used throughout the library.
        title: human-readable title (as the paper labels it).
        duration_s: nominal trace duration.
        builder: callable producing the generator for a given seed.
        description: one-line description of the activity profile.
    """

    name: str
    title: str
    duration_s: float
    builder: Callable[[float, int], LoadGenerator]
    description: str = ""

    def build(self, seed: int = 0, duration_s: Optional[float] = None) -> WorkloadTrace:
        """Generate the benchmark trace (optionally with a custom duration)."""
        duration = duration_s if duration_s is not None else self.duration_s
        generator = self.builder(duration, seed)
        return generator.generate(self.name, description=self.description)


# ---------------------------------------------------------------------------
# Activity-profile builders
# ---------------------------------------------------------------------------


def _antutu_cpu(duration_s: float, seed: int) -> LoadGenerator:
    """AnTuTu CPU sub-test: near-saturating integer/float bursts with short gaps."""
    return BurstyLoad(
        duration_s=duration_s,
        seed=seed,
        busy_demand=0.93,
        idle_demand=0.30,
        busy_duration_s=70.0,
        idle_duration_s=8.0,
        base_sample=WorkloadSample(gpu_activity=0.05, radio_activity=0.05, brightness=0.8),
    )


def _antutu_cpu_gpu_ram(duration_s: float, seed: int) -> LoadGenerator:
    """AnTuTu CPU+GPU+RAM: alternating compute-bound and render-bound intervals."""
    return PeriodicLoad(
        duration_s=duration_s,
        seed=seed,
        high_demand=0.88,
        low_demand=0.45,
        period_s=120.0,
        duty_cycle=0.55,
        base_sample=WorkloadSample(gpu_activity=0.45, radio_activity=0.05, brightness=0.8),
    )


def _antutu_user_exp(duration_s: float, seed: int) -> LoadGenerator:
    """AnTuTu User Experience: UI scrolling and media decode, moderate load."""
    return BurstyLoad(
        duration_s=duration_s,
        seed=seed,
        busy_demand=0.60,
        idle_demand=0.18,
        busy_duration_s=25.0,
        idle_duration_s=15.0,
        base_sample=WorkloadSample(gpu_activity=0.25, radio_activity=0.05, brightness=0.8),
    )


def _antutu_full(duration_s: float, seed: int) -> LoadGenerator:
    """The full AnTuTu set: CPU, GPU, memory and UX phases back to back."""
    quarter = duration_s / 4.0
    base = WorkloadSample(gpu_activity=0.1, radio_activity=0.05, brightness=0.8)
    gpu_base = WorkloadSample(gpu_activity=0.7, radio_activity=0.05, brightness=0.8)
    return PhasedLoad(
        seed=seed,
        phases=[
            ("cpu", ConstantLoad(duration_s=quarter, seed=seed + 1, demand=0.85, base_sample=base)),
            ("gpu", ConstantLoad(duration_s=quarter, seed=seed + 2, demand=0.5, base_sample=gpu_base)),
            ("ram", ConstantLoad(duration_s=quarter, seed=seed + 3, demand=0.70, base_sample=base)),
            ("ux", BurstyLoad(
                duration_s=quarter,
                seed=seed + 4,
                busy_demand=0.55,
                idle_demand=0.2,
                busy_duration_s=20.0,
                idle_duration_s=10.0,
                base_sample=base,
            )),
        ],
    )


def _antutu_cpu_long(duration_s: float, seed: int) -> LoadGenerator:
    """The 1.5-hour AnTuTu CPU run: long sustained compute bursts."""
    return BurstyLoad(
        duration_s=duration_s,
        seed=seed,
        busy_demand=0.90,
        idle_demand=0.35,
        busy_duration_s=60.0,
        idle_duration_s=12.0,
        base_sample=WorkloadSample(gpu_activity=0.05, radio_activity=0.05, brightness=0.8),
    )


def _antutu_tester(duration_s: float, seed: int) -> LoadGenerator:
    """AnTuTu Tester stress application: continuous saturating CPU load.

    This is the workload the paper uses for the comfort-threshold user study:
    it exceeds every participant's comfort limit while staying below the
    CPU-temperature threshold of the built-in power management.
    """
    return ConstantLoad(
        duration_s=duration_s,
        seed=seed,
        demand=0.97,
        demand_jitter=0.02,
        base_sample=WorkloadSample(gpu_activity=0.35, radio_activity=0.10, brightness=0.85),
    )


def _gfxbench(duration_s: float, seed: int) -> LoadGenerator:
    """GFXBench 3.0: GPU-bound rendering, moderate CPU driver load."""
    return ConstantLoad(
        duration_s=duration_s,
        seed=seed,
        demand=0.40,
        demand_jitter=0.05,
        base_sample=WorkloadSample(gpu_activity=0.75, radio_activity=0.02, brightness=0.85),
    )


def _vellamo(duration_s: float, seed: int) -> LoadGenerator:
    """Vellamo browser benchmark: scripted page loads, bursty CPU plus radio."""
    return BurstyLoad(
        duration_s=duration_s,
        seed=seed,
        busy_demand=0.72,
        idle_demand=0.20,
        busy_duration_s=20.0,
        idle_duration_s=12.0,
        base_sample=WorkloadSample(gpu_activity=0.15, radio_activity=0.35, brightness=0.8),
    )


def _skype(duration_s: float, seed: int) -> LoadGenerator:
    """Skype video call: sustained encode/decode, camera and radio all active.

    This is the paper's headline workload (Figures 2 and 4): a half-hour video
    call heats the back cover past the average comfort limit under the baseline
    governor.
    """
    return ConstantLoad(
        duration_s=duration_s,
        seed=seed,
        demand=0.65,
        demand_jitter=0.06,
        base_sample=WorkloadSample(gpu_activity=0.50, radio_activity=0.90, brightness=0.85),
    )


def _youtube(duration_s: float, seed: int) -> LoadGenerator:
    """YouTube playback: hardware-assisted decode, light CPU, steady radio."""
    return ConstantLoad(
        duration_s=duration_s,
        seed=seed,
        demand=0.20,
        demand_jitter=0.05,
        base_sample=WorkloadSample(gpu_activity=0.05, radio_activity=0.25, brightness=0.5),
    )


def _record(duration_s: float, seed: int) -> LoadGenerator:
    """Built-in video recording: camera pipeline plus encoder, sustained."""
    return ConstantLoad(
        duration_s=duration_s,
        seed=seed,
        demand=0.50,
        demand_jitter=0.05,
        base_sample=WorkloadSample(gpu_activity=0.25, radio_activity=0.55, brightness=0.8),
    )


def _charging(duration_s: float, seed: int) -> LoadGenerator:
    """Idle charging: screen off, charger connected, battery self-heating."""
    return ConstantLoad(
        duration_s=duration_s,
        seed=seed,
        demand=0.06,
        demand_jitter=0.02,
        base_sample=WorkloadSample(
            gpu_activity=0.0,
            radio_activity=0.05,
            screen_on=False,
            brightness=0.0,
            charging=True,
            touching=False,
        ),
    )


def _game(duration_s: float, seed: int) -> LoadGenerator:
    """The Legend of Holy Archer: mixed CPU/GPU game load with loading pauses."""
    return BurstyLoad(
        duration_s=duration_s,
        seed=seed,
        busy_demand=0.75,
        idle_demand=0.30,
        busy_duration_s=90.0,
        idle_duration_s=15.0,
        base_sample=WorkloadSample(gpu_activity=0.45, radio_activity=0.15, brightness=0.9),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

SKYPE_BENCHMARK = "skype"
ANTUTU_TESTER_BENCHMARK = "antutu_tester"

BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec("antutu_cpu", "AnTuTu CPU", 30 * MINUTE, _antutu_cpu,
                      "AnTuTu CPU sub-test: saturating compute bursts."),
        BenchmarkSpec("antutu_cpu_gpu_ram", "AnTuTu CPU-GPU-RAM", 20 * MINUTE, _antutu_cpu_gpu_ram,
                      "AnTuTu combined CPU/GPU/memory sub-tests."),
        BenchmarkSpec("antutu_user_exp", "AnTuTu User Exp.", 15 * MINUTE, _antutu_user_exp,
                      "AnTuTu user-experience sub-test: UI and media."),
        BenchmarkSpec("antutu_full", "AnTuTu Full Set", 25 * MINUTE, _antutu_full,
                      "Full AnTuTu benchmark set, all phases."),
        BenchmarkSpec("antutu_cpu_long", "AnTuTu CPU (1.5 hours)", 90 * MINUTE, _antutu_cpu_long,
                      "Extended 1.5-hour AnTuTu CPU run."),
        BenchmarkSpec("antutu_tester", "AnTuTu Tester", 45 * MINUTE, _antutu_tester,
                      "AnTuTu Tester stress application (user-study workload)."),
        BenchmarkSpec("gfxbench", "GFXBench", 8 * MINUTE, _gfxbench,
                      "GFXBench 3.0 GPU-bound rendering."),
        BenchmarkSpec("vellamo", "Vellamo", 10 * MINUTE, _vellamo,
                      "Vellamo browser/system benchmark."),
        BenchmarkSpec("skype", "Skype", 30 * MINUTE, _skype,
                      "Half-hour Skype video call (Figures 2 and 4)."),
        BenchmarkSpec("youtube", "Youtube", 30 * MINUTE, _youtube,
                      "YouTube video playback."),
        BenchmarkSpec("record", "Record", 30 * MINUTE, _record,
                      "Built-in camera video recording."),
        BenchmarkSpec("charging", "Charging", 30 * MINUTE, _charging,
                      "Idle charging with the screen off."),
        BenchmarkSpec("game", "Game", 30 * MINUTE, _game,
                      "The Legend of Holy Archer gameplay."),
    ]
}

#: Benchmark names in the paper's Table 1 column order.
BENCHMARK_NAMES: Tuple[str, ...] = tuple(BENCHMARKS)


def build_benchmark(name: str, seed: int = 0, duration_s: Optional[float] = None) -> WorkloadTrace:
    """Build one benchmark trace by name.

    Raises:
        KeyError: if the name is not one of the thirteen paper benchmarks.
    """
    try:
        spec = BENCHMARKS[name]
    except KeyError:
        known = ", ".join(BENCHMARK_NAMES)
        raise KeyError(f"unknown benchmark {name!r}; known benchmarks: {known}") from None
    return spec.build(seed=seed, duration_s=duration_s)


def build_all_benchmarks(seed: int = 0) -> List[WorkloadTrace]:
    """Build all thirteen benchmark traces (in Table 1 order)."""
    return [BENCHMARKS[name].build(seed=seed) for name in BENCHMARK_NAMES]
