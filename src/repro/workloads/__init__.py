"""Synthetic workload traces and the thirteen paper benchmarks."""

from .benchmarks import (
    ANTUTU_TESTER_BENCHMARK,
    BENCHMARK_NAMES,
    BENCHMARKS,
    SKYPE_BENCHMARK,
    BenchmarkSpec,
    build_all_benchmarks,
    build_benchmark,
)
from .generators import (
    BurstyLoad,
    ConstantLoad,
    LoadGenerator,
    PeriodicLoad,
    PhasedLoad,
    RampLoad,
)
from .trace import TraceArrays, WorkloadSample, WorkloadTrace

__all__ = [
    "TraceArrays",
    "ANTUTU_TESTER_BENCHMARK",
    "BENCHMARK_NAMES",
    "BENCHMARKS",
    "SKYPE_BENCHMARK",
    "BenchmarkSpec",
    "build_all_benchmarks",
    "build_benchmark",
    "BurstyLoad",
    "ConstantLoad",
    "LoadGenerator",
    "PeriodicLoad",
    "PhasedLoad",
    "RampLoad",
    "WorkloadSample",
    "WorkloadTrace",
]
