"""Synthetic workload generators.

The paper drives the phone with real Android applications; offline we need
activity traces with the same qualitative structure.  The generators in this
module produce seeded, reproducible traces of the common application shapes:

* :class:`ConstantLoad` — steady activity (video playback, video call);
* :class:`BurstyLoad` — alternating busy bursts and quieter gaps with jitter
  (benchmark suites, games with loading screens);
* :class:`PeriodicLoad` — square-wave activity (benchmark sub-tests run
  back-to-back);
* :class:`RampLoad` — demand rising (or falling) linearly over the trace
  (warm-up phases, progressive benchmark stages);
* :class:`PhasedLoad` — an arbitrary sequence of named phases, each with its
  own generator, concatenated.

Every generator draws per-sample jitter from a seeded
:class:`numpy.random.Generator`, so a (generator, seed) pair always produces
the same trace.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .trace import WorkloadSample, WorkloadTrace

__all__ = [
    "LoadGenerator",
    "ConstantLoad",
    "BurstyLoad",
    "PeriodicLoad",
    "RampLoad",
    "PhasedLoad",
]


def _clip01(value: float) -> float:
    return float(min(1.0, max(0.0, value)))


@dataclass
class LoadGenerator(abc.ABC):
    """Base class for trace generators.

    Attributes:
        duration_s: length of the generated trace in seconds.
        sample_period_s: sampling period of the generated trace.
        base_sample: template for the non-CPU fields (GPU, radio, screen,
            charging, touching); generators typically vary only ``cpu_demand``
            and sometimes ``gpu_activity`` around this template.
        demand_jitter: standard deviation of gaussian jitter added to the CPU
            demand of every sample.
        seed: RNG seed.
    """

    duration_s: float = 600.0
    sample_period_s: float = 1.0
    base_sample: WorkloadSample = field(default_factory=WorkloadSample)
    demand_jitter: float = 0.03
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if self.demand_jitter < 0:
            raise ValueError("demand_jitter must be non-negative")

    @property
    def num_samples(self) -> int:
        """Number of samples the generator will emit."""
        return max(1, int(round(self.duration_s / self.sample_period_s)))

    def generate(self, name: str, description: str = "") -> WorkloadTrace:
        """Generate the trace."""
        rng = np.random.default_rng(self.seed)
        samples: List[WorkloadSample] = []
        for index in range(self.num_samples):
            time_s = index * self.sample_period_s
            demand = self._demand_at(index, time_s, rng)
            if self.demand_jitter > 0:
                demand += float(rng.normal(0.0, self.demand_jitter))
            sample = self._decorate(
                replace(self.base_sample, cpu_demand=_clip01(demand)), index, time_s, rng
            )
            samples.append(sample)
        return WorkloadTrace(
            name=name,
            samples=samples,
            sample_period_s=self.sample_period_s,
            description=description,
        )

    @abc.abstractmethod
    def _demand_at(self, index: int, time_s: float, rng: np.random.Generator) -> float:
        """CPU demand (before jitter) at a sample index."""

    def _decorate(
        self,
        sample: WorkloadSample,
        index: int,
        time_s: float,
        rng: np.random.Generator,
    ) -> WorkloadSample:
        """Hook for subclasses that vary more than CPU demand."""
        return sample


@dataclass
class ConstantLoad(LoadGenerator):
    """Steady CPU demand (video call, playback, sustained compute)."""

    demand: float = 0.5

    def _demand_at(self, index: int, time_s: float, rng: np.random.Generator) -> float:
        return self.demand


@dataclass
class BurstyLoad(LoadGenerator):
    """Alternating busy bursts and quiet gaps with randomized lengths.

    Attributes:
        busy_demand: CPU demand during a burst.
        idle_demand: CPU demand between bursts.
        busy_duration_s: mean burst length.
        idle_duration_s: mean gap length.
        duration_jitter: fractional jitter applied to each burst/gap length.
    """

    busy_demand: float = 0.95
    idle_demand: float = 0.15
    busy_duration_s: float = 30.0
    idle_duration_s: float = 10.0
    duration_jitter: float = 0.3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.busy_duration_s <= 0 or self.idle_duration_s <= 0:
            raise ValueError("burst and gap durations must be positive")
        self._schedule: Optional[List[Tuple[float, float, float]]] = None

    def _build_schedule(self, rng: np.random.Generator) -> List[Tuple[float, float, float]]:
        """Build (start, end, demand) segments covering the whole trace."""
        schedule: List[Tuple[float, float, float]] = []
        time_s = 0.0
        busy = True
        while time_s < self.duration_s:
            mean = self.busy_duration_s if busy else self.idle_duration_s
            jitter = 1.0 + float(rng.uniform(-self.duration_jitter, self.duration_jitter))
            length = max(self.sample_period_s, mean * jitter)
            demand = self.busy_demand if busy else self.idle_demand
            schedule.append((time_s, time_s + length, demand))
            time_s += length
            busy = not busy
        return schedule

    def generate(self, name: str, description: str = "") -> WorkloadTrace:
        # The burst schedule must be drawn once per trace, before per-sample
        # jitter, so it is rebuilt here with a dedicated RNG stream.
        self._schedule = self._build_schedule(np.random.default_rng(self.seed + 1))
        return super().generate(name, description)

    def _demand_at(self, index: int, time_s: float, rng: np.random.Generator) -> float:
        if not self._schedule:
            self._schedule = self._build_schedule(np.random.default_rng(self.seed + 1))
        for start, end, demand in self._schedule:
            if start <= time_s < end:
                return demand
        return self._schedule[-1][2]


@dataclass
class PeriodicLoad(LoadGenerator):
    """Deterministic square wave between a high and a low demand."""

    high_demand: float = 0.9
    low_demand: float = 0.2
    period_s: float = 60.0
    duty_cycle: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0.0 < self.duty_cycle < 1.0:
            raise ValueError("duty_cycle must be strictly between 0 and 1")

    def _demand_at(self, index: int, time_s: float, rng: np.random.Generator) -> float:
        phase = (time_s % self.period_s) / self.period_s
        return self.high_demand if phase < self.duty_cycle else self.low_demand


@dataclass
class RampLoad(LoadGenerator):
    """Demand interpolated linearly from ``start_demand`` to ``end_demand``."""

    start_demand: float = 0.1
    end_demand: float = 1.0

    def _demand_at(self, index: int, time_s: float, rng: np.random.Generator) -> float:
        if self.num_samples <= 1:
            return self.end_demand
        progress = index / (self.num_samples - 1)
        return self.start_demand + progress * (self.end_demand - self.start_demand)


@dataclass
class PhasedLoad(LoadGenerator):
    """A sequence of named phases, each produced by its own generator.

    The phase generators keep their own durations; the outer ``duration_s`` is
    ignored (it is recomputed from the phases).
    """

    phases: Sequence[Tuple[str, LoadGenerator]] = ()

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("PhasedLoad needs at least one phase")
        self.duration_s = sum(gen.duration_s for _, gen in self.phases)
        super().__post_init__()

    def generate(self, name: str, description: str = "") -> WorkloadTrace:
        trace: Optional[WorkloadTrace] = None
        for phase_name, generator in self.phases:
            phase_trace = generator.generate(f"{name}:{phase_name}")
            trace = phase_trace if trace is None else trace.concatenated(phase_trace, name=name)
        assert trace is not None
        return WorkloadTrace(
            name=name,
            samples=list(trace.samples),
            sample_period_s=trace.sample_period_s,
            description=description,
        )

    def _demand_at(self, index: int, time_s: float, rng: np.random.Generator) -> float:
        raise NotImplementedError("PhasedLoad delegates generation to its phases")
