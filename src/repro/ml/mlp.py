"""Multilayer perceptron regressor (the WEKA ``MultilayerPerceptron`` substitute).

A small fully connected network (one hidden tanh layer by default) trained
with mini-batch gradient descent and momentum on standardized inputs and
targets.  It is deliberately modest: the paper's point is that the MLP is
*not* the best model for this data (the tree learners win), so the
reproduction needs a faithful but ordinary MLP rather than a tuned deep net.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import Regressor, register_model
from .dataset import Dataset

__all__ = ["MultilayerPerceptron"]


@register_model
class MultilayerPerceptron(Regressor):
    """Feed-forward neural network for regression.

    Attributes:
        hidden_sizes: neurons per hidden layer.
        epochs: training epochs.
        learning_rate: gradient-descent step size.
        momentum: classical momentum coefficient.
        batch_size: mini-batch size (``None`` = full batch).
        seed: weight-initialisation / shuffling seed.
    """

    name = "multilayer_perceptron"

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (16,),
        epochs: int = 300,
        learning_rate: float = 0.01,
        momentum: float = 0.9,
        batch_size: Optional[int] = 64,
        seed: int = 0,
    ):
        super().__init__()
        if not hidden_sizes or any(h < 1 for h in hidden_sizes):
            raise ValueError("hidden_sizes must contain positive integers")
        if epochs < 1:
            raise ValueError("epochs must be at least 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.batch_size = batch_size
        self.seed = seed

        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0

    # -- training -------------------------------------------------------------------

    def _fit(self, data: Dataset) -> None:
        rng = np.random.default_rng(self.seed)
        x = data.features
        y = data.target

        self._x_mean = x.mean(axis=0)
        self._x_std = x.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0

        xs = (x - self._x_mean) / self._x_std
        ys = (y - self._y_mean) / self._y_std

        sizes = [xs.shape[1], *self.hidden_sizes, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

        velocity_w = [np.zeros_like(w) for w in self._weights]
        velocity_b = [np.zeros_like(b) for b in self._biases]

        n = xs.shape[0]
        batch = self.batch_size or n
        batch = min(batch, n)

        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb = xs[idx], ys[idx]
                grads_w, grads_b = self._gradients(xb, yb)
                for i in range(len(self._weights)):
                    velocity_w[i] = self.momentum * velocity_w[i] - self.learning_rate * grads_w[i]
                    velocity_b[i] = self.momentum * velocity_b[i] - self.learning_rate * grads_b[i]
                    self._weights[i] += velocity_w[i]
                    self._biases[i] += velocity_b[i]

    def _forward(self, xs: np.ndarray) -> Tuple[List[np.ndarray], np.ndarray]:
        """Forward pass; returns hidden activations and the output."""
        activations = [xs]
        h = xs
        for w, b in zip(self._weights[:-1], self._biases[:-1]):
            h = np.tanh(h @ w + b)
            activations.append(h)
        output = h @ self._weights[-1] + self._biases[-1]
        return activations, output

    def _gradients(self, xb: np.ndarray, yb: np.ndarray) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Backpropagation for mean-squared-error loss."""
        activations, output = self._forward(xb)
        n = xb.shape[0]
        delta = (output - yb.reshape(-1, 1)) * (2.0 / n)

        grads_w: List[np.ndarray] = [np.zeros_like(w) for w in self._weights]
        grads_b: List[np.ndarray] = [np.zeros_like(b) for b in self._biases]

        grads_w[-1] = activations[-1].T @ delta
        grads_b[-1] = delta.sum(axis=0)

        for layer in range(len(self._weights) - 2, -1, -1):
            delta = (delta @ self._weights[layer + 1].T) * (1.0 - activations[layer + 1] ** 2)
            grads_w[layer] = activations[layer].T @ delta
            grads_b[layer] = delta.sum(axis=0)
        return grads_w, grads_b

    # -- prediction ------------------------------------------------------------------

    def _predict(self, features: np.ndarray) -> np.ndarray:
        xs = (features - self._x_mean) / self._x_std
        _, output = self._forward(xs)
        return output.ravel() * self._y_std + self._y_mean
