"""REPTree: a fast regression tree with reduced-error pruning.

This is the model the paper ends up deploying on the phone ("REPtree builds
faster than M5P and does not cause halting.  Thus, we have chosen REPtree to
implement").  The WEKA algorithm:

1. grow a binary regression tree by variance reduction, with a minimum number
   of instances per leaf and an optional maximum depth;
2. hold out a fraction of the training data as a *pruning set* and replace any
   subtree whose pruning-set error is not better than that of a leaf with that
   leaf (reduced-error pruning).

Prediction at a leaf is the mean training target of the leaf.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .base import Regressor, register_model
from .dataset import Dataset
from .splitting import find_best_split

__all__ = ["RepTree"]


@dataclass
class _Node:
    """One node of the regression tree."""

    prediction: float
    count: int
    feature_index: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None or self.right is None

    def to_leaf(self) -> None:
        """Collapse this node into a leaf."""
        self.left = None
        self.right = None
        self.feature_index = -1


@register_model
class RepTree(Regressor):
    """Variance-reduction regression tree with reduced-error pruning.

    Attributes:
        min_leaf: minimum instances per leaf.
        max_depth: depth cap (``None`` = unlimited).
        prune: whether to perform reduced-error pruning.
        prune_fraction: fraction of training data held out as the pruning set.
        seed: seed for the train/prune split.
    """

    name = "reptree"

    def __init__(
        self,
        min_leaf: int = 5,
        max_depth: Optional[int] = None,
        prune: bool = True,
        prune_fraction: float = 0.25,
        seed: int = 0,
    ):
        super().__init__()
        if min_leaf < 1:
            raise ValueError("min_leaf must be at least 1")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1 when given")
        if not 0.0 < prune_fraction < 1.0:
            raise ValueError("prune_fraction must be strictly between 0 and 1")
        self.min_leaf = min_leaf
        self.max_depth = max_depth
        self.prune = prune
        self.prune_fraction = prune_fraction
        self.seed = seed
        self._root: Optional[_Node] = None
        self._feature_names: Tuple[str, ...] = ()

    # -- training --------------------------------------------------------------------

    def _fit(self, data: Dataset) -> None:
        self._feature_names = data.feature_names
        if self.prune and len(data) >= 4 * self.min_leaf:
            grow_set, prune_set = data.split(1.0 - self.prune_fraction, seed=self.seed)
        else:
            grow_set, prune_set = data, None

        self._root = self._grow(grow_set.features, grow_set.target, depth=0)
        if prune_set is not None and not prune_set.is_empty:
            self._reduced_error_prune(self._root, prune_set.features, prune_set.target)

    def _grow(self, features: np.ndarray, target: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(np.mean(target)), count=len(target))
        if self.max_depth is not None and depth >= self.max_depth:
            return node
        split = find_best_split(features, target, self.min_leaf)
        if split is None:
            return node

        mask = features[:, split.feature_index] <= split.threshold
        node.feature_index = split.feature_index
        node.threshold = split.threshold
        node.left = self._grow(features[mask], target[mask], depth + 1)
        node.right = self._grow(features[~mask], target[~mask], depth + 1)
        return node

    def _reduced_error_prune(
        self, node: _Node, features: np.ndarray, target: np.ndarray
    ) -> float:
        """Prune bottom-up; returns the pruning-set squared error of the node."""
        leaf_error = float(np.sum((target - node.prediction) ** 2)) if len(target) else 0.0
        if node.is_leaf:
            return leaf_error

        mask = features[:, node.feature_index] <= node.threshold
        left_error = self._reduced_error_prune(node.left, features[mask], target[mask])
        right_error = self._reduced_error_prune(node.right, features[~mask], target[~mask])
        subtree_error = left_error + right_error

        # If turning the subtree into a leaf does not hurt on the pruning set,
        # prefer the simpler tree (<=, as WEKA does).
        if leaf_error <= subtree_error:
            node.to_leaf()
            return leaf_error
        return subtree_error

    # -- prediction -------------------------------------------------------------------

    def _predict(self, features: np.ndarray) -> np.ndarray:
        assert self._root is not None
        return np.array([self._predict_row(row) for row in features])

    def _predict_row(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            if row[node.feature_index] <= node.threshold:
                node = node.left
            else:
                node = node.right
        return node.prediction

    # -- introspection -------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (a single leaf has depth 0)."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("model is not fitted")
        return walk(self._root)

    @property
    def num_leaves(self) -> int:
        """Number of leaves of the fitted tree."""
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        if self._root is None:
            raise RuntimeError("model is not fitted")
        return walk(self._root)

    def describe(self, max_depth: int = 4) -> str:
        """A textual rendering of the top of the tree (for debugging / docs)."""
        if self._root is None:
            return "RepTree (not fitted)"
        lines: List[str] = []

        def walk(node: _Node, depth: int, prefix: str) -> None:
            indent = "  " * depth
            if node.is_leaf or depth >= max_depth:
                lines.append(f"{indent}{prefix}-> {node.prediction:.2f} (n={node.count})")
                return
            name = self._feature_names[node.feature_index]
            lines.append(f"{indent}{prefix}{name} <= {node.threshold:.3f}?")
            walk(node.left, depth + 1, "yes: ")
            walk(node.right, depth + 1, "no:  ")

        walk(self._root, 0, "")
        return "\n".join(lines)
