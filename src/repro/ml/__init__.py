"""From-scratch ML substrate replacing the paper's use of WEKA.

Four regressor families (matching the four WEKA algorithms the paper
evaluates), a dataset container, the paper's error-rate metric and a k-fold
cross-validation harness.
"""

from .base import MODEL_REGISTRY, Regressor, create_model, register_model
from .crossval import CrossValidationResult, cross_validate, kfold_indices
from .dataset import Dataset
from .linear import LinearRegression
from .m5p import M5ModelTree
from .metrics import (
    error_rate,
    error_rate_with_deadband,
    mean_absolute_error,
    r2_score,
    regression_report,
    root_mean_squared_error,
)
from .mlp import MultilayerPerceptron
from .reptree import RepTree
from .splitting import SplitCandidate, find_best_split

__all__ = [
    "MODEL_REGISTRY",
    "Regressor",
    "create_model",
    "register_model",
    "CrossValidationResult",
    "cross_validate",
    "kfold_indices",
    "Dataset",
    "LinearRegression",
    "M5ModelTree",
    "error_rate",
    "error_rate_with_deadband",
    "mean_absolute_error",
    "r2_score",
    "regression_report",
    "root_mean_squared_error",
    "MultilayerPerceptron",
    "RepTree",
    "SplitCandidate",
    "find_best_split",
]
