"""M5P: a model tree with linear regression models in its leaves.

The second-best (and, with the 1 °C deadband, best) learner in the paper.  The
algorithm follows Quinlan's M5 as implemented in WEKA's ``M5P``:

1. grow a binary tree using *standard deviation reduction* as the split
   criterion;
2. fit a linear model in every interior node and leaf (using the features that
   appear in the subtree below the node);
3. prune bottom-up: replace a subtree with its node's linear model when the
   complexity-penalised estimated error of the linear model is no worse than
   that of the subtree;
4. smooth predictions along the path from the leaf to the root, blending each
   node's linear model with the prediction coming from below
   (``p' = (n*p + k*q) / (n + k)`` with the standard k = 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from .base import Regressor, register_model
from .dataset import Dataset
from .splitting import find_best_split

__all__ = ["M5ModelTree"]


@dataclass
class _LinearModel:
    """A per-node linear model restricted to a subset of features."""

    feature_indices: Tuple[int, ...]
    coefficients: np.ndarray
    intercept: float

    def predict(self, row: np.ndarray) -> float:
        if not self.feature_indices:
            return self.intercept
        return float(row[list(self.feature_indices)] @ self.coefficients + self.intercept)

    def predict_many(self, features: np.ndarray) -> np.ndarray:
        if not self.feature_indices:
            return np.full(features.shape[0], self.intercept)
        return features[:, list(self.feature_indices)] @ self.coefficients + self.intercept

    @property
    def num_parameters(self) -> int:
        return len(self.feature_indices) + 1


def _fit_linear(
    features: np.ndarray, target: np.ndarray, feature_indices: Sequence[int], ridge: float = 1e-6
) -> _LinearModel:
    """Fit a ridge-stabilised linear model on a subset of feature columns."""
    indices = tuple(sorted(set(int(i) for i in feature_indices)))
    if not indices or len(target) == 0:
        value = float(np.mean(target)) if len(target) else 0.0
        return _LinearModel(feature_indices=(), coefficients=np.empty(0), intercept=value)
    x = features[:, list(indices)]
    n, d = x.shape
    xb = np.hstack([x, np.ones((n, 1))])
    gram = xb.T @ xb + ridge * np.eye(d + 1)
    solution, *_ = np.linalg.lstsq(gram, xb.T @ target, rcond=None)
    return _LinearModel(
        feature_indices=indices,
        coefficients=solution[:d],
        intercept=float(solution[d]),
    )


@dataclass
class _Node:
    """One node of the model tree."""

    count: int
    mean: float
    model: Optional[_LinearModel] = None
    feature_index: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None or self.right is None

    def to_leaf(self) -> None:
        self.left = None
        self.right = None
        self.feature_index = -1

    def subtree_features(self) -> Set[int]:
        """Indices of the split features used anywhere below (and at) this node."""
        features: Set[int] = set()
        if not self.is_leaf:
            features.add(self.feature_index)
            features |= self.left.subtree_features()
            features |= self.right.subtree_features()
        return features


@register_model
class M5ModelTree(Regressor):
    """M5-style model tree.

    Attributes:
        min_leaf: minimum instances per leaf.
        max_depth: optional depth cap.
        prune: enable complexity-penalised pruning.
        smoothing: enable Quinlan's path smoothing.
        smoothing_constant: the ``k`` in the smoothing formula (WEKA uses 15).
    """

    name = "m5p"

    def __init__(
        self,
        min_leaf: int = 8,
        max_depth: Optional[int] = None,
        prune: bool = True,
        smoothing: bool = True,
        smoothing_constant: float = 15.0,
    ):
        super().__init__()
        if min_leaf < 2:
            raise ValueError("min_leaf must be at least 2 (a leaf fits a linear model)")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1 when given")
        if smoothing_constant <= 0:
            raise ValueError("smoothing_constant must be positive")
        self.min_leaf = min_leaf
        self.max_depth = max_depth
        self.prune = prune
        self.smoothing = smoothing
        self.smoothing_constant = smoothing_constant
        self._root: Optional[_Node] = None
        self._feature_names: Tuple[str, ...] = ()
        self._global_std: float = 1.0

    # -- training ---------------------------------------------------------------------

    def _fit(self, data: Dataset) -> None:
        self._feature_names = data.feature_names
        self._global_std = float(np.std(data.target)) or 1.0
        self._root = self._grow(data.features, data.target, depth=0)
        self._attach_models(self._root, data.features, data.target)
        if self.prune:
            self._prune(self._root, data.features, data.target)

    def _grow(self, features: np.ndarray, target: np.ndarray, depth: int) -> _Node:
        node = _Node(count=len(target), mean=float(np.mean(target)))
        # M5 stops splitting when the node is nearly pure relative to the
        # global spread (the classic 5% rule) or too small.
        if (
            len(target) < 2 * self.min_leaf
            or float(np.std(target)) < 0.05 * self._global_std
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        split = find_best_split(features, target, self.min_leaf)
        if split is None:
            return node
        mask = features[:, split.feature_index] <= split.threshold
        node.feature_index = split.feature_index
        node.threshold = split.threshold
        node.left = self._grow(features[mask], target[mask], depth + 1)
        node.right = self._grow(features[~mask], target[~mask], depth + 1)
        return node

    def _attach_models(self, node: _Node, features: np.ndarray, target: np.ndarray) -> None:
        """Fit a linear model at every node, restricted to its subtree's split features."""
        subtree_features = node.subtree_features()
        node.model = _fit_linear(features, target, subtree_features)
        if node.is_leaf:
            return
        mask = features[:, node.feature_index] <= node.threshold
        self._attach_models(node.left, features[mask], target[mask])
        self._attach_models(node.right, features[~mask], target[~mask])

    def _prune(self, node: _Node, features: np.ndarray, target: np.ndarray) -> float:
        """Bottom-up pruning; returns the (penalised) error estimate of the node."""
        n = max(len(target), 1)
        model_error = self._penalised_error(node.model, features, target)
        if node.is_leaf:
            return model_error

        mask = features[:, node.feature_index] <= node.threshold
        left_error = self._prune(node.left, features[mask], target[mask])
        right_error = self._prune(node.right, features[~mask], target[~mask])
        left_n = max(int(mask.sum()), 1)
        right_n = max(n - int(mask.sum()), 1)
        subtree_error = (left_n * left_error + right_n * right_error) / n

        if model_error <= subtree_error:
            node.to_leaf()
            return model_error
        return subtree_error

    def _penalised_error(
        self, model: Optional[_LinearModel], features: np.ndarray, target: np.ndarray
    ) -> float:
        """Mean absolute error inflated by the M5 complexity factor (n+v)/(n-v)."""
        if model is None or len(target) == 0:
            return 0.0
        predictions = model.predict_many(features)
        mae = float(np.mean(np.abs(target - predictions)))
        n = len(target)
        v = model.num_parameters
        if n > v:
            return mae * (n + v) / (n - v)
        return mae * 2.0

    # -- prediction -------------------------------------------------------------------

    def _predict(self, features: np.ndarray) -> np.ndarray:
        assert self._root is not None
        return np.array([self._predict_row(row) for row in features])

    def _predict_row(self, row: np.ndarray) -> float:
        assert self._root is not None
        path: List[_Node] = []
        node = self._root
        while not node.is_leaf:
            path.append(node)
            node = node.left if row[node.feature_index] <= node.threshold else node.right

        prediction = node.model.predict(row) if node.model else node.mean
        if not self.smoothing:
            return prediction

        # Quinlan smoothing: blend the prediction upward along the path.
        child_count = node.count
        for parent in reversed(path):
            parent_prediction = parent.model.predict(row) if parent.model else parent.mean
            prediction = (
                child_count * prediction + self.smoothing_constant * parent_prediction
            ) / (child_count + self.smoothing_constant)
            child_count = parent.count
        return prediction

    # -- introspection ------------------------------------------------------------------

    @property
    def num_leaves(self) -> int:
        """Number of leaf linear models."""
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        if self._root is None:
            raise RuntimeError("model is not fitted")
        return walk(self._root)

    @property
    def depth(self) -> int:
        """Depth of the fitted tree."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("model is not fitted")
        return walk(self._root)
