"""Tabular dataset container for the regression models.

WEKA's ARFF instances are replaced by a small NumPy-backed :class:`Dataset`
that couples a feature matrix with a target vector and keeps feature names
around so trained trees / linear models can be printed meaningfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """A regression dataset: features ``X``, target ``y`` and their names.

    Attributes:
        features: (n_samples, n_features) float array.
        target: (n_samples,) float array.
        feature_names: one name per feature column.
        target_name: name of the predicted quantity.
    """

    features: np.ndarray
    target: np.ndarray
    feature_names: Tuple[str, ...]
    target_name: str = "target"

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.target = np.asarray(self.target, dtype=float)
        if self.features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if self.target.ndim != 1:
            raise ValueError("target must be a 1-D array")
        if self.features.shape[0] != self.target.shape[0]:
            raise ValueError("features and target must have the same number of rows")
        if len(self.feature_names) != self.features.shape[1]:
            raise ValueError("feature_names must match the number of feature columns")
        self.feature_names = tuple(self.feature_names)

    # -- basic protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        """Number of feature columns."""
        return self.features.shape[1]

    @property
    def is_empty(self) -> bool:
        """True when there are no rows."""
        return len(self) == 0

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping[str, float]],
        feature_names: Sequence[str],
        target_name: str,
    ) -> "Dataset":
        """Build a dataset from dict-like records (e.g. system-log rows)."""
        rows: List[List[float]] = []
        targets: List[float] = []
        for record in records:
            rows.append([float(record[name]) for name in feature_names])
            targets.append(float(record[target_name]))
        features = np.array(rows, dtype=float) if rows else np.empty((0, len(feature_names)))
        return cls(
            features=features,
            target=np.array(targets, dtype=float),
            feature_names=tuple(feature_names),
            target_name=target_name,
        )

    # -- manipulation -----------------------------------------------------------------

    def subset(self, indices: Sequence[int] | np.ndarray) -> "Dataset":
        """A new dataset containing only the given row indices."""
        idx = np.asarray(indices, dtype=int)
        return Dataset(
            features=self.features[idx],
            target=self.target[idx],
            feature_names=self.feature_names,
            target_name=self.target_name,
        )

    def shuffled(self, seed: int = 0) -> "Dataset":
        """A row-shuffled copy (deterministic for a given seed)."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        return self.subset(order)

    def split(self, fraction: float, seed: Optional[int] = None) -> Tuple["Dataset", "Dataset"]:
        """Split into two datasets: the first gets ``fraction`` of the rows.

        When ``seed`` is given the rows are shuffled first; otherwise the split
        preserves row order (useful for time-ordered data).
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be strictly between 0 and 1")
        data = self.shuffled(seed) if seed is not None else self
        cut = int(round(fraction * len(data)))
        cut = max(1, min(len(data) - 1, cut))
        first = data.subset(np.arange(cut))
        second = data.subset(np.arange(cut, len(data)))
        return first, second

    def with_target(self, target: np.ndarray, target_name: str) -> "Dataset":
        """A copy of this dataset with a different target column."""
        return Dataset(
            features=self.features,
            target=np.asarray(target, dtype=float),
            feature_names=self.feature_names,
            target_name=target_name,
        )

    def feature_column(self, name: str) -> np.ndarray:
        """The values of one feature column, by name."""
        try:
            index = self.feature_names.index(name)
        except ValueError:
            raise KeyError(f"unknown feature {name!r}") from None
        return self.features[:, index]

    def describe(self) -> Dict[str, Dict[str, float]]:
        """Per-column summary statistics (min / max / mean / std)."""
        summary: Dict[str, Dict[str, float]] = {}
        for i, name in enumerate(self.feature_names):
            column = self.features[:, i]
            summary[name] = {
                "min": float(np.min(column)) if len(column) else float("nan"),
                "max": float(np.max(column)) if len(column) else float("nan"),
                "mean": float(np.mean(column)) if len(column) else float("nan"),
                "std": float(np.std(column)) if len(column) else float("nan"),
            }
        summary[self.target_name] = {
            "min": float(np.min(self.target)) if len(self.target) else float("nan"),
            "max": float(np.max(self.target)) if len(self.target) else float("nan"),
            "mean": float(np.mean(self.target)) if len(self.target) else float("nan"),
            "std": float(np.std(self.target)) if len(self.target) else float("nan"),
        }
        return summary
