"""Linear regression (the WEKA ``LinearRegression`` substitute).

Ordinary least squares with an optional ridge penalty, solved in closed form.
The paper finds linear regression "relatively poor in accuracy" compared to the
tree learners on the thermal data — the skin temperature is a piecewise, lagged
function of the instantaneous features, which a single global hyperplane cannot
capture — and the reproduction shows the same ordering.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import Regressor, register_model
from .dataset import Dataset

__all__ = ["LinearRegression"]


@register_model
class LinearRegression(Regressor):
    """Ordinary least squares / ridge regression.

    Attributes:
        ridge: L2 penalty strength; 0 gives plain OLS.  A tiny ridge keeps the
            normal equations well conditioned when features are collinear
            (e.g. CPU frequency and utilization under the ondemand governor).
    """

    name = "linear_regression"

    def __init__(self, ridge: float = 1e-8):
        super().__init__()
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.ridge = ridge
        self._coefficients: Optional[np.ndarray] = None
        self._intercept: float = 0.0
        self._feature_names: Tuple[str, ...] = ()

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted feature coefficients."""
        if self._coefficients is None:
            raise RuntimeError("model is not fitted")
        return self._coefficients.copy()

    @property
    def intercept(self) -> float:
        """Fitted intercept."""
        if self._coefficients is None:
            raise RuntimeError("model is not fitted")
        return self._intercept

    def _fit(self, data: Dataset) -> None:
        x = data.features
        y = data.target
        n, d = x.shape
        # Augment with a bias column and solve the (optionally ridge-regularised)
        # normal equations.  The bias term is not penalised.
        xb = np.hstack([x, np.ones((n, 1))])
        gram = xb.T @ xb
        if self.ridge > 0:
            penalty = self.ridge * np.eye(d + 1)
            penalty[d, d] = 0.0
            gram = gram + penalty
        solution, *_ = np.linalg.lstsq(gram, xb.T @ y, rcond=None)
        self._coefficients = solution[:d]
        self._intercept = float(solution[d])
        self._feature_names = data.feature_names

    #: Matrix predictions equal row-by-row predictions bit-for-bit (see
    #: _predict), so batched callers never need a per-row exactness loop.
    batch_row_invariant = True

    def _predict(self, features: np.ndarray) -> np.ndarray:
        # Left-to-right column sweep rather than `features @ coefficients`:
        # BLAS dot kernels use FMA/SIMD horizontal sums whose rounding varies
        # with the build and (via kernel selection) the operand shapes, so a
        # matrix predict could differ from single-row predicts in the last
        # ulp.  The explicit sweep evaluates every row in one fixed order,
        # making predictions reproducible and independent of how rows are
        # batched — at identical cost for the handful of features used here.
        coefficients = self._coefficients
        result = features[:, 0] * coefficients[0]
        for j in range(1, features.shape[1]):
            result = result + features[:, j] * coefficients[j]
        return result + self._intercept

    def describe(self) -> str:
        """Human-readable equation of the fitted model."""
        if self._coefficients is None:
            return "LinearRegression (not fitted)"
        terms = [
            f"{coef:+.4f}*{name}"
            for coef, name in zip(self._coefficients, self._feature_names)
        ]
        return "y = " + " ".join(terms) + f" {self._intercept:+.4f}"
