"""Shared split-search machinery for the tree learners (REPTree, M5P).

Both tree learners grow binary regression trees by picking, at every node, the
(feature, threshold) pair that maximally reduces the target variance (REPTree)
or standard deviation (M5) of the node.  The search below is exact: for every
feature it sorts the values, sweeps all mid-point thresholds and evaluates the
split criterion incrementally, which keeps tree construction O(n log n · d)
per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["SplitCandidate", "find_best_split"]


@dataclass(frozen=True)
class SplitCandidate:
    """The best split found for a node."""

    feature_index: int
    threshold: float
    score: float
    left_count: int
    right_count: int


def find_best_split(
    features: np.ndarray,
    target: np.ndarray,
    min_leaf: int,
) -> Optional[SplitCandidate]:
    """Find the variance-reduction-maximising binary split of a node.

    Args:
        features: (n, d) feature matrix of the node's instances.
        target: (n,) target values of the node's instances.
        min_leaf: minimum number of instances each side must keep.

    Returns:
        The best :class:`SplitCandidate`, or ``None`` when no legal split
        improves on the unsplit node (e.g. all targets equal, or too few
        instances).
    """
    n, d = features.shape
    if n < 2 * min_leaf:
        return None
    total_var = float(np.var(target))
    if total_var <= 0.0:
        return None

    best: Optional[SplitCandidate] = None
    total_sum = float(target.sum())
    total_sq = float(np.square(target).sum())

    for feature_index in range(d):
        column = features[:, feature_index]
        order = np.argsort(column, kind="mergesort")
        sorted_values = column[order]
        sorted_target = target[order]

        # Prefix sums let us evaluate every threshold in O(1).
        prefix_sum = np.cumsum(sorted_target)
        prefix_sq = np.cumsum(np.square(sorted_target))

        for i in range(min_leaf - 1, n - min_leaf):
            # Only split between distinct feature values.
            if sorted_values[i] == sorted_values[i + 1]:
                continue
            left_n = i + 1
            right_n = n - left_n
            left_sum = float(prefix_sum[i])
            left_sq = float(prefix_sq[i])
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq

            left_var = left_sq / left_n - (left_sum / left_n) ** 2
            right_var = right_sq / right_n - (right_sum / right_n) ** 2
            weighted = (left_n * left_var + right_n * right_var) / n
            reduction = total_var - weighted
            if reduction <= 0:
                continue

            if best is None or reduction > best.score:
                threshold = 0.5 * (sorted_values[i] + sorted_values[i + 1])
                best = SplitCandidate(
                    feature_index=feature_index,
                    threshold=float(threshold),
                    score=float(reduction),
                    left_count=left_n,
                    right_count=right_n,
                )
    return best
