"""K-fold cross validation, mirroring the paper's evaluation protocol.

The paper trains a single global model on data from all benchmarks and
evaluates it with WEKA's 10-fold cross-validation, collecting the expected and
predicted values of every fold and computing the average error rate over all
of them.  :func:`cross_validate` does exactly that: it returns the
out-of-fold prediction for every instance, plus aggregate metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from .base import Regressor
from .dataset import Dataset
from .metrics import regression_report

__all__ = ["kfold_indices", "CrossValidationResult", "cross_validate"]


def kfold_indices(
    num_samples: int, folds: int = 10, seed: int = 0
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold (train_indices, test_indices) pairs.

    Args:
        num_samples: dataset size.
        folds: number of folds (10 in the paper).
        seed: shuffling seed.

    Returns:
        One (train, test) index pair per fold; every sample appears in exactly
        one test fold.
    """
    if folds < 2:
        raise ValueError("folds must be at least 2")
    if num_samples < folds:
        raise ValueError("cannot have more folds than samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_samples)
    fold_slices = np.array_split(order, folds)
    pairs: List[Tuple[np.ndarray, np.ndarray]] = []
    for i, test_idx in enumerate(fold_slices):
        train_idx = np.concatenate([fold_slices[j] for j in range(folds) if j != i])
        pairs.append((train_idx, test_idx))
    return pairs


@dataclass
class CrossValidationResult:
    """Out-of-fold predictions and aggregate metrics for one model."""

    model_name: str
    expected: np.ndarray
    predicted: np.ndarray
    fold_metrics: List[Dict[str, float]] = field(default_factory=list)

    @property
    def metrics(self) -> Dict[str, float]:
        """Aggregate metrics computed over every out-of-fold prediction."""
        return regression_report(self.expected, self.predicted)

    @property
    def error_rate_pct(self) -> float:
        """The paper's Equation (1) error rate, in percent."""
        return self.metrics["error_rate_pct"]

    @property
    def error_rate_deadband_pct(self) -> float:
        """Error rate ignoring differences below 1 °C."""
        return self.metrics["error_rate_deadband_pct"]


def cross_validate(
    model_factory: Callable[[], Regressor],
    data: Dataset,
    folds: int = 10,
    seed: int = 0,
) -> CrossValidationResult:
    """Run k-fold cross validation for one model family.

    Args:
        model_factory: zero-argument callable returning a fresh, unfitted model
            (a fresh model is trained for every fold).
        data: the full dataset.
        folds: number of folds (default 10, as in the paper).
        seed: fold-assignment seed.

    Returns:
        A :class:`CrossValidationResult` with every instance's out-of-fold
        prediction, in the original row order of ``data``.
    """
    if data.is_empty:
        raise ValueError("cannot cross-validate an empty dataset")

    predictions = np.full(len(data), np.nan)
    fold_metrics: List[Dict[str, float]] = []
    model_name = ""

    for train_idx, test_idx in kfold_indices(len(data), folds=folds, seed=seed):
        model = model_factory()
        model_name = model.name
        model.fit(data.subset(train_idx))
        fold_predictions = model.predict(data.features[test_idx])
        predictions[test_idx] = fold_predictions
        fold_metrics.append(regression_report(data.target[test_idx], fold_predictions))

    return CrossValidationResult(
        model_name=model_name,
        expected=data.target.copy(),
        predicted=predictions,
        fold_metrics=fold_metrics,
    )
