"""Common interface for the regression models (the WEKA-algorithm substitutes)."""

from __future__ import annotations

import abc
from typing import Dict, Type

import numpy as np

from .dataset import Dataset

__all__ = ["Regressor", "MODEL_REGISTRY", "register_model", "create_model"]


class Regressor(abc.ABC):
    """Base class for all regression models.

    The interface intentionally mirrors how WEKA classifiers are used in the
    paper: ``fit`` on a training :class:`Dataset`, then ``predict`` feature
    rows.  Models must raise ``RuntimeError`` when asked to predict before
    being fitted.
    """

    #: Name used by the registry / benchmark harness (mirrors the WEKA name).
    name: str = "regressor"

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has completed."""
        return self._fitted

    def fit(self, data: Dataset) -> "Regressor":
        """Train the model on a dataset and return ``self``."""
        if data.is_empty:
            raise ValueError("cannot fit on an empty dataset")
        self._fit(data)
        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a (n_samples, n_features) feature matrix."""
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} must be fitted before predicting")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return self._predict(features)

    def predict_one(self, features: np.ndarray) -> float:
        """Predict a single row of features."""
        return float(self.predict(np.atleast_2d(features))[0])

    @abc.abstractmethod
    def _fit(self, data: Dataset) -> None:
        """Model-specific training."""

    @abc.abstractmethod
    def _predict(self, features: np.ndarray) -> np.ndarray:
        """Model-specific prediction on a validated 2-D feature matrix."""


#: Registry of model name → class, mirroring the four WEKA algorithms the paper uses.
MODEL_REGISTRY: Dict[str, Type[Regressor]] = {}


def register_model(cls: Type[Regressor]) -> Type[Regressor]:
    """Class decorator adding a model to :data:`MODEL_REGISTRY`."""
    MODEL_REGISTRY[cls.name] = cls
    return cls


def create_model(name: str, **kwargs) -> Regressor:
    """Instantiate a registered model by name."""
    try:
        cls = MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
    return cls(**kwargs)
