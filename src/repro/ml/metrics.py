"""Regression metrics, including the paper's error-rate definition.

The paper evaluates its predictors with Equation (1):

    error rate = |expected - predicted| / expected * 100

averaged over all predictions, and additionally reports a variant that ignores
absolute errors below 1 °C "as humans are less sensitive in that range".  Both
are implemented here, together with the standard MAE / RMSE / R² metrics used
in the test suite.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "error_rate",
    "error_rate_with_deadband",
    "mean_absolute_error",
    "root_mean_squared_error",
    "r2_score",
    "regression_report",
]


def _validate(expected: np.ndarray, predicted: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    expected = np.asarray(expected, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if expected.shape != predicted.shape:
        raise ValueError("expected and predicted must have the same shape")
    if expected.size == 0:
        raise ValueError("metrics need at least one sample")
    return expected, predicted


def error_rate(expected: np.ndarray, predicted: np.ndarray) -> float:
    """Average percentage error per the paper's Equation (1).

    Samples whose expected value is zero are excluded (the relative error is
    undefined there); temperature data in °C never hits zero in practice.
    """
    expected, predicted = _validate(expected, predicted)
    mask = expected != 0
    if not np.any(mask):
        raise ValueError("error_rate is undefined when every expected value is zero")
    rates = np.abs(expected[mask] - predicted[mask]) / np.abs(expected[mask]) * 100.0
    return float(np.mean(rates))


def error_rate_with_deadband(
    expected: np.ndarray, predicted: np.ndarray, deadband_c: float = 1.0
) -> float:
    """Equation (1) error rate with small absolute errors treated as exact.

    The paper's refinement: differences smaller than ``deadband_c`` (1 °C by
    default) are ignored because users cannot perceive them, i.e. they
    contribute zero error.
    """
    expected, predicted = _validate(expected, predicted)
    if deadband_c < 0:
        raise ValueError("deadband_c must be non-negative")
    mask = expected != 0
    if not np.any(mask):
        raise ValueError("error rate is undefined when every expected value is zero")
    diff = np.abs(expected[mask] - predicted[mask])
    diff = np.where(diff < deadband_c, 0.0, diff)
    rates = diff / np.abs(expected[mask]) * 100.0
    return float(np.mean(rates))


def mean_absolute_error(expected: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error."""
    expected, predicted = _validate(expected, predicted)
    return float(np.mean(np.abs(expected - predicted)))


def root_mean_squared_error(expected: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error."""
    expected, predicted = _validate(expected, predicted)
    return float(np.sqrt(np.mean((expected - predicted) ** 2)))


def r2_score(expected: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination (1 is perfect, 0 is the mean predictor)."""
    expected, predicted = _validate(expected, predicted)
    ss_res = float(np.sum((expected - predicted) ** 2))
    ss_tot = float(np.sum((expected - np.mean(expected)) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def regression_report(expected: np.ndarray, predicted: np.ndarray) -> Dict[str, float]:
    """All metrics in one dictionary."""
    return {
        "error_rate_pct": error_rate(expected, predicted),
        "error_rate_deadband_pct": error_rate_with_deadband(expected, predicted),
        "mae": mean_absolute_error(expected, predicted),
        "rmse": root_mean_squared_error(expected, predicted),
        "r2": r2_score(expected, predicted),
    }
