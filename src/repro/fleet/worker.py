"""Fleet worker process: run assigned work units into a private shard store.

Spawned by the coordinator via :mod:`multiprocessing` with the full cell list
(plans travel out-of-band at spawn time; the wire protocol only carries cell
*indices*, keeping assignment messages tiny and machine-portable).  Each
worker owns one :class:`~repro.runtime.streamstore.StreamingResultStore`
directory: reopening it after a crash heals any truncated final line and
reports the already-committed cells back in the ``hello`` message, so the
coordinator never reassigns work that survived on disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.runtime.executors import VectorizedExecutor
from repro.runtime.plan import ExperimentCell, ExperimentPlan
from repro.runtime.runner import BatchRunner
from repro.runtime.streamstore import StreamingResultStore

from .protocol import recv_msg, send_msg


def worker_main(
    address,
    authkey: bytes,
    worker_id: str,
    cells: Sequence[ExperimentCell],
    directory,
    max_cells_per_shard: int = 64,
    exact: bool = True,
) -> int:
    """Entry point for a fleet worker process (must stay module-level picklable)."""
    from multiprocessing.connection import Client

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    store = StreamingResultStore(directory, max_cells_per_shard=max_cells_per_shard)
    conn = Client(address, authkey=authkey)
    runner = BatchRunner(executor=VectorizedExecutor(exact=exact))
    import os

    send_msg(
        conn,
        {
            "type": "hello",
            "worker_id": worker_id,
            "pid": os.getpid(),
            "completed": sorted(store.completed_cell_ids),
        },
    )
    try:
        while True:
            message = recv_msg(conn)
            if message is None or message["type"] == "shutdown":
                break
            if message["type"] != "assign":  # pragma: no cover - defensive
                continue
            unit_id = message["unit_id"]
            subcells = [cells[i] for i in message["indices"]]
            try:
                plan = ExperimentPlan(subcells)
                runner.run_stream(plan, store, skip=store.completed_cell_ids)
                store.flush()
            except Exception as exc:
                # The store may hold a partially written cell; report, then
                # die so the coordinator harvests the directory (the next
                # open drops the truncated line) and reassigns the remainder.
                try:
                    send_msg(
                        conn,
                        {"type": "unit_failed", "unit_id": unit_id, "error": str(exc)},
                    )
                finally:
                    store.close()
                return 1
            send_msg(
                conn,
                {
                    "type": "unit_done",
                    "unit_id": unit_id,
                    "executed": [c.cell_id for c in subcells],
                },
            )
        send_msg(conn, {"type": "bye", "worker_id": worker_id})
    except (EOFError, OSError):  # coordinator went away; exit quietly
        pass
    finally:
        store.close()
        conn.close()
    return 0
