"""Per-user policy state persistence for the serving front end.

The paper's whole point is that comfort limits are *per user* and take real
interaction time to converge (the quantile tracker needs dozens of feedback
events).  A long-running service therefore cannot afford to re-converge a
user on every reconnect: :class:`SessionStateStore` persists each user's
adapter state (converged limit, event counts) plus the live controller limit
as versioned JSON, and a returning user's fresh session is warm-started from
it — the session opens *at* the converged limit with the tracker's gain
decay intact, so adaptation resumes instead of restarting.

Snapshots reuse the adapters' ``snapshot_batch_state``/``restore_batch_state``
pair (the same state surface the vectorized policy plane mirrors), so the
persistence format cannot drift from the adapters' actual state variables.

The store shards users across hashed JSON files (``crc32(user_key) % shards``)
and tracks which shards changed since the last save, so a periodic checkpoint
of a 100k-user fleet rewrites only the shards whose sessions actually moved
instead of serialising the whole population every time.  Legacy single-file
stores (version 1) are migrated to the sharded layout on first save.
"""

from __future__ import annotations

import json
import os
import uuid
import zlib
from pathlib import Path
from typing import Dict, List, Optional

STATE_VERSION = 2
LEGACY_STATE_VERSION = 1
STATE_FILENAME = "session-state.json"
DEFAULT_SHARDS = 64


def _shard_filename(index: int) -> str:
    return f"session-state-{index:03d}.json"


def snapshot_session_state(session) -> Optional[dict]:
    """JSON-able per-user policy state for one live session, or ``None``.

    ``None`` means the session has nothing durable (bare-governor policies
    carry no comfort limit at all).
    """
    # A plane-resident session's live state is in the pool's columnar arrays;
    # flush it back onto the manager/adapter objects before reading them.
    sync = getattr(session, "sync_policy_state", None)
    if sync is not None:
        sync()
    manager = session.manager
    if manager is None:
        return None
    state: dict = {}
    limit = session.current_limit_c
    if limit is not None:
        state["limit_c"] = float(limit)
    adapter = getattr(manager, "adapter", None)
    if adapter is not None and hasattr(adapter, "snapshot_batch_state"):
        state["adapter"] = {
            "kind": getattr(adapter, "name", type(adapter).__name__),
            **adapter.snapshot_batch_state(),
        }
    # The session's lifetime counters travel with the limit: a returning
    # user's capped_fraction must not silently restart at zero.
    if state and session.feed_count:
        state["feeds"] = int(session.feed_count)
        state["caps"] = int(session.cap_count)
    return state or None


def restore_session_state(session, state: dict) -> bool:
    """Warm-start a fresh session from a persisted snapshot.

    Returns ``True`` when state was applied.  A snapshot taken under a
    different adapter kind than the session's current policy is ignored
    (restoring a tracker's limit into a different strategy would leave the
    adapter and controller incoherent).  On a successful restore the
    session's feed/cap counters resume from the snapshot too, so
    ``capped_fraction`` keeps counting across reconnects.
    """
    applied = _restore_policy_state(session, state)
    if applied and "feeds" in state:
        session.restore_counters(state["feeds"], state.get("caps", 0))
    if applied:
        # The restore mutated manager/adapter objects directly; reload the
        # session's plane row so the columnar copy picks the new state up.
        refresh = getattr(session, "refresh_policy_state", None)
        if refresh is not None:
            refresh()
    return applied


def _restore_policy_state(session, state: dict) -> bool:
    """The adapter/limit half of :func:`restore_session_state`."""
    manager = session.manager
    if manager is None or not state:
        return False
    adapter = getattr(manager, "adapter", None)
    saved_adapter = state.get("adapter")
    limit = state.get("limit_c")

    if adapter is not None:
        if not saved_adapter:
            return False
        kind = getattr(adapter, "name", type(adapter).__name__)
        if saved_adapter.get("kind") != kind or not hasattr(
            adapter, "restore_batch_state"
        ):
            return False
        fields = {k: v for k, v in saved_adapter.items() if k != "kind"}
        try:
            adapter.restore_batch_state(**fields)
        except TypeError:  # snapshot from an incompatible adapter version
            return False
        limit = adapter.current_limit_c

    if limit is None:
        return adapter is not None
    inner = getattr(manager, "inner", manager)
    set_limit = getattr(inner, "set_skin_limit", None)
    if set_limit is None:
        return adapter is not None
    set_limit(float(limit))
    return True


class SessionStateStore:
    """Versioned, sharded JSON store of per-user policy state.

    Users hash onto ``n_shards`` files (``session-state-NNN.json``) via
    ``crc32(user_key) % n_shards``.  :meth:`record` marks a shard dirty only
    when the snapshot actually differs from what is stored, and :meth:`save`
    rewrites dirty shards exclusively — each through a temp file + fsync +
    :func:`os.replace`, so a crash mid-save leaves every shard either fully
    old or fully new (the same durability rule as the predictor artifact
    cache).  A legacy single-file ``session-state.json`` (version 1) is read
    transparently and migrated to shards on the first save.
    """

    def __init__(self, directory, n_shards: int = DEFAULT_SHARDS):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n_shards = int(n_shards)
        self._shards: List[Dict[str, dict]] = []
        self._dirty: set = set()
        self._pending_legacy: Optional[Path] = None
        self.last_save_shard_count = 0
        self.total_shards_written = 0

        shard_paths = sorted(self.directory.glob("session-state-[0-9]*.json"))
        legacy = self.directory / STATE_FILENAME
        if shard_paths:
            self._load_shards(shard_paths)
        else:
            self._shards = [{} for _ in range(self.n_shards)]
            if legacy.exists():
                self._load_legacy(legacy)

    # -- layout ------------------------------------------------------------------

    def _shard_of(self, user_key: str) -> int:
        return zlib.crc32(user_key.encode("utf-8")) % self.n_shards

    def shard_path(self, index: int) -> Path:
        return self.directory / _shard_filename(index)

    def _load_shards(self, shard_paths) -> None:
        declared: Optional[int] = None
        payloads = []
        for path in shard_paths:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except ValueError as exc:
                raise ValueError(f"corrupt session state file {path}: {exc}") from exc
            if payload.get("version") != STATE_VERSION:
                raise ValueError(
                    f"session state file {path} has version "
                    f"{payload.get('version')!r}; this build reads {STATE_VERSION}"
                )
            shards = payload.get("shards")
            if declared is None:
                if not isinstance(shards, int) or shards < 1:
                    raise ValueError(
                        f"corrupt session state file {path}: bad shard count {shards!r}"
                    )
                declared = shards
            elif shards != declared:
                raise ValueError(
                    f"corrupt session state file {path}: shard count {shards!r} "
                    f"disagrees with {declared} declared by a sibling shard"
                )
            payloads.append((path, payload))
        # The on-disk layout wins over the constructor argument: re-hashing an
        # existing store under a different modulus would strand stale copies.
        self.n_shards = int(declared)
        self._shards = [{} for _ in range(self.n_shards)]
        for path, payload in payloads:
            index = payload.get("shard")
            for user_key, state in dict(payload.get("users", {})).items():
                if self._shard_of(user_key) != index:
                    raise ValueError(
                        f"corrupt session state file {path}: user {user_key!r} "
                        f"does not hash to shard {index!r}"
                    )
                self._shards[index][user_key] = state

    def _load_legacy(self, path: Path) -> None:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ValueError(f"corrupt session state file {path}: {exc}") from exc
        if payload.get("version") != LEGACY_STATE_VERSION:
            raise ValueError(
                f"session state file {path} has version "
                f"{payload.get('version')!r}; this build reads "
                f"{LEGACY_STATE_VERSION} (legacy) or {STATE_VERSION} (sharded)"
            )
        for user_key, state in dict(payload.get("users", {})).items():
            index = self._shard_of(user_key)
            self._shards[index][user_key] = state
            self._dirty.add(index)
        self._pending_legacy = path

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def users(self):
        """Sorted user keys with persisted state."""
        return sorted(key for shard in self._shards for key in shard)

    @property
    def dirty_shard_count(self) -> int:
        """Shards with unsaved changes."""
        return len(self._dirty)

    def state_for(self, user_key: str) -> Optional[dict]:
        state = self._shards[self._shard_of(user_key)].get(user_key)
        return json.loads(json.dumps(state)) if state is not None else None

    # -- recording and restoring -------------------------------------------------

    def record(self, user_key: str, session) -> bool:
        """Snapshot one session's state under ``user_key`` (in memory)."""
        snapshot = snapshot_session_state(session)
        if snapshot is None:
            return False
        index = self._shard_of(user_key)
        shard = self._shards[index]
        if shard.get(user_key) != snapshot:
            shard[user_key] = snapshot
            self._dirty.add(index)
        return True

    def restore(self, user_key: str, session) -> bool:
        """Warm-start ``session`` from the persisted state, if any."""
        state = self._shards[self._shard_of(user_key)].get(user_key)
        if state is None:
            return False
        return restore_session_state(session, state)

    def save(self) -> int:
        """Atomically persist every dirty shard; returns shards written."""
        written = 0
        for index in sorted(self._dirty):
            payload = {
                "version": STATE_VERSION,
                "shards": self.n_shards,
                "shard": index,
                "users": self._shards[index],
            }
            path = self.shard_path(index)
            tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
            try:
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, separators=(",", ":"), sort_keys=True)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            finally:
                if tmp.exists():  # pragma: no cover - only on a failed write
                    tmp.unlink()
            written += 1
        self._dirty.clear()
        if self._pending_legacy is not None:
            # Migration completes only once the sharded copies are durable.
            try:
                self._pending_legacy.unlink()
            except FileNotFoundError:  # pragma: no cover - racing cleanup
                pass
            self._pending_legacy = None
        self.last_save_shard_count = written
        self.total_shards_written += written
        return written
