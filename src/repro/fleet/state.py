"""Per-user policy state persistence for the serving front end.

The paper's whole point is that comfort limits are *per user* and take real
interaction time to converge (the quantile tracker needs dozens of feedback
events).  A long-running service therefore cannot afford to re-converge a
user on every reconnect: :class:`SessionStateStore` persists each user's
adapter state (converged limit, event counts) plus the live controller limit
as versioned JSON, and a returning user's fresh session is warm-started from
it — the session opens *at* the converged limit with the tracker's gain
decay intact, so adaptation resumes instead of restarting.

Snapshots reuse the adapters' ``snapshot_batch_state``/``restore_batch_state``
pair (the same state surface the vectorized policy plane mirrors), so the
persistence format cannot drift from the adapters' actual state variables.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Dict, Optional

STATE_VERSION = 1
STATE_FILENAME = "session-state.json"


def snapshot_session_state(session) -> Optional[dict]:
    """JSON-able per-user policy state for one live session, or ``None``.

    ``None`` means the session has nothing durable (bare-governor policies
    carry no comfort limit at all).
    """
    manager = session.manager
    if manager is None:
        return None
    state: dict = {}
    limit = session.current_limit_c
    if limit is not None:
        state["limit_c"] = float(limit)
    adapter = getattr(manager, "adapter", None)
    if adapter is not None and hasattr(adapter, "snapshot_batch_state"):
        state["adapter"] = {
            "kind": getattr(adapter, "name", type(adapter).__name__),
            **adapter.snapshot_batch_state(),
        }
    # The session's lifetime counters travel with the limit: a returning
    # user's capped_fraction must not silently restart at zero.
    if state and session.feed_count:
        state["feeds"] = int(session.feed_count)
        state["caps"] = int(session.cap_count)
    return state or None


def restore_session_state(session, state: dict) -> bool:
    """Warm-start a fresh session from a persisted snapshot.

    Returns ``True`` when state was applied.  A snapshot taken under a
    different adapter kind than the session's current policy is ignored
    (restoring a tracker's limit into a different strategy would leave the
    adapter and controller incoherent).  On a successful restore the
    session's feed/cap counters resume from the snapshot too, so
    ``capped_fraction`` keeps counting across reconnects.
    """
    applied = _restore_policy_state(session, state)
    if applied and "feeds" in state:
        session.restore_counters(state["feeds"], state.get("caps", 0))
    return applied


def _restore_policy_state(session, state: dict) -> bool:
    """The adapter/limit half of :func:`restore_session_state`."""
    manager = session.manager
    if manager is None or not state:
        return False
    adapter = getattr(manager, "adapter", None)
    saved_adapter = state.get("adapter")
    limit = state.get("limit_c")

    if adapter is not None:
        if not saved_adapter:
            return False
        kind = getattr(adapter, "name", type(adapter).__name__)
        if saved_adapter.get("kind") != kind or not hasattr(
            adapter, "restore_batch_state"
        ):
            return False
        fields = {k: v for k, v in saved_adapter.items() if k != "kind"}
        try:
            adapter.restore_batch_state(**fields)
        except TypeError:  # snapshot from an incompatible adapter version
            return False
        limit = adapter.current_limit_c

    if limit is None:
        return adapter is not None
    inner = getattr(manager, "inner", manager)
    set_limit = getattr(inner, "set_skin_limit", None)
    if set_limit is None:
        return adapter is not None
    set_limit(float(limit))
    return True


class SessionStateStore:
    """Versioned JSON store of per-user policy state, written atomically.

    One file (``session-state.json``) maps user keys to snapshots.  Saves go
    through a temp file + fsync + :func:`os.replace`, so a crash mid-save
    leaves the previous complete state in place — the same durability rule
    as the predictor artifact cache.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / STATE_FILENAME
        self._users: Dict[str, dict] = {}
        if self.path.exists():
            try:
                payload = json.loads(self.path.read_text(encoding="utf-8"))
            except ValueError as exc:
                raise ValueError(f"corrupt session state file {self.path}: {exc}") from exc
            if payload.get("version") != STATE_VERSION:
                raise ValueError(
                    f"session state file {self.path} has version "
                    f"{payload.get('version')!r}; this build reads {STATE_VERSION}"
                )
            self._users = dict(payload.get("users", {}))

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._users)

    @property
    def users(self):
        """Sorted user keys with persisted state."""
        return sorted(self._users)

    def state_for(self, user_key: str) -> Optional[dict]:
        state = self._users.get(user_key)
        return json.loads(json.dumps(state)) if state is not None else None

    # -- recording and restoring -------------------------------------------------

    def record(self, user_key: str, session) -> bool:
        """Snapshot one session's state under ``user_key`` (in memory)."""
        snapshot = snapshot_session_state(session)
        if snapshot is None:
            return False
        self._users[user_key] = snapshot
        return True

    def restore(self, user_key: str, session) -> bool:
        """Warm-start ``session`` from the persisted state, if any."""
        state = self._users.get(user_key)
        if state is None:
            return False
        return restore_session_state(session, state)

    def save(self) -> None:
        """Atomically persist every recorded snapshot."""
        payload = {"version": STATE_VERSION, "users": self._users}
        tmp = self.path.with_name(f".{self.path.name}.{uuid.uuid4().hex}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"), sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        finally:
            if tmp.exists():  # pragma: no cover - only on a failed write
                tmp.unlink()
