"""Fleet smoke: a tiny distributed sweep with a worker killed mid-run.

What ``make fleet-smoke`` (and CI via ``make check``) executes::

    python -m repro.fleet.smoke

The scenario, end to end:

1. build a 20-cell population plan whose policy carries a *trained*
   predictor recipe, and point ``REPRO_ARTIFACT_DIR`` at a fresh directory —
   so both fleet workers race to train/store the same artifact (the
   concurrent-cache path);
2. run the plan through a 2-worker :class:`FleetCoordinator`, SIGKILLing one
   worker as soon as the pipeline is warm (fault injection via the
   coordinator's event hook) — its incomplete unit must be harvested from
   disk and reassigned;
3. run the same plan single-process through the vectorized executor into a
   reference store, and require the merged fleet store to be **byte-identical**
   (modulo the nondeterministic per-line wall time);
4. re-run the coordinator with ``resume=True`` and require zero executions —
   the merged store satisfies the whole plan from disk.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
from pathlib import Path

from repro.api.specs import ManagerSpec, PolicySpec, PredictorSpec
from repro.runtime import BatchRunner, ExperimentCell, ExperimentPlan, StreamingResultStore
from repro.runtime.artifacts import ARTIFACT_ENV_VAR
from repro.users import paper_population
from repro.workloads.benchmarks import build_benchmark

from .coordinator import FleetCoordinator
from .merge import stores_byte_identical

#: Tiny trained recipe (one short skype run, linear regression) — enough to
#: make every worker resolve the same artifact-cache key.
SMOKE_RECIPE = {
    "model": "linear_regression",
    "seed": 0,
    "duration_scale": 0.02,
    "benchmarks": ["skype"],
}


def build_smoke_plan(repeat: int = 2, duration_s: float = 30.0) -> ExperimentPlan:
    """``repeat`` copies of the ten-user study population on one tiny trace."""
    trace = build_benchmark("skype", seed=0, duration_s=duration_s)
    policy = PolicySpec(
        manager=ManagerSpec("usta", predictor=PredictorSpec("trained", params=SMOKE_RECIPE))
    )
    plan = ExperimentPlan()
    for rep in range(repeat):
        for profile in paper_population():
            plan.add(
                ExperimentCell(
                    cell_id=f"{profile.user_id}/r{rep}",
                    trace=trace,
                    policy=policy.for_user(profile),
                    seed=rep,
                    metadata={"user_id": profile.user_id, "rep": rep},
                )
            )
    return plan


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", default=".fleet-smoke", help="scratch directory (wiped first)"
    )
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    root = Path(args.dir)
    if root.exists():
        shutil.rmtree(root)
    root.mkdir(parents=True)
    os.environ[ARTIFACT_ENV_VAR] = str(root / "artifacts")

    plan = build_smoke_plan()
    fleet_dir = root / "fleet"
    ref_dir = root / "reference"

    # Fault injection: once the third unit is handed out (both workers are
    # warm and mid-flight), SIGKILL a worker that is NOT the one receiving it.
    state = {"killed": None}

    def hook(event: str, info: dict) -> None:
        if event == "assign" and state["killed"] is None and info["unit"] >= 2:
            victims = [
                wid
                for wid in coordinator.live_worker_ids()
                if wid != info["worker_id"]
            ]
            if victims:
                coordinator.kill_worker(victims[0])
                state["killed"] = victims[0]
                print(f"fleet-smoke: killed {victims[0]} mid-run")

    coordinator = FleetCoordinator(
        plan, fleet_dir, workers=args.workers, unit_size=2, on_event=hook
    )
    report = coordinator.run()
    print(
        f"fleet-smoke: {report.executed}/{report.n_cells} cells via "
        f"{report.workers_spawned} worker(s) in {report.elapsed_s:.1f}s "
        f"({report.worker_deaths} death(s), {report.reassigned_units} unit(s) "
        f"reassigned -> {report.reassigned_cells} cell(s))"
    )

    failures = []
    if state["killed"] is None:
        failures.append("fault injection never fired (no worker was killed)")
    if report.worker_deaths < 1:
        failures.append("no worker death was observed")
    if report.executed != report.n_cells:
        failures.append(f"executed {report.executed} of {report.n_cells} cells")

    # Reference: the same plan, single process, vectorized, streamed.
    ref_store = StreamingResultStore(ref_dir)
    BatchRunner.for_jobs(None).run_stream(plan, ref_store)
    ref_store.close()

    diff = stores_byte_identical(fleet_dir, ref_dir)
    if diff is not None:
        failures.append(f"merged store differs from single-process run: {diff}")

    merged = StreamingResultStore(fleet_dir)
    if not merged.resumed_via_index:
        failures.append("merged store did not open via its index.jsonl sidecar")
    missing = {cell.cell_id for cell in plan} - merged.completed_cell_ids
    merged.close()
    if missing:
        failures.append(f"merged store is missing cells: {sorted(missing)[:5]}")

    # Resume: everything must be answered from the merged store.
    resumed = FleetCoordinator(plan, fleet_dir, workers=args.workers).run(resume=True)
    if resumed.executed != 0:
        failures.append(f"resume re-executed {resumed.executed} cell(s)")
    if resumed.resumed != report.n_cells:
        failures.append(f"resume only found {resumed.resumed} persisted cell(s)")

    if failures:
        for failure in failures:
            print(f"fleet-smoke: FAIL - {failure}")
        return 1
    print(
        "fleet-smoke: PASS - killed-worker reassignment, byte-identical merge, "
        "and index resume all verified"
    )
    shutil.rmtree(root)
    return 0


if __name__ == "__main__":
    sys.exit(main())
