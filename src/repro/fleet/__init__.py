"""Fleet execution: distributed sweeps and the persistent serving front end.

Two coordinated layers on top of the batched runtime and the policy API:

* **Distributed sweep executor** — :class:`~repro.fleet.coordinator.FleetCoordinator`
  partitions an :class:`~repro.runtime.plan.ExperimentPlan` into work units and
  dispatches them over a socket-ready JSON protocol to worker processes.  Each
  worker streams its cells through the vectorized executor into a private
  :class:`~repro.runtime.streamstore.StreamingResultStore` shard directory;
  a killed worker's incomplete units are harvested via the ``index.jsonl``
  resume sidecar and reassigned, and :func:`~repro.fleet.merge.merge_stores`
  compacts every shard directory into one indexed store whose lines are
  byte-identical (modulo wall times) to a single-process streaming run.

* **Serving front end** — :class:`~repro.fleet.service.PolicyService` exposes
  the :class:`~repro.api.session.SessionPool` over a line-delimited-JSON
  asyncio socket server (``repro serve --listen HOST:PORT``), with a
  :class:`~repro.fleet.state.SessionStateStore` persisting each user's
  adapter/controller state on checkpoint and shutdown so a returning user
  warm-starts at their converged comfort limit.
"""

from .coordinator import FleetCoordinator, FleetError, FleetReport
from .merge import MergeError, MergeReport, merge_stores, stores_byte_identical
from .service import PolicyService, run_service
from .state import (
    SessionStateStore,
    restore_session_state,
    snapshot_session_state,
)

__all__ = [
    "FleetCoordinator",
    "FleetError",
    "FleetReport",
    "MergeError",
    "MergeReport",
    "PolicyService",
    "SessionStateStore",
    "merge_stores",
    "restore_session_state",
    "run_service",
    "snapshot_session_state",
    "stores_byte_identical",
]
