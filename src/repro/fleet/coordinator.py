"""Fleet coordinator: partition a plan into work units and dispatch to workers.

The coordinator owns a loopback-TCP :class:`multiprocessing.connection.Listener`
(HMAC authkey handshake — the protocol is socket-ready for off-box workers;
only the spawn step is local today), spawns N worker processes, and feeds
them work units dynamically: a worker that finishes early gets the next unit,
so stragglers don't serialise the sweep.

Fault handling is disk-truth based.  Every worker streams into its own
``<dest>/workers/worker-XX/`` :class:`StreamingResultStore`; when a worker
dies (killed, OOM, or a unit raised), the coordinator re-opens that directory
— which heals any truncated final line via the ``index.jsonl`` sidecar — and
requeues only the cells that did *not* survive on disk.  Units carry a retry
budget so a deterministically failing cell aborts the sweep instead of
looping forever.  After the queue drains, :func:`~repro.fleet.merge.merge_stores`
compacts every worker directory into the destination in plan order, and the
worker directories are deleted.
"""

from __future__ import annotations

import os
import secrets
import shutil
import signal
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import AuthenticationError, Process
from multiprocessing.connection import Listener, wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.runtime.plan import ExperimentPlan

from .merge import MergeReport, collect_cell_locations, harvest_completed_ids, merge_stores
from .protocol import ProtocolError, recv_msg, send_msg
from .worker import worker_main

WORKERS_DIRNAME = "workers"


class FleetError(RuntimeError):
    """The fleet sweep could not complete (exhausted retries or workers)."""


@dataclass
class _Unit:
    unit_id: int
    indices: List[int]
    attempts: int = 0
    last_error: Optional[str] = None


@dataclass
class _WorkerHandle:
    worker_id: str
    process: Process
    directory: Path
    conn: object = None
    unit: Optional[_Unit] = None
    # connecting -> idle <-> running; stopping (failure reported, awaiting
    # exit); dead (harvested); done (clean shutdown).
    state: str = "connecting"

    @property
    def live(self) -> bool:
        return self.state in ("connecting", "idle", "running")


@dataclass(frozen=True)
class FleetReport:
    """What a fleet sweep did, for CLI footers and tests."""

    n_cells: int
    resumed: int
    executed: int
    n_units: int
    unit_size: int
    workers: int
    workers_spawned: int
    worker_deaths: int
    reassigned_units: int
    reassigned_cells: int
    elapsed_s: float
    merge: Optional[MergeReport] = None
    executed_ids: tuple = field(default_factory=tuple)


class FleetCoordinator:
    """Distribute an :class:`ExperimentPlan` across local worker processes.

    Args:
        plan: the cells to execute (must be picklable, as for ``--jobs``).
        directory: destination store directory (the merged, indexed store
            ends up here; workers stream into ``directory/workers/``).
        workers: number of concurrent worker processes.
        unit_size: cells per work unit; default targets ~4 units per worker
            so reassignment after a death stays cheap.
        max_cells_per_shard: shard rotation for worker and merged stores
            (must match the single-process run for byte-identical shards).
        exact: ``False`` selects the blocked approximate solver
            (``--approx-solve``), as in :meth:`BatchRunner.for_jobs`.
        max_unit_retries: how many times a unit may be reassigned after
            worker deaths before the sweep aborts.
        on_event: optional ``callback(event: str, info: dict)`` observability
            hook (events: spawn/hello/assign/unit_done/unit_failed/reassign/
            death/merge).  Used by the smoke test to kill a worker mid-run.
    """

    def __init__(
        self,
        plan: ExperimentPlan,
        directory,
        workers: int = 2,
        *,
        unit_size: Optional[int] = None,
        max_cells_per_shard: int = 64,
        exact: bool = True,
        max_unit_retries: int = 3,
        max_respawns: Optional[int] = None,
        on_event: Optional[Callable[[str, dict], None]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if unit_size is not None and unit_size < 1:
            raise ValueError("unit_size must be at least 1")
        self.plan = plan
        self.directory = Path(directory)
        self.workers = workers
        self.unit_size = unit_size
        self.max_cells_per_shard = max_cells_per_shard
        self.exact = exact
        self.max_unit_retries = max_unit_retries
        self.max_respawns = workers if max_respawns is None else max_respawns
        self.on_event = on_event
        self._handles: Dict[str, _WorkerHandle] = {}

    # -- observability -----------------------------------------------------------

    def _emit(self, event: str, **info) -> None:
        if self.on_event is not None:
            self.on_event(event, info)

    def live_worker_ids(self) -> List[str]:
        """Ids of workers currently spawned and not yet dead/done."""
        return [wid for wid, h in self._handles.items() if h.live]

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL a live worker (fault-injection hook for tests/smoke)."""
        handle = self._handles[worker_id]
        if handle.process.pid is not None and handle.process.is_alive():
            os.kill(handle.process.pid, signal.SIGKILL)

    # -- the run -----------------------------------------------------------------

    def run(self, resume: bool = False) -> FleetReport:
        start = time.perf_counter()
        cells = list(self.plan)
        cell_ids = [cell.cell_id for cell in cells]
        self.directory.mkdir(parents=True, exist_ok=True)
        workers_root = self.directory / WORKERS_DIRNAME

        worker_dirs = (
            sorted(p for p in workers_root.iterdir() if p.is_dir())
            if workers_root.is_dir()
            else []
        )
        harvest_sources = [self.directory, *worker_dirs]
        completed = set(harvest_completed_ids(harvest_sources)) & set(cell_ids)
        if completed and not resume:
            raise FleetError(
                f"store {self.directory} already holds {len(completed)} of this "
                "plan's cells; pass resume=True (CLI: --resume) to continue it"
            )
        resumed = len(completed)

        pending = [i for i, cell in enumerate(cells) if cell.cell_id not in completed]
        unit_size = self.unit_size or max(
            1, -(-len(pending) // (self.workers * 4)) if pending else 1
        )
        units = deque(
            _Unit(unit_id=n, indices=list(pending[i : i + unit_size]))
            for n, i in enumerate(range(0, len(pending), unit_size))
        )
        n_units = len(units)

        executed_ids: List[str] = []
        stats = {"spawned": 0, "deaths": 0, "reassigned_units": 0, "reassigned_cells": 0}
        if units:
            self._dispatch(cells, units, completed, executed_ids, workers_root, stats)

        post_dirs = (
            sorted(p for p in workers_root.iterdir() if p.is_dir())
            if workers_root.is_dir()
            else []
        )
        merge_report = merge_stores(
            post_dirs,
            self.directory,
            cell_ids,
            max_cells_per_shard=self.max_cells_per_shard,
        )
        self._emit("merge", n_cells=merge_report.n_cells, n_shards=merge_report.n_shards)
        if workers_root.exists():
            shutil.rmtree(workers_root)

        return FleetReport(
            n_cells=len(cells),
            resumed=resumed,
            executed=len(executed_ids),
            n_units=n_units,
            unit_size=unit_size,
            workers=self.workers,
            workers_spawned=stats["spawned"],
            worker_deaths=stats["deaths"],
            reassigned_units=stats["reassigned_units"],
            reassigned_cells=stats["reassigned_cells"],
            elapsed_s=time.perf_counter() - start,
            merge=merge_report,
            executed_ids=tuple(executed_ids),
        )

    # -- dispatch loop -----------------------------------------------------------

    def _dispatch(self, cells, queue, completed, executed_ids, workers_root, stats):
        authkey = secrets.token_bytes(16)
        listener = Listener(("127.0.0.1", 0), authkey=authkey)
        try:
            # A timeout on the accept socket keeps the loop responsive to
            # worker deaths that happen before the HMAC handshake completes.
            listener._listener._socket.settimeout(0.25)
        except AttributeError:  # pragma: no cover - stdlib internals moved
            pass
        address = listener.address

        def spawn() -> _WorkerHandle:
            worker_id = f"worker-{stats['spawned']:02d}"
            directory = workers_root / worker_id
            process = Process(
                target=worker_main,
                args=(
                    address,
                    authkey,
                    worker_id,
                    cells,
                    str(directory),
                    self.max_cells_per_shard,
                    self.exact,
                ),
                daemon=True,
                name=f"repro-fleet-{worker_id}",
            )
            process.start()
            handle = _WorkerHandle(worker_id, process, directory)
            self._handles[worker_id] = handle
            stats["spawned"] += 1
            self._emit("spawn", worker_id=worker_id, pid=process.pid)
            return handle

        def handle_death(handle: _WorkerHandle) -> None:
            if not handle.live and handle.state != "stopping":
                return
            stats["deaths"] += 1
            handle.state = "dead"
            if handle.conn is not None:
                handle.conn.close()
            handle.process.join(timeout=10)
            # Disk is the truth: whatever the worker committed before dying
            # stays (reopening its store heals a truncated final line).
            survived, _ = collect_cell_locations(handle.directory)
            fresh = [c for c in survived if c not in completed]
            executed_ids.extend(fresh)
            completed.update(fresh)
            unit = handle.unit
            handle.unit = None
            self._emit("death", worker_id=handle.worker_id, unit=unit and unit.unit_id)
            if unit is not None:
                remaining = [i for i in unit.indices if cells[i].cell_id not in completed]
                unit.attempts += 1
                if unit.attempts > self.max_unit_retries:
                    raise FleetError(
                        f"unit {unit.unit_id} failed {unit.attempts} times "
                        f"(last error: {unit.last_error or 'worker died'}); aborting"
                    )
                if remaining:
                    unit.indices = remaining
                    queue.append(unit)
                    stats["reassigned_units"] += 1
                    stats["reassigned_cells"] += len(remaining)
                    self._emit(
                        "reassign",
                        unit=unit.unit_id,
                        cells=[cells[i].cell_id for i in remaining],
                        attempts=unit.attempts,
                    )

        try:
            for _ in range(min(self.workers, len(queue))):
                spawn()

            while queue or any(h.unit is not None for h in self._handles.values()):
                handles = list(self._handles.values())

                # Accept pending connections (hello identifies the worker).
                if any(h.state == "connecting" for h in handles):
                    try:
                        conn = listener.accept()
                    except (socket.timeout, AuthenticationError, OSError, EOFError):
                        pass
                    else:
                        hello = recv_msg(conn)
                        if hello is None:
                            conn.close()  # died pre-hello; its sentinel fires
                        else:
                            if hello.get("type") != "hello":
                                raise ProtocolError(f"expected hello, got {hello!r}")
                            handle = self._handles[hello["worker_id"]]
                            handle.conn = conn
                            handle.state = "idle"
                            fresh = [
                                c for c in hello.get("completed", ()) if c not in completed
                            ]
                            executed_ids.extend(fresh)
                            completed.update(fresh)
                            self._emit(
                                "hello", worker_id=handle.worker_id, pid=hello.get("pid")
                            )

                # Assign units to idle workers.
                for handle in self._handles.values():
                    while handle.state == "idle" and queue:
                        unit = queue.popleft()
                        unit.indices = [
                            i for i in unit.indices if cells[i].cell_id not in completed
                        ]
                        if not unit.indices:
                            continue
                        try:
                            send_msg(
                                handle.conn,
                                {
                                    "type": "assign",
                                    "unit_id": unit.unit_id,
                                    "indices": unit.indices,
                                },
                            )
                        except (BrokenPipeError, OSError):
                            # Died between its last message and this assign;
                            # the unit was never delivered, so requeue it
                            # without charging an attempt.
                            queue.appendleft(unit)
                            handle_death(handle)
                            break
                        handle.unit = unit
                        handle.state = "running"
                        self._emit(
                            "assign",
                            worker_id=handle.worker_id,
                            unit=unit.unit_id,
                            cells=[cells[i].cell_id for i in unit.indices],
                        )

                handles = list(self._handles.values())
                outstanding = any(h.unit is not None for h in handles)
                if not queue and not outstanding:
                    break

                live = [h for h in handles if h.live]
                if not live:
                    if stats["spawned"] >= self.workers + self.max_respawns:
                        raise FleetError(
                            "every fleet worker died and the respawn budget "
                            f"({self.max_respawns}) is exhausted"
                        )
                    spawn()
                    continue

                # Wait for messages or deaths.
                waitables = {}
                for handle in handles:
                    if handle.conn is not None and handle.state in ("idle", "running"):
                        waitables[handle.conn] = handle
                    if handle.live or handle.state == "stopping":
                        waitables[handle.process.sentinel] = handle
                for obj in wait(list(waitables), timeout=0.25):
                    handle = waitables[obj]
                    if obj is getattr(handle, "conn", None):
                        message = recv_msg(obj)
                        if message is None:
                            handle_death(handle)
                        elif message["type"] == "unit_done":
                            fresh = [
                                c for c in message["executed"] if c not in completed
                            ]
                            executed_ids.extend(fresh)
                            completed.update(fresh)
                            handle.unit = None
                            handle.state = "idle"
                            self._emit(
                                "unit_done",
                                worker_id=handle.worker_id,
                                unit=message["unit_id"],
                                cells=message["executed"],
                            )
                        elif message["type"] == "unit_failed":
                            if handle.unit is not None:
                                handle.unit.last_error = message.get("error")
                            handle.state = "stopping"
                            self._emit(
                                "unit_failed",
                                worker_id=handle.worker_id,
                                unit=message["unit_id"],
                                error=message.get("error"),
                            )
                        # bye during drain: ignore
                    else:  # sentinel — the process exited
                        handle_death(handle)

            # Clean shutdown of the survivors.
            for handle in self._handles.values():
                if handle.state == "idle" and handle.conn is not None:
                    try:
                        send_msg(handle.conn, {"type": "shutdown"})
                    except (BrokenPipeError, OSError):
                        pass
        finally:
            # Closing the connections unblocks idle workers (EOF on recv)
            # and makes mid-unit workers exit after their current unit.
            for handle in self._handles.values():
                if handle.conn is not None:
                    handle.conn.close()
            for handle in self._handles.values():
                handle.process.join(timeout=10)
                if handle.process.is_alive():  # pragma: no cover - stuck worker
                    handle.process.terminate()
                    handle.process.join(timeout=5)
                if handle.live or handle.state == "stopping":
                    handle.state = "done"
            listener.close()
