"""Persistent serving front end: a socket server over :class:`SessionPool`.

:class:`PolicyService` is the transport-agnostic core — a request
dictionary in, a response dictionary out — so the same dispatcher serves the
asyncio line-delimited-JSON socket server (``repro serve --listen``), tests,
and the in-process load benchmark without a socket in the loop.

Durability: every session is keyed to a user; on ``close``, ``checkpoint``
(periodic while serving), and shutdown the user's adapter/controller state is
recorded into a :class:`~repro.fleet.state.SessionStateStore`, and ``open``
for a known user warm-starts the fresh session from it.  SIGINT/SIGTERM are
handled as a graceful stop: the server drains, persists state, and flushes
the buffered cap-decision log before exiting — never dying mid-write.

Protocol (one JSON object per line, response mirrors request order)::

    {"op": "open", "session": "s1", "user": "u03"}
    {"op": "feed", "session": "s1", "sample": {"time_s": 0.0,
        "utilization": 0.8, "frequency_khz": 2265600, "sensors": {...}},
        "feedback": [{"time_s": 0.0, "kind": "discomfort"}]}
    {"op": "feed_batch", "samples": {"s1": {...}, "s2": {...}}}
    {"op": "feedback", "session": "s1", "event": {...}}
    {"op": "close", "session": "s1"}
    {"op": "checkpoint"} | {"op": "stats"} | {"op": "ping"} | {"op": "shutdown"}
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.api.session import SessionPool
from repro.api.types import CapDecision, FeedbackEvent, TelemetrySample

from .state import SessionStateStore


def _sample_from_wire(payload: Mapping) -> TelemetrySample:
    # The sensors dict is adopted, not copied: the request payload is owned
    # by this call (json-decoded per line, or built per request in-process)
    # and nothing downstream mutates sample readings.
    return TelemetrySample(
        time_s=float(payload["time_s"]),
        utilization=float(payload["utilization"]),
        frequency_khz=float(payload["frequency_khz"]),
        sensor_readings=payload.get("sensors") or {},
    )


def _event_from_wire(payload: Mapping) -> FeedbackEvent:
    return FeedbackEvent(
        time_s=float(payload["time_s"]),
        kind=payload["kind"],
        skin_temp_c=payload.get("skin_temp_c"),
    )


def decision_to_wire(decision: CapDecision) -> dict:
    """Wire dict for one decision (cached on the decision; do not mutate).

    Held ticks return the same :class:`CapDecision` object tick after tick,
    so the serving hot path would otherwise rebuild an identical dict per
    session per request — memoizing on the (frozen, immutable) decision
    makes the non-due steady state allocation-free.
    """
    wire = getattr(decision, "_wire", None)
    if wire is None:
        wire = {
            "level_cap": decision.level_cap,
            "max_frequency_khz": decision.max_frequency_khz,
            "predicted_skin_temp_c": decision.predicted_skin_temp_c,
            "predicted_screen_temp_c": decision.predicted_screen_temp_c,
            "comfort_limit_c": decision.comfort_limit_c,
            "active": decision.active,
        }
        object.__setattr__(decision, "_wire", wire)
    return wire


class PolicyService:
    """Session-pool dispatcher behind the socket server.

    Args:
        policy: the :class:`~repro.api.specs.PolicySpec` every session runs.
        profiles: optional mapping of user id -> ``UserProfile``; a known
            user's session targets their profile (limits, feedback model).
        predictor: fallback trained predictor for specs without a recipe.
        state_store: optional :class:`SessionStateStore` for warm starts.
        decision_log: optional JSONL path; one buffered line per cap
            decision, flushed on checkpoint/shutdown.
        table: frequency table handed to sessions (defaults per spec).
    """

    def __init__(
        self,
        policy,
        *,
        profiles: Optional[Mapping[str, object]] = None,
        predictor=None,
        state_store: Optional[SessionStateStore] = None,
        decision_log=None,
        table=None,
        use_plane: bool = True,
    ):
        self.policy = policy
        self.profiles = dict(profiles or {})
        self.predictor = predictor
        self.state_store = state_store
        self.table = table
        self.pool = SessionPool(use_plane=use_plane)
        self._session_users: Dict[str, str] = {}
        self._log_fh = None
        self.decision_log = None
        if decision_log is not None:
            path = Path(decision_log)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._log_fh = open(path, "a", encoding="utf-8")
            self.decision_log = str(path)
        self.opened = 0
        self.resumed = 0
        self.feeds = 0
        self.checkpoints = 0
        self.started_at = time.perf_counter()
        #: set by the server loop so the ``shutdown`` op can stop it.
        self.request_shutdown: Optional[Callable[[], None]] = None
        self._closed = False

    # -- operations --------------------------------------------------------------

    def open(self, session_id: str, user_id: Optional[str] = None) -> dict:
        profile = self.profiles.get(user_id) if user_id is not None else None
        session = self.pool.open(
            session_id,
            self.policy,
            user_profile=profile,
            predictor=self.predictor,
            table=self.table,
        )
        user_key = user_id if user_id is not None else session_id
        self._session_users[session_id] = user_key
        resumed = False
        if self.state_store is not None:
            resumed = self.state_store.restore(user_key, session)
        self.opened += 1
        self.resumed += int(resumed)
        return {
            "ok": True,
            "session": session_id,
            "user": user_key,
            "resumed": resumed,
            "limit_c": session.current_limit_c,
        }

    def feed(
        self,
        session_id: str,
        sample: Mapping,
        feedback: Sequence[Mapping] = (),
    ) -> dict:
        session = self.pool.get(session_id)
        events = [_event_from_wire(e) for e in feedback]
        decision = session.feed(_sample_from_wire(sample), feedback=events)
        self.feeds += 1
        self._log_decision(session_id, sample, decision)
        return {"ok": True, "session": session_id, "decision": decision_to_wire(decision)}

    def feed_batch(
        self,
        samples: Mapping[str, Mapping],
        feedback: Optional[Mapping[str, Sequence[Mapping]]] = None,
    ) -> dict:
        """Feed many sessions at once — decisions come from one batched
        predictor call, the same fast path ``repro serve`` replay uses."""
        wire_samples = {sid: _sample_from_wire(s) for sid, s in samples.items()}
        wire_feedback = {
            sid: [_event_from_wire(e) for e in events]
            for sid, events in (feedback or {}).items()
        }
        decisions = self.pool.feed_many(wire_samples, feedback=wire_feedback or None)
        self.feeds += len(decisions)
        if self._log_fh is not None:
            for sid, decision in decisions.items():
                self._log_decision(sid, samples[sid], decision)
        return {
            "ok": True,
            "decisions": {sid: decision_to_wire(d) for sid, d in decisions.items()},
        }

    def feedback(self, session_id: str, event: Mapping) -> dict:
        limit = self.pool.get(session_id).feed_feedback(_event_from_wire(event))
        return {"ok": True, "session": session_id, "limit_c": limit}

    def close_session(self, session_id: str) -> dict:
        session = self.pool.get(session_id)
        if self.state_store is not None:
            self.state_store.record(self._session_users[session_id], session)
            self.state_store.save()
        self.pool.close(session_id)
        self._session_users.pop(session_id, None)
        return {"ok": True, "session": session_id}

    def checkpoint(self) -> dict:
        """Persist every live session's user state and flush the log."""
        recorded = 0
        shards_written = 0
        if self.state_store is not None:
            for session in self.pool:
                user_key = self._session_users.get(session.session_id, session.session_id)
                recorded += int(self.state_store.record(user_key, session))
            shards_written = self.state_store.save()
        if self._log_fh is not None:
            self._log_fh.flush()
        self.checkpoints += 1
        return {
            "ok": True,
            "recorded": recorded,
            "sessions": len(self.pool),
            "shards_written": shards_written,
        }

    def stats(self) -> dict:
        store = self.state_store
        return {
            "ok": True,
            "sessions": len(self.pool),
            "feeds": self.feeds,
            "predictions": self.pool.prediction_count,
            "batches": self.pool.batch_count,
            "plane_resident": self.pool.plane_resident_count,
            "plane_ticks": self.pool.plane_tick_count,
            "opened": self.opened,
            "resumed": self.resumed,
            "checkpoints": self.checkpoints,
            "uptime_s": time.perf_counter() - self.started_at,
            "persisted_users": len(store) if store else 0,
            "state_shards": store.n_shards if store else 0,
            "state_dirty_shards": store.dirty_shard_count if store else 0,
            "state_shards_written": store.total_shards_written if store else 0,
        }

    def shutdown(self) -> None:
        """Persist state and close the decision log (idempotent)."""
        if self._closed:
            return
        self.checkpoint()
        if self._log_fh is not None:
            self._log_fh.close()
            self._log_fh = None
        self._closed = True

    # -- dispatch ----------------------------------------------------------------

    def handle(self, request: Mapping) -> dict:
        """One request dictionary in, one response dictionary out."""
        try:
            op = request.get("op")
            if op == "open":
                return self.open(request["session"], request.get("user"))
            if op == "feed":
                return self.feed(
                    request["session"], request["sample"], request.get("feedback", ())
                )
            if op == "feed_batch":
                return self.feed_batch(request["samples"], request.get("feedback"))
            if op == "feedback":
                return self.feedback(request["session"], request["event"])
            if op == "close":
                return self.close_session(request["session"])
            if op == "checkpoint":
                return self.checkpoint()
            if op == "stats":
                return self.stats()
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "shutdown":
                if self.request_shutdown is not None:
                    self.request_shutdown()
                return {"ok": True, "stopping": self.request_shutdown is not None}
            return {"ok": False, "error": f"unknown op {op!r}", "error_type": "ValueError"}
        except Exception as exc:
            return {"ok": False, "error": str(exc), "error_type": type(exc).__name__}

    # -- internals ---------------------------------------------------------------

    def _log_decision(self, session_id: str, sample: Mapping, decision: CapDecision) -> None:
        if self._log_fh is None:
            return
        # Buffered on purpose: the graceful-shutdown path (checkpoint /
        # SIGTERM) owns the flush, and the kill test asserts no torn lines.
        self._log_fh.write(
            json.dumps(
                {
                    "time_s": sample["time_s"],
                    "session": session_id,
                    "cap": decision.level_cap,
                    "active": decision.active,
                    "limit_c": decision.comfort_limit_c,
                },
                separators=(",", ":"),
            )
            + "\n"
        )


async def _handle_client(service: PolicyService, reader, writer) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
            except ValueError as exc:
                response = {"ok": False, "error": f"invalid JSON: {exc}", "error_type": "ValueError"}
            else:
                response = service.handle(request)
            writer.write(json.dumps(response, separators=(",", ":")).encode("utf-8") + b"\n")
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):  # client vanished
        pass
    except asyncio.CancelledError:  # server shutting down mid-read
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


def run_service(
    service: PolicyService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    checkpoint_period_s: Optional[float] = 30.0,
    on_listening: Optional[Callable[[str, int], None]] = None,
) -> dict:
    """Serve until SIGINT/SIGTERM (or a ``shutdown`` op), then persist state.

    Prints ``listening on HOST:PORT`` once the socket is bound (port 0 picks
    a free port — tests and scripts parse this line, or pass ``on_listening``
    to receive the bound address directly).  Returns the final stats
    dictionary after a graceful shutdown.
    """

    async def _serve() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        service.request_shutdown = lambda: loop.call_soon_threadsafe(stop.set)
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError, RuntimeError):
                try:
                    signal.signal(signum, lambda *_: stop.set())
                except ValueError:
                    pass  # non-main thread: tests stop via the shutdown op
        server = await asyncio.start_server(
            lambda r, w: _handle_client(service, r, w), host, port
        )
        bound = server.sockets[0].getsockname()
        print(f"repro serve: listening on {bound[0]}:{bound[1]}", flush=True)
        if on_listening is not None:
            on_listening(bound[0], bound[1])

        async def _checkpoint_loop() -> None:
            while True:
                await asyncio.sleep(checkpoint_period_s)
                service.checkpoint()

        ticker = (
            asyncio.ensure_future(_checkpoint_loop())
            if checkpoint_period_s
            else None
        )
        try:
            await stop.wait()
        finally:
            if ticker is not None:
                ticker.cancel()
            server.close()
            await server.wait_closed()

    try:
        asyncio.run(_serve())
    finally:
        service.shutdown()
    return service.stats()
