"""Merge and compact fleet shard directories into one indexed store.

Every fleet worker streams into a private
:class:`~repro.runtime.streamstore.StreamingResultStore` directory.
:func:`merge_stores` compacts any number of those directories (plus whatever
an interrupted previous merge left behind) into the destination: cells are
copied *in plan order* with the standard shard rotation, so the resulting
shards are byte-identical to what a single-process ``--stream-to`` run of the
same plan writes (wall times are the one nondeterministic field per line —
:func:`stores_byte_identical` masks them).

Copying is byte-range based: opening a source directory as a
``StreamingResultStore`` heals crash artifacts (a killed worker's truncated
final line is dropped) and self-repairs the ``index.jsonl`` sidecar, whose
``(shard, offset, length)`` entries then let the merge stream each cell's
bytes without parsing a single record.

The swap is crash-safe: new shards are staged in ``<dest>/.merge-tmp``, the
old merged files (if any) move to ``<dest>/.merge-backup``, then the staged
files move into place and both scratch directories are deleted.  A crash at
any point leaves every cell's bytes in at least one of destination, backup,
or the source directories, so re-running the merge recovers.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runtime.streamstore import INDEX_NAME, StreamingResultStore

MERGE_TMP = ".merge-tmp"
MERGE_BACKUP = ".merge-backup"


class MergeError(RuntimeError):
    """A merge could not produce a complete store (e.g. missing cells)."""


@dataclass(frozen=True)
class MergeReport:
    """What :func:`merge_stores` did."""

    n_cells: int
    n_shards: int
    #: cells taken from each source directory (first directory wins on dupes).
    source_cells: Dict[str, int] = field(default_factory=dict)
    #: cell ids present in some source but absent from ``cell_order``.
    extra_cells: Tuple[str, ...] = ()
    #: tail-recovery notes from healing source directories.
    recovered: Tuple[str, ...] = ()


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}.jsonl"


def _looks_like_store(directory: Path) -> bool:
    if not directory.is_dir():
        return False
    if (directory / INDEX_NAME).exists():
        return True
    return any(directory.glob("shard-*.jsonl"))


def collect_cell_locations(
    directory: Path,
) -> Tuple[Dict[str, Tuple[Path, int, int]], Optional[str]]:
    """Map ``cell_id -> (shard path, offset, length)`` for one store directory.

    Opening the directory as a :class:`StreamingResultStore` first heals any
    crash artifact (truncated/unterminated final line) and rewrites a stale
    ``index.jsonl``, so the sidecar read afterwards is authoritative.
    Returns the location map (in commit order) and the tail-recovery note,
    if healing dropped a partial cell.
    """
    directory = Path(directory)
    if not _looks_like_store(directory):
        return {}, None
    store = StreamingResultStore(directory)
    recovered = store.recovered_tail
    store.close()
    locations: Dict[str, Tuple[Path, int, int]] = {}
    index_path = directory / INDEX_NAME
    if not index_path.exists():  # pragma: no cover - empty healed directory
        return locations, recovered
    with open(index_path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            locations[entry["cell_id"]] = (
                directory / entry["shard"],
                int(entry["offset"]),
                int(entry["length"]),
            )
    return locations, recovered


def harvest_completed_ids(directories: Iterable[Path]) -> Dict[str, Path]:
    """Committed cell ids across ``directories`` (first directory wins)."""
    seen: Dict[str, Path] = {}
    for directory in directories:
        locations, _ = collect_cell_locations(Path(directory))
        for cell_id in locations:
            seen.setdefault(cell_id, Path(directory))
    return seen


class _ShardWriter:
    """Write cell byte-ranges with the store's standard shard rotation."""

    def __init__(self, directory: Path, max_cells_per_shard: int):
        self.directory = directory
        self.max_cells_per_shard = max_cells_per_shard
        self.index_entries: List[dict] = []
        self._shard_index = 0
        self._cells_in_shard = 0
        self._shard_bytes = 0
        self._fh = None

    def write_cell(self, cell_id: str, payload: bytes) -> None:
        if self._fh is None:
            self._fh = open(self.directory / _shard_name(self._shard_index), "wb")
        offset = self._shard_bytes
        self._fh.write(payload)
        self._shard_bytes += len(payload)
        self.index_entries.append(
            {
                "cell_id": cell_id,
                "shard": _shard_name(self._shard_index),
                "offset": offset,
                "length": len(payload),
            }
        )
        self._cells_in_shard += 1
        if self._cells_in_shard >= self.max_cells_per_shard:
            self._fh.close()
            self._fh = None
            self._shard_index += 1
            self._cells_in_shard = 0
            self._shard_bytes = 0

    def close(self) -> int:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return self._shard_index + (1 if self._cells_in_shard else 0)


def _clear_scratch(path: Path) -> None:
    if path.exists():
        shutil.rmtree(path)


def merge_stores(
    sources: Sequence[Path],
    destination: Path,
    cell_order: Sequence[str],
    max_cells_per_shard: int = 64,
) -> MergeReport:
    """Compact ``sources`` into ``destination`` as one plan-ordered store.

    ``sources`` are scanned in priority order (earlier directories win
    duplicate cell ids); the destination itself and its ``.merge-backup``
    are implicitly the highest-priority sources, so re-running after a crash
    mid-swap is safe.  Raises :class:`MergeError` if any ``cell_order`` id is
    missing from every source.
    """
    destination = Path(destination)
    destination.mkdir(parents=True, exist_ok=True)
    tmp_dir = destination / MERGE_TMP
    backup_dir = destination / MERGE_BACKUP

    scan_order: List[Path] = [destination, backup_dir]
    for source in sources:
        source = Path(source)
        if source not in scan_order:
            scan_order.append(source)

    locations: Dict[str, Tuple[Path, int, int]] = {}
    source_cells: Dict[str, int] = {}
    recovered: List[str] = []
    for directory in scan_order:
        found, note = collect_cell_locations(directory)
        if note:
            recovered.append(f"{directory.name}: {note}")
        fresh = 0
        for cell_id, location in found.items():
            if cell_id not in locations:
                locations[cell_id] = location
                fresh += 1
        if fresh:
            source_cells[str(directory)] = fresh

    missing = [cell_id for cell_id in cell_order if cell_id not in locations]
    if missing:
        preview = ", ".join(missing[:5])
        raise MergeError(
            f"merge is missing {len(missing)} cell(s) from every source "
            f"directory (first few: {preview})"
        )
    extra = tuple(cell_id for cell_id in locations if cell_id not in set(cell_order))

    # Stage the compacted store in .merge-tmp.
    _clear_scratch(tmp_dir)
    tmp_dir.mkdir()
    writer = _ShardWriter(tmp_dir, max_cells_per_shard)
    handles: Dict[Path, object] = {}
    try:
        for cell_id in cell_order:
            path, offset, length = locations[cell_id]
            fh = handles.get(path)
            if fh is None:
                fh = handles[path] = open(path, "rb")
            fh.seek(offset)
            payload = fh.read(length)
            if len(payload) != length or not payload.endswith(b"\n"):
                raise MergeError(
                    f"{path.name}: cell {cell_id!r} byte range "
                    f"[{offset}, {offset + length}) is damaged"
                )
            writer.write_cell(cell_id, payload)
    finally:
        for fh in handles.values():
            fh.close()
        n_shards = writer.close()
    with open(tmp_dir / INDEX_NAME, "w", encoding="utf-8") as fh:
        for entry in writer.index_entries:
            fh.write(json.dumps(entry, separators=(",", ":")) + "\n")

    # Swap: old merged files -> backup, staged files -> destination.
    _clear_scratch(backup_dir)
    backup_dir.mkdir()
    for path in sorted(destination.glob("shard-*.jsonl")) + [destination / INDEX_NAME]:
        if path.exists():
            path.rename(backup_dir / path.name)
    for path in sorted(tmp_dir.iterdir()):
        path.rename(destination / path.name)
    _clear_scratch(backup_dir)
    _clear_scratch(tmp_dir)

    return MergeReport(
        n_cells=len(cell_order),
        n_shards=n_shards,
        source_cells=source_cells,
        extra_cells=extra,
        recovered=tuple(recovered),
    )


_WALL_KEY = ',"wall_time_s":'


def _mask_wall_time(line: str) -> str:
    try:
        return line[: line.rindex(_WALL_KEY)]
    except ValueError:
        return line


def stores_byte_identical(
    a: Path, b: Path, ignore_wall_time: bool = True
) -> Optional[str]:
    """``None`` when two store directories tile identically, else a diagnosis.

    With ``ignore_wall_time`` (the default) the per-line ``"wall_time_s"``
    suffix — the one nondeterministic field the runtime writes — is masked
    before comparing, matching the byte-parity convention used throughout
    the test suite.
    """
    a, b = Path(a), Path(b)
    shards_a = sorted(p.name for p in a.glob("shard-*.jsonl"))
    shards_b = sorted(p.name for p in b.glob("shard-*.jsonl"))
    if shards_a != shards_b:
        return f"shard sets differ: {shards_a} vs {shards_b}"
    for name in shards_a:
        lines_a = (a / name).read_text(encoding="utf-8").splitlines()
        lines_b = (b / name).read_text(encoding="utf-8").splitlines()
        if len(lines_a) != len(lines_b):
            return f"{name}: {len(lines_a)} vs {len(lines_b)} lines"
        for number, (line_a, line_b) in enumerate(zip(lines_a, lines_b)):
            if ignore_wall_time:
                line_a, line_b = _mask_wall_time(line_a), _mask_wall_time(line_b)
            if line_a != line_b:
                return f"{name}: line {number} differs"
    return None
