"""Socket-ready JSON message protocol between the coordinator and workers.

Messages are UTF-8 JSON objects carried over
:class:`multiprocessing.connection.Connection` byte frames.  The transport is
a loopback TCP :class:`~multiprocessing.connection.Listener` with an HMAC
authkey handshake — the same ``(host, port, authkey)`` triple works across
machines, so moving workers off-box later changes how processes are spawned,
not the protocol.

Coordinator -> worker:

* ``{"type": "assign", "unit_id": int, "indices": [int, ...]}`` — run the
  plan cells at ``indices`` (positions in the worker's cell list).
* ``{"type": "shutdown"}`` — flush the shard store and exit cleanly.

Worker -> coordinator:

* ``{"type": "hello", "worker_id", "pid", "completed": [cell_id, ...]}`` —
  sent once after the worker (re)opens its shard store; ``completed`` lists
  cells already persisted there from a previous life.
* ``{"type": "unit_done", "unit_id", "executed": [cell_id, ...]}``
* ``{"type": "unit_failed", "unit_id", "error": str}`` — the unit raised;
  the worker's store may hold a partial cell, so the worker exits and the
  coordinator reassigns after harvesting the directory.
* ``{"type": "bye", "worker_id"}`` — acknowledges ``shutdown``.
"""

from __future__ import annotations

import json
from typing import Optional

PROTOCOL_VERSION = 1


class ProtocolError(RuntimeError):
    """A malformed or out-of-sequence fleet message."""


def send_msg(conn, message: dict) -> None:
    """Send one JSON message over a Connection byte frame."""
    conn.send_bytes(json.dumps(message, separators=(",", ":")).encode("utf-8"))


def recv_msg(conn) -> Optional[dict]:
    """Receive one JSON message; ``None`` when the peer closed the pipe."""
    try:
        payload = conn.recv_bytes()
    except (EOFError, OSError):
        return None
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable fleet message: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"fleet message without a type: {message!r}")
    return message
