"""DVFS operating-point table for the simulated platform.

The paper's test device is a Google Nexus 4 (Qualcomm APQ8064, Krait cores).
Its cpufreq driver exposes twelve operating points between 384 MHz and
1.512 GHz.  A DVFS *operating point* (OPP) couples a clock frequency with the
minimum supply voltage required to run at that frequency; dynamic power grows
with ``C * V^2 * f`` so the table is the basic currency shared by the power
model, the governors and USTA's frequency-cap policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

__all__ = [
    "OperatingPoint",
    "FrequencyTable",
    "NEXUS4_FREQUENCIES_KHZ",
    "NEXUS4_VOLTAGES_MV",
    "nexus4_frequency_table",
]


# The twelve Nexus 4 frequency steps (kHz), 384 MHz .. 1.512 GHz, as stated in
# the paper ("For Nexus 4, there are twelve frequency levels between 384MHz and
# 1.512GHz").  The intermediate steps follow the stock APQ8064 frequency table.
NEXUS4_FREQUENCIES_KHZ: Tuple[int, ...] = (
    384_000,
    486_000,
    594_000,
    702_000,
    810_000,
    918_000,
    1_026_000,
    1_134_000,
    1_242_000,
    1_350_000,
    1_458_000,
    1_512_000,
)

# Representative per-step supply voltages (mV).  Values follow the publicly
# documented Krait voltage/frequency curve: roughly linear in frequency with a
# floor near 0.95 V and a ceiling near 1.25 V.
NEXUS4_VOLTAGES_MV: Tuple[int, ...] = (
    950,
    975,
    1000,
    1025,
    1050,
    1075,
    1100,
    1125,
    1150,
    1175,
    1225,
    1250,
)


@dataclass(frozen=True)
class OperatingPoint:
    """A single DVFS operating point.

    Attributes:
        index: position in the frequency table (0 = slowest).
        frequency_khz: core clock frequency in kHz.
        voltage_mv: supply voltage in millivolts.
    """

    index: int
    frequency_khz: int
    voltage_mv: int

    @property
    def frequency_hz(self) -> float:
        """Clock frequency in Hz."""
        return self.frequency_khz * 1e3

    @property
    def frequency_ghz(self) -> float:
        """Clock frequency in GHz."""
        return self.frequency_khz / 1e6

    @property
    def voltage_v(self) -> float:
        """Supply voltage in volts."""
        return self.voltage_mv / 1e3

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"OPP[{self.index}] {self.frequency_khz / 1000:.0f} MHz @ {self.voltage_v:.3f} V"


class FrequencyTable:
    """Ordered collection of :class:`OperatingPoint` entries.

    The table is sorted by ascending frequency and indexable both by *level*
    (integer position) and by frequency (with nearest-level snapping), which is
    what governors need when they clamp requests into the legal range.
    """

    def __init__(self, frequencies_khz: Sequence[int], voltages_mv: Sequence[int]):
        if len(frequencies_khz) != len(voltages_mv):
            raise ValueError(
                "frequencies and voltages must have the same length "
                f"({len(frequencies_khz)} != {len(voltages_mv)})"
            )
        if len(frequencies_khz) < 2:
            raise ValueError("a frequency table needs at least two operating points")
        if list(frequencies_khz) != sorted(frequencies_khz):
            raise ValueError("frequencies must be sorted in ascending order")
        if len(set(frequencies_khz)) != len(frequencies_khz):
            raise ValueError("frequencies must be unique")
        if any(f <= 0 for f in frequencies_khz):
            raise ValueError("frequencies must be positive")
        if any(v <= 0 for v in voltages_mv):
            raise ValueError("voltages must be positive")

        self._points: List[OperatingPoint] = [
            OperatingPoint(index=i, frequency_khz=int(f), voltage_mv=int(v))
            for i, (f, v) in enumerate(zip(frequencies_khz, voltages_mv))
        ]

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __getitem__(self, level: int) -> OperatingPoint:
        return self._points[level]

    # -- lookups -------------------------------------------------------------

    @property
    def min_level(self) -> int:
        """Lowest level index (always 0)."""
        return 0

    @property
    def max_level(self) -> int:
        """Highest level index."""
        return len(self._points) - 1

    @property
    def min_frequency_khz(self) -> int:
        """Lowest available frequency in kHz."""
        return self._points[0].frequency_khz

    @property
    def max_frequency_khz(self) -> int:
        """Highest available frequency in kHz."""
        return self._points[-1].frequency_khz

    @property
    def frequencies_khz(self) -> Tuple[int, ...]:
        """All frequencies in ascending order (kHz)."""
        return tuple(p.frequency_khz for p in self._points)

    def level_of(self, frequency_khz: int) -> int:
        """Return the level whose frequency is closest to ``frequency_khz``.

        Requests outside the table range snap to the boundary levels, matching
        cpufreq's behaviour of clamping userspace requests into the legal
        min/max window.
        """
        if frequency_khz <= self.min_frequency_khz:
            return 0
        if frequency_khz >= self.max_frequency_khz:
            return self.max_level
        best_level = 0
        best_delta = abs(self._points[0].frequency_khz - frequency_khz)
        for point in self._points[1:]:
            delta = abs(point.frequency_khz - frequency_khz)
            if delta < best_delta:
                best_level = point.index
                best_delta = delta
        return best_level

    def floor_level(self, frequency_khz: int) -> int:
        """Return the highest level whose frequency does not exceed the request."""
        level = 0
        for point in self._points:
            if point.frequency_khz <= frequency_khz:
                level = point.index
            else:
                break
        return level

    def ceil_level(self, frequency_khz: int) -> int:
        """Return the lowest level whose frequency is at least the request."""
        for point in self._points:
            if point.frequency_khz >= frequency_khz:
                return point.index
        return self.max_level

    def clamp_level(self, level: int) -> int:
        """Clamp an arbitrary integer to a valid level index."""
        return max(self.min_level, min(self.max_level, int(level)))

    def frequency_at(self, level: int) -> int:
        """Frequency (kHz) of a clamped level."""
        return self._points[self.clamp_level(level)].frequency_khz

    def voltage_at(self, level: int) -> float:
        """Voltage (V) of a clamped level."""
        return self._points[self.clamp_level(level)].voltage_v

    def scale_for_utilization(self, utilization: float) -> int:
        """Return the lowest level able to serve ``utilization`` of full speed.

        This is the classic ondemand "frequency proportional to load" target:
        the requested capacity is ``utilization * f_max`` and the governor picks
        the smallest frequency at or above it.
        """
        utilization = min(max(utilization, 0.0), 1.0)
        target_khz = utilization * self.max_frequency_khz
        return self.ceil_level(int(round(target_khz)))


def nexus4_frequency_table() -> FrequencyTable:
    """Build the stock Nexus 4 (APQ8064) twelve-entry frequency table."""
    return FrequencyTable(NEXUS4_FREQUENCIES_KHZ, NEXUS4_VOLTAGES_MV)
