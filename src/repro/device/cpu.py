"""CPU performance model.

Workload traces specify *demand*: the fraction of the CPU's maximum-frequency
capacity the application would like to consume in a window.  What the governor
observes is *utilization at the current frequency*: when the clock is lowered,
the same demand occupies a larger fraction of the available cycles (and may
saturate, in which case work is left pending and perceived performance drops).

This relationship is what couples DVFS decisions back into both the ondemand
governor (utilization goes up when frequency goes down, so ondemand pushes
back) and the user-visible performance metric reported in the evaluation
(average frequency and throughput loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .freq_table import FrequencyTable, OperatingPoint, nexus4_frequency_table

__all__ = ["CpuState", "Cpu"]


@dataclass(frozen=True)
class CpuState:
    """Observable CPU state for one simulation window."""

    level: int
    frequency_khz: int
    utilization: float
    demand: float
    delivered_work: float
    pending_work: float

    @property
    def saturated(self) -> bool:
        """True when the CPU could not serve all demanded work this window."""
        return self.utilization >= 0.999


@dataclass
class Cpu:
    """A single DVFS domain (the Nexus 4 scales all four Krait cores together).

    Attributes:
        table: frequency table of the platform.
        level: current operating level index.
        carry_over: whether unserved demand is carried into the next window
            (models a backlog of work, which keeps utilization pinned at 100%
            after heavy throttling until the backlog drains).
        max_backlog: cap on accumulated backlog, expressed in windows of
            full-speed work, to keep the model bounded.
    """

    table: FrequencyTable = field(default_factory=nexus4_frequency_table)
    level: int = 0
    carry_over: bool = True
    max_backlog: float = 2.0

    def __post_init__(self) -> None:
        self.level = self.table.clamp_level(self.level)
        self._backlog = 0.0

    # -- frequency control ----------------------------------------------------

    @property
    def operating_point(self) -> OperatingPoint:
        """The currently selected operating point."""
        return self.table[self.level]

    @property
    def frequency_khz(self) -> int:
        """Current clock frequency in kHz."""
        return self.operating_point.frequency_khz

    def set_level(self, level: int) -> None:
        """Switch to a (clamped) operating level."""
        self.level = self.table.clamp_level(level)

    def set_frequency(self, frequency_khz: int) -> None:
        """Switch to the level closest to ``frequency_khz``."""
        self.level = self.table.level_of(frequency_khz)

    # -- workload execution ---------------------------------------------------

    @property
    def backlog(self) -> float:
        """Unserved demand carried over from previous windows (full-speed windows)."""
        return self._backlog

    def reset(self, level: int | None = None) -> None:
        """Clear the backlog and optionally reset the operating level."""
        self._backlog = 0.0
        if level is not None:
            self.set_level(level)

    def run_window(self, demand: float, dt_s: float) -> CpuState:
        """Execute one scheduling window.

        Args:
            demand: requested work as a fraction of *maximum-frequency*
                capacity for this window, in [0, 1].
            dt_s: window length in seconds (used only for bookkeeping; demand
                is already normalised per window).

        Returns:
            A :class:`CpuState` snapshot with the utilization the governor will
            observe and the work actually delivered.
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        demand = min(max(demand, 0.0), 1.0)
        total_demand = demand + (self._backlog if self.carry_over else 0.0)

        capacity = self.frequency_khz / self.table.max_frequency_khz
        delivered = min(total_demand, capacity)
        utilization = 0.0 if capacity <= 0 else min(1.0, total_demand / capacity)

        leftover = max(0.0, total_demand - delivered)
        self._backlog = min(leftover, self.max_backlog) if self.carry_over else 0.0

        return CpuState(
            level=self.level,
            frequency_khz=self.frequency_khz,
            utilization=utilization,
            demand=demand,
            delivered_work=delivered,
            pending_work=self._backlog,
        )
