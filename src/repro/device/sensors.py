"""Temperature sensor models.

Two kinds of sensors appear in the paper:

* **On-device sensors** — the CPU (SoC junction) and battery thermal sensors
  exposed by the kernel.  These feed the run-time predictor and are polled by
  the logging application.  Real sensors are quantized (typically to 1 °C or
  0.1 °C) and slightly noisy.
* **External thermistors** — attached by the authors to the back cover
  (upper + middle) and to the screen to obtain ground-truth skin and screen
  temperatures during model training.  They are more precise but still carry
  measurement noise.

Both are modelled here as a quantizing, noisy view of a node of the thermal
network.  Noise is generated from a seeded :class:`numpy.random.Generator` so
experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["TemperatureSensor", "SensorSuite"]


@dataclass
class TemperatureSensor:
    """A noisy, quantized temperature sensor attached to a thermal node.

    Attributes:
        name: sensor identifier (e.g. ``"cpu"``, ``"battery"``, ``"skin"``).
        node: name of the thermal-network node the sensor observes.
        noise_std_c: standard deviation of additive gaussian noise (°C).
        quantization_c: reporting resolution (°C); 0 disables quantization.
        offset_c: constant calibration offset (°C).
        seed: RNG seed for reproducible noise.
    """

    name: str
    node: str
    noise_std_c: float = 0.1
    quantization_c: float = 0.1
    offset_c: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.noise_std_c < 0:
            raise ValueError("noise_std_c must be non-negative")
        if self.quantization_c < 0:
            raise ValueError("quantization_c must be non-negative")
        self._rng = np.random.default_rng(self.seed)
        self._rng_fresh = True
        self._last_reading: Optional[float] = None

    @property
    def last_reading(self) -> Optional[float]:
        """The most recent reading, or ``None`` before the first read."""
        return self._last_reading

    def read(self, true_temp_c: float) -> float:
        """Produce a sensor reading for the given true temperature."""
        value = true_temp_c + self.offset_c
        if self.noise_std_c > 0:
            self._rng_fresh = False
            value += float(self._rng.normal(0.0, self.noise_std_c))
        if self.quantization_c > 0:
            value = round(value / self.quantization_c) * self.quantization_c
        self._last_reading = value
        return value

    def draw_noise(self, count: int) -> np.ndarray:
        """Pre-draw ``count`` noise samples, one per future :meth:`read`.

        A block draw consumes the generator stream exactly like ``count``
        successive scalar draws, so the batched runtime can pre-draw a whole
        run's noise up front and stay bit-identical to step-by-step reads.
        """
        if self.noise_std_c <= 0:
            return np.zeros(count)
        self._rng_fresh = False
        return self._rng.normal(0.0, self.noise_std_c, size=count)

    def reset(self, seed: Optional[int] = None) -> None:
        """Reset the RNG (optionally with a new seed) and clear the last reading.

        Rebuilding a ``Generator`` is surprisingly expensive (seed-sequence
        entropy mixing), so an untouched generator at the right seed is kept
        as-is — it is bitwise indistinguishable from a fresh one.
        """
        if seed is not None and seed != self.seed:
            self.seed = seed
            self._rng = np.random.default_rng(seed)
            self._rng_fresh = True
        elif not self._rng_fresh:
            self._rng = np.random.default_rng(self.seed)
            self._rng_fresh = True
        self._last_reading = None


@dataclass
class SensorSuite:
    """The full set of sensors on the instrumented device.

    The default configuration mirrors the paper's setup: built-in CPU and
    battery sensors plus external thermistors on the back cover (upper and
    middle positions) and on the screen.
    """

    sensors: Dict[str, TemperatureSensor] = field(default_factory=dict)

    @classmethod
    def nexus4_instrumented(cls, seed: int = 0) -> "SensorSuite":
        """Build the instrumented Nexus 4 sensor set used in the paper."""
        specs = [
            # name, thermal node, noise, quantization
            ("cpu", "cpu", 0.25, 1.0),          # kernel thermal zone, coarse
            ("battery", "battery", 0.15, 0.1),  # fuel gauge thermistor
            ("skin", "back_cover", 0.10, 0.05),       # external thermistor (mid back)
            ("skin_upper", "back_cover_upper", 0.10, 0.05),
            ("screen", "screen", 0.10, 0.05),         # external thermistor (screen)
        ]
        sensors = {
            name: TemperatureSensor(
                name=name,
                node=node,
                noise_std_c=noise,
                quantization_c=quant,
                seed=seed + idx,
            )
            for idx, (name, node, noise, quant) in enumerate(specs)
        }
        return cls(sensors=sensors)

    def __contains__(self, name: str) -> bool:
        return name in self.sensors

    def __getitem__(self, name: str) -> TemperatureSensor:
        return self.sensors[name]

    def add(self, sensor: TemperatureSensor) -> None:
        """Register an additional sensor."""
        self.sensors[sensor.name] = sensor

    def read_all(self, node_temps_c: Dict[str, float]) -> Dict[str, float]:
        """Read every sensor against the current thermal-node temperatures.

        Sensors whose node is missing from ``node_temps_c`` are skipped, which
        lets the same suite be used with reduced thermal networks in tests.
        """
        readings: Dict[str, float] = {}
        for name, sensor in self.sensors.items():
            if sensor.node in node_temps_c:
                readings[name] = sensor.read(node_temps_c[sensor.node])
        return readings

    def reset(self, seed: Optional[int] = None) -> None:
        """Reset every sensor (optionally re-seeding them deterministically)."""
        for idx, sensor in enumerate(self.sensors.values()):
            sensor.reset(None if seed is None else seed + idx)
