"""Power models for the simulated smartphone platform.

The thermal network is driven by heat dissipated in the SoC (CPU + GPU), the
display and the battery.  This module turns architectural activity (CPU
utilization, operating point, GPU activity, screen brightness, radio activity,
charging current) into Watts.

The model follows the standard decomposition used by mobile power simulators:

* CPU dynamic power   ``P_dyn = C_eff * V^2 * f * util``
* CPU leakage power   ``P_leak = P_leak0 * exp(k * (T_die - T_ref)) * V / V_ref``
  (leakage grows exponentially with die temperature and roughly linearly with
  supply voltage — the thermal feedback loop that makes sustained workloads
  drift upward)
* GPU power           activity-proportional with its own ceiling
* Display power       base + brightness-proportional panel power
* Radio power         activity-proportional (camera/streaming workloads keep the
  modem/WiFi busy)
* Battery/charger heat  conversion-loss fraction of the charging power plus an
  I^2R discharge loss proportional to total platform draw

Absolute magnitudes were chosen so that a fully loaded Nexus-4-class phone
dissipates ≈3.5–4.5 W platform power, which reproduces the skin temperatures in
the paper's Table 1 once fed through the calibrated thermal network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .freq_table import FrequencyTable, OperatingPoint, nexus4_frequency_table

__all__ = [
    "CpuPowerModel",
    "GpuPowerModel",
    "DisplayPowerModel",
    "RadioPowerModel",
    "ChargerPowerModel",
    "PlatformPowerModel",
    "PowerBreakdown",
]


@dataclass
class CpuPowerModel:
    """Dynamic + temperature-dependent leakage power of the application CPU.

    Attributes:
        effective_capacitance_f: lumped switched capacitance (Farads) per core
            cluster; multiplied by V^2 * f * util for dynamic power.
        leakage_at_ref_w: leakage power at the reference die temperature and
            reference voltage.
        leakage_temp_coeff: exponential temperature coefficient (1/°C) of
            leakage; 0.02–0.04 is typical for 28 nm class silicon.
        reference_temp_c: die temperature at which ``leakage_at_ref_w`` holds.
        reference_voltage_v: voltage at which ``leakage_at_ref_w`` holds.
        idle_power_w: uncore/rail floor that is burnt whenever the SoC is on.
    """

    effective_capacitance_f: float = 1.05e-9
    leakage_at_ref_w: float = 0.18
    leakage_temp_coeff: float = 0.025
    reference_temp_c: float = 40.0
    reference_voltage_v: float = 1.05
    idle_power_w: float = 0.08

    def dynamic_power(self, opp: OperatingPoint, utilization: float) -> float:
        """Dynamic (switching) power in Watts at an operating point."""
        utilization = min(max(utilization, 0.0), 1.0)
        return (
            self.effective_capacitance_f
            * opp.voltage_v ** 2
            * opp.frequency_hz
            * utilization
        )

    def leakage_power(self, opp: OperatingPoint, die_temp_c: float) -> float:
        """Temperature- and voltage-dependent leakage power in Watts."""
        temp_factor = math.exp(self.leakage_temp_coeff * (die_temp_c - self.reference_temp_c))
        voltage_factor = opp.voltage_v / self.reference_voltage_v
        return self.leakage_at_ref_w * temp_factor * voltage_factor

    def power(self, opp: OperatingPoint, utilization: float, die_temp_c: float) -> float:
        """Total CPU power in Watts."""
        return (
            self.idle_power_w
            + self.dynamic_power(opp, utilization)
            + self.leakage_power(opp, die_temp_c)
        )


@dataclass
class GpuPowerModel:
    """Activity-proportional GPU (Adreno 320 class) power."""

    max_power_w: float = 1.1
    idle_power_w: float = 0.02

    def power(self, gpu_activity: float) -> float:
        """GPU power in Watts for an activity fraction in [0, 1]."""
        gpu_activity = min(max(gpu_activity, 0.0), 1.0)
        return self.idle_power_w + gpu_activity * (self.max_power_w - self.idle_power_w)


@dataclass
class DisplayPowerModel:
    """LCD panel + backlight power.

    The Nexus 4 has an IPS LCD whose power is dominated by the backlight and
    therefore scales roughly linearly with brightness when the screen is on.
    """

    base_power_w: float = 0.20
    max_backlight_power_w: float = 0.55

    def power(self, screen_on: bool, brightness: float) -> float:
        """Display power in Watts."""
        if not screen_on:
            return 0.0
        brightness = min(max(brightness, 0.0), 1.0)
        return self.base_power_w + brightness * self.max_backlight_power_w


@dataclass
class RadioPowerModel:
    """Cellular/WiFi/camera subsystem power, activity proportional."""

    max_power_w: float = 1.0
    idle_power_w: float = 0.03

    def power(self, radio_activity: float) -> float:
        """Radio/camera power in Watts for an activity fraction in [0, 1]."""
        radio_activity = min(max(radio_activity, 0.0), 1.0)
        return self.idle_power_w + radio_activity * (self.max_power_w - self.idle_power_w)


@dataclass
class ChargerPowerModel:
    """Heat generated inside the battery / charging circuitry.

    Charging dissipates a conversion-loss fraction of the charge power in the
    PMIC and cell; discharging dissipates I^2*R_internal, approximated as a
    loss fraction of the platform draw.
    """

    charge_power_w: float = 5.0
    charge_loss_fraction: float = 0.25
    discharge_loss_fraction: float = 0.06

    def heat(self, charging: bool, platform_draw_w: float) -> float:
        """Battery-side heat in Watts."""
        if charging:
            return self.charge_power_w * self.charge_loss_fraction
        return max(platform_draw_w, 0.0) * self.discharge_loss_fraction


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component platform power for one simulation step (Watts)."""

    cpu_w: float
    gpu_w: float
    display_w: float
    radio_w: float
    battery_w: float

    @property
    def soc_w(self) -> float:
        """Heat injected into the SoC die node (CPU + GPU)."""
        return self.cpu_w + self.gpu_w

    @property
    def total_w(self) -> float:
        """Total platform heat."""
        return self.cpu_w + self.gpu_w + self.display_w + self.radio_w + self.battery_w


@dataclass
class PlatformPowerModel:
    """Aggregates the component models into one platform-level evaluation."""

    cpu: CpuPowerModel = field(default_factory=CpuPowerModel)
    gpu: GpuPowerModel = field(default_factory=GpuPowerModel)
    display: DisplayPowerModel = field(default_factory=DisplayPowerModel)
    radio: RadioPowerModel = field(default_factory=RadioPowerModel)
    charger: ChargerPowerModel = field(default_factory=ChargerPowerModel)

    def evaluate(
        self,
        opp: OperatingPoint,
        cpu_utilization: float,
        die_temp_c: float,
        gpu_activity: float = 0.0,
        screen_on: bool = True,
        brightness: float = 0.7,
        radio_activity: float = 0.0,
        charging: bool = False,
    ) -> PowerBreakdown:
        """Compute the per-component power breakdown for one activity sample."""
        cpu_w = self.cpu.power(opp, cpu_utilization, die_temp_c)
        gpu_w = self.gpu.power(gpu_activity)
        display_w = self.display.power(screen_on, brightness)
        radio_w = self.radio.power(radio_activity)
        platform_draw = cpu_w + gpu_w + display_w + radio_w
        battery_w = self.charger.heat(charging, platform_draw)
        return PowerBreakdown(
            cpu_w=cpu_w,
            gpu_w=gpu_w,
            display_w=display_w,
            radio_w=radio_w,
            battery_w=battery_w,
        )

    def max_cpu_power(self, table: FrequencyTable | None = None, die_temp_c: float = 70.0) -> float:
        """Upper bound on CPU power (full utilization at the top frequency)."""
        table = table or nexus4_frequency_table()
        return self.cpu.power(table[table.max_level], 1.0, die_temp_c)
