"""Battery state-of-charge model.

The paper uses the battery temperature sensor as one of the predictor features
and includes a "Charging" benchmark, so the platform needs a battery whose
state of charge responds to the platform draw and to the charger.  Electrical
fidelity requirements are modest: the thermal side (heat generated while
charging / discharging) is handled by :class:`repro.device.power.ChargerPowerModel`;
this module tracks the state of charge so that traces and logs carry a
realistic battery level.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Battery"]


@dataclass
class Battery:
    """Simple coulomb-counting battery model.

    Attributes:
        capacity_wh: usable energy capacity (the Nexus 4 ships a 2100 mAh /
            3.8 V pack, roughly 8 Wh).
        state_of_charge: current charge fraction in [0, 1].
        nominal_voltage_v: pack voltage used for current book-keeping.
        charge_power_w: power delivered by the charger when plugged in.
        charge_efficiency: fraction of charger power that ends up stored.
    """

    capacity_wh: float = 8.0
    state_of_charge: float = 0.85
    nominal_voltage_v: float = 3.8
    charge_power_w: float = 5.0
    charge_efficiency: float = 0.82

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0:
            raise ValueError("capacity_wh must be positive")
        if not 0.0 <= self.state_of_charge <= 1.0:
            raise ValueError("state_of_charge must be within [0, 1]")

    @property
    def energy_wh(self) -> float:
        """Stored energy in watt-hours."""
        return self.state_of_charge * self.capacity_wh

    @property
    def is_full(self) -> bool:
        """True when the pack is effectively full (>= 99.5%)."""
        return self.state_of_charge >= 0.995

    @property
    def is_empty(self) -> bool:
        """True when the pack is effectively empty (<= 0.5%)."""
        return self.state_of_charge <= 0.005

    def step(self, dt_s: float, platform_draw_w: float, charging: bool) -> float:
        """Advance the battery by ``dt_s`` seconds.

        Args:
            dt_s: timestep in seconds.
            platform_draw_w: total platform power drawn from the pack.
            charging: whether the charger is connected.

        Returns:
            The net power (W) flowing *into* the pack (negative when
            discharging), useful for diagnostics.
        """
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        net_w = -max(platform_draw_w, 0.0)
        if charging and not self.is_full:
            net_w += self.charge_power_w * self.charge_efficiency
        delta_wh = net_w * dt_s / 3600.0
        self.state_of_charge = min(1.0, max(0.0, self.state_of_charge + delta_wh / self.capacity_wh))
        return net_w
