"""Simulated Nexus-4-class handset substrate (CPU, power, battery, sensors)."""

from .battery import Battery
from .cpu import Cpu, CpuState
from .freq_table import (
    NEXUS4_FREQUENCIES_KHZ,
    NEXUS4_VOLTAGES_MV,
    FrequencyTable,
    OperatingPoint,
    nexus4_frequency_table,
)
from .platform import DeviceActivity, DevicePlatform, DeviceStepResult
from .power import (
    ChargerPowerModel,
    CpuPowerModel,
    DisplayPowerModel,
    GpuPowerModel,
    PlatformPowerModel,
    PowerBreakdown,
    RadioPowerModel,
)
from .sensors import SensorSuite, TemperatureSensor

__all__ = [
    "Battery",
    "Cpu",
    "CpuState",
    "NEXUS4_FREQUENCIES_KHZ",
    "NEXUS4_VOLTAGES_MV",
    "FrequencyTable",
    "OperatingPoint",
    "nexus4_frequency_table",
    "DeviceActivity",
    "DevicePlatform",
    "DeviceStepResult",
    "ChargerPowerModel",
    "CpuPowerModel",
    "DisplayPowerModel",
    "GpuPowerModel",
    "PlatformPowerModel",
    "PowerBreakdown",
    "RadioPowerModel",
    "SensorSuite",
    "TemperatureSensor",
]
