"""The simulated handset: CPU + power + battery + thermal network + sensors.

:class:`DevicePlatform` is the hardware abstraction the rest of the library
talks to.  One call to :meth:`DevicePlatform.step` advances the device by one
simulation window: the CPU executes the demanded work at its current
frequency, the power model converts activity into heat, the thermal network
integrates that heat, the battery tracks its charge, and the sensor suite
produces the (noisy) readings that governors, loggers and the skin-temperature
predictor observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..thermal import (
    AmbientConditions,
    HandContact,
    Nexus4ThermalParameters,
    ThermalSolver,
    build_nexus4_network,
)
from ..thermal.nexus4 import BACK_COVER_NODE, BATTERY_NODE, CPU_NODE, SCREEN_NODE
from .battery import Battery
from .cpu import Cpu, CpuState
from .freq_table import FrequencyTable, nexus4_frequency_table
from .power import PlatformPowerModel, PowerBreakdown
from .sensors import SensorSuite

__all__ = ["DeviceActivity", "DeviceStepResult", "DevicePlatform"]


@dataclass(frozen=True)
class DeviceActivity:
    """Activity requested from the platform during one window.

    This is the device-facing view of one workload sample: how much CPU work
    the foreground app wants, how busy the GPU/radio are, whether the screen is
    on, whether the charger is plugged in, and whether the user is holding the
    phone.
    """

    cpu_demand: float = 0.0
    gpu_activity: float = 0.0
    radio_activity: float = 0.0
    screen_on: bool = True
    brightness: float = 0.7
    charging: bool = False
    touching: bool = True


@dataclass(frozen=True)
class DeviceStepResult:
    """Everything observable after one platform step."""

    time_s: float
    cpu_state: CpuState
    power: PowerBreakdown
    node_temps_c: Dict[str, float]
    sensor_readings_c: Dict[str, float]
    battery_soc: float

    @property
    def skin_temp_c(self) -> float:
        """True (un-noised) back-cover mid temperature — the paper's "skin temperature"."""
        return self.node_temps_c[BACK_COVER_NODE]

    @property
    def screen_temp_c(self) -> float:
        """True screen temperature."""
        return self.node_temps_c[SCREEN_NODE]

    @property
    def cpu_temp_c(self) -> float:
        """True CPU die temperature."""
        return self.node_temps_c[CPU_NODE]

    @property
    def battery_temp_c(self) -> float:
        """True battery temperature."""
        return self.node_temps_c[BATTERY_NODE]


@dataclass
class DevicePlatform:
    """A complete simulated Nexus-4-class handset.

    Attributes:
        freq_table: DVFS operating points (defaults to the Nexus 4 table).
        cpu: CPU execution model.
        power_model: activity → Watts conversion.
        battery: state-of-charge model.
        thermal_params: thermal network parameters.
        sensors: sensor suite (noise/quantization of observable temperatures).
        hand: hand-contact boundary condition.
        seed: seed forwarded to the sensor suite for reproducible noise.
    """

    freq_table: FrequencyTable = field(default_factory=nexus4_frequency_table)
    cpu: Optional[Cpu] = None
    power_model: PlatformPowerModel = field(default_factory=PlatformPowerModel)
    battery: Battery = field(default_factory=Battery)
    thermal_params: Nexus4ThermalParameters = field(default_factory=Nexus4ThermalParameters)
    sensors: Optional[SensorSuite] = None
    hand: HandContact = field(default_factory=HandContact)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cpu is None:
            self.cpu = Cpu(table=self.freq_table)
        if self.sensors is None:
            self.sensors = SensorSuite.nexus4_instrumented(seed=self.seed)
        self.network = build_nexus4_network(self.thermal_params)
        self.solver = ThermalSolver(self.network)
        self.hand.apply(self.network)
        self._time_s = 0.0

    # -- state ------------------------------------------------------------------

    @property
    def time_s(self) -> float:
        """Simulated time elapsed since the last reset (seconds)."""
        return self._time_s

    @property
    def ambient(self) -> AmbientConditions:
        """The ambient conditions of the thermal model."""
        return self.thermal_params.ambient

    def temperatures(self) -> Dict[str, float]:
        """Current true temperatures of every thermal node."""
        return self.network.temperatures()

    def reset(self, initial_temps: Optional[Dict[str, float]] = None, seed: Optional[int] = None) -> None:
        """Reset time, thermal state, CPU backlog, battery and sensors."""
        self._time_s = 0.0
        self.network.reset(initial_temps)
        self.thermal_params.ambient.apply(self.network)
        self.hand.apply(self.network)
        self.cpu.reset(level=self.freq_table.min_level)
        self.battery.state_of_charge = 0.85
        self.sensors.reset(seed if seed is not None else self.seed)

    # -- frequency control --------------------------------------------------------

    def set_frequency_level(self, level: int) -> None:
        """Set the CPU operating level (used by governors)."""
        self.cpu.set_level(level)

    @property
    def frequency_level(self) -> int:
        """Current CPU operating level."""
        return self.cpu.level

    @property
    def frequency_khz(self) -> int:
        """Current CPU frequency in kHz."""
        return self.cpu.frequency_khz

    # -- simulation ----------------------------------------------------------------

    def step(self, activity: DeviceActivity, dt_s: float = 1.0) -> DeviceStepResult:
        """Advance the device by one window of ``dt_s`` seconds.

        The order of operations matches a real system: the CPU runs the window
        at the frequency the governor chose *before* the window, the resulting
        power heats the phone during the window, and the sensors are sampled at
        the end of the window.
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")

        # Hand contact can change between windows (e.g. pick up / put down).
        if activity.touching != self.hand.touching:
            self.hand.touching = activity.touching
            self.hand.apply(self.network)

        cpu_state = self.cpu.run_window(activity.cpu_demand, dt_s)
        die_temp = self.network.temperature_of(CPU_NODE)
        power = self.power_model.evaluate(
            opp=self.cpu.operating_point,
            cpu_utilization=cpu_state.utilization,
            die_temp_c=die_temp,
            gpu_activity=activity.gpu_activity,
            screen_on=activity.screen_on,
            brightness=activity.brightness,
            radio_activity=activity.radio_activity,
            charging=activity.charging,
        )

        # Heat placement: CPU+GPU dissipate in the SoC die; the display panel
        # heats the screen but its driver/backlight electronics sit on the
        # board; radios/camera ISP are board components; charger losses heat
        # the battery.
        node_power = {
            CPU_NODE: power.soc_w,
            SCREEN_NODE: 0.65 * power.display_w,
            "board": power.radio_w + 0.35 * power.display_w,
            BATTERY_NODE: power.battery_w,
        }
        node_temps = self.solver.step(dt_s, node_power)
        self.battery.step(dt_s, power.total_w - power.battery_w, activity.charging)
        readings = self.sensors.read_all(node_temps)

        self._time_s += dt_s
        return DeviceStepResult(
            time_s=self._time_s,
            cpu_state=cpu_state,
            power=power,
            node_temps_c=dict(node_temps),
            sensor_readings_c=readings,
            battery_soc=self.battery.state_of_charge,
        )
