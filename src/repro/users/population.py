"""The synthetic user population.

The paper's first user study (Fig. 1) measures, for ten participants (labelled
a–j, five male and five female), the skin and screen temperature at which the
discomfort became unacceptable.  The reported spread is large: the least
tolerant user quits at a skin temperature of 34.0 °C, the most tolerant at
42.8 °C, and the average — used as the "default user" limit for USTA's
benchmark evaluation — is 37 °C.

The profiles below reproduce that population: the same minimum, maximum and
mean, a high-threshold group (users a, d, e, g, i — the ones for whom USTA
"did not take any action" in the preference study) and a low-threshold group
(b, c, f, h, j).  Each profile also carries the sensitivity weights used by the
satisfaction model for the Fig. 5 preference study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

__all__ = ["ThermalComfortProfile", "UserPopulation", "DEFAULT_USER_ID", "PAPER_USER_IDS"]

DEFAULT_USER_ID = "default"

#: The paper labels its participants a through j.
PAPER_USER_IDS: Tuple[str, ...] = ("a", "b", "c", "d", "e", "f", "g", "h", "i", "j")


@dataclass(frozen=True)
class ThermalComfortProfile:
    """One user's thermal comfort characteristics.

    Attributes:
        user_id: the paper's participant label (``"a"`` … ``"j"``) or
            ``"default"`` for the average user.
        skin_limit_c: back-cover temperature at which discomfort becomes
            unacceptable.
        screen_limit_c: screen temperature at which discomfort becomes
            unacceptable.
        heat_sensitivity: weight of thermal discomfort in the satisfaction
            model (higher = rating drops faster when the phone runs hot).
        performance_sensitivity: weight of perceived slowdown in the
            satisfaction model (higher = rating drops faster when throttled).
    """

    user_id: str
    skin_limit_c: float
    screen_limit_c: float
    heat_sensitivity: float = 1.0
    performance_sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if not 25.0 < self.skin_limit_c < 60.0:
            raise ValueError("skin_limit_c must be a plausible skin temperature limit")
        if not 25.0 < self.screen_limit_c < 60.0:
            raise ValueError("screen_limit_c must be a plausible screen temperature limit")
        if self.heat_sensitivity < 0 or self.performance_sensitivity < 0:
            raise ValueError("sensitivities must be non-negative")

    @property
    def usta_activation_temp_c(self) -> float:
        """The temperature at which USTA starts intervening (limit − 2 °C)."""
        return self.skin_limit_c - 2.0


# Calibrated per-user limits: min 34.0 °C, max 42.8 °C, mean exactly 37.0 °C
# (the paper's default-user limit).  Screen limits sit a couple of degrees
# below the skin limits, as in Fig. 1.  Users c and g weight performance more
# heavily — in the paper they are the two participants who preferred the
# baseline governor.
_PAPER_PROFILES: Tuple[ThermalComfortProfile, ...] = (
    ThermalComfortProfile("a", 38.5, 36.5, heat_sensitivity=0.8, performance_sensitivity=1.0),
    ThermalComfortProfile("b", 34.3, 33.0, heat_sensitivity=1.3, performance_sensitivity=0.8),
    ThermalComfortProfile("c", 35.2, 33.8, heat_sensitivity=0.6, performance_sensitivity=2.4),
    ThermalComfortProfile("d", 39.5, 37.5, heat_sensitivity=0.8, performance_sensitivity=1.0),
    ThermalComfortProfile("e", 38.2, 36.0, heat_sensitivity=0.9, performance_sensitivity=1.0),
    ThermalComfortProfile("f", 34.0, 32.5, heat_sensitivity=1.4, performance_sensitivity=0.7),
    ThermalComfortProfile("g", 42.8, 40.0, heat_sensitivity=0.5, performance_sensitivity=2.0),
    ThermalComfortProfile("h", 34.1, 32.8, heat_sensitivity=1.3, performance_sensitivity=0.8),
    ThermalComfortProfile("i", 39.0, 37.0, heat_sensitivity=0.8, performance_sensitivity=1.0),
    ThermalComfortProfile("j", 34.4, 33.2, heat_sensitivity=1.2, performance_sensitivity=0.8),
)


class UserPopulation:
    """The ten study participants plus the derived "default" user."""

    def __init__(self, profiles: Tuple[ThermalComfortProfile, ...] = _PAPER_PROFILES):
        if not profiles:
            raise ValueError("a population needs at least one profile")
        self._profiles: Dict[str, ThermalComfortProfile] = {p.user_id: p for p in profiles}
        if len(self._profiles) != len(profiles):
            raise ValueError("duplicate user ids in the population")

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[ThermalComfortProfile]:
        return iter(self._profiles.values())

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._profiles

    def __getitem__(self, user_id: str) -> ThermalComfortProfile:
        if user_id == DEFAULT_USER_ID:
            return self.default_user()
        return self._profiles[user_id]

    # -- accessors ----------------------------------------------------------------

    @property
    def user_ids(self) -> Tuple[str, ...]:
        """All participant ids, in study order."""
        return tuple(self._profiles)

    def profiles(self) -> List[ThermalComfortProfile]:
        """All participant profiles, in study order."""
        return list(self._profiles.values())

    def skin_limits(self) -> Dict[str, float]:
        """Skin comfort limits keyed by user id."""
        return {uid: p.skin_limit_c for uid, p in self._profiles.items()}

    def screen_limits(self) -> Dict[str, float]:
        """Screen comfort limits keyed by user id."""
        return {uid: p.screen_limit_c for uid, p in self._profiles.items()}

    @property
    def min_skin_limit_c(self) -> float:
        """The least tolerant participant's skin limit (34.0 °C in the paper)."""
        return min(p.skin_limit_c for p in self._profiles.values())

    @property
    def max_skin_limit_c(self) -> float:
        """The most tolerant participant's skin limit (42.8 °C in the paper)."""
        return max(p.skin_limit_c for p in self._profiles.values())

    @property
    def mean_skin_limit_c(self) -> float:
        """The average skin limit (37.0 °C — the paper's default USTA limit)."""
        return sum(p.skin_limit_c for p in self._profiles.values()) / len(self._profiles)

    def default_user(self) -> ThermalComfortProfile:
        """The "default" user whose limit is the population average."""
        return ThermalComfortProfile(
            user_id=DEFAULT_USER_ID,
            skin_limit_c=round(self.mean_skin_limit_c, 2),
            screen_limit_c=round(
                sum(p.screen_limit_c for p in self._profiles.values()) / len(self._profiles), 2
            ),
        )

    def with_default(self) -> List[ThermalComfortProfile]:
        """All participants plus the default user (the 11 settings of Fig. 2)."""
        return self.profiles() + [self.default_user()]


def paper_population() -> UserPopulation:
    """The calibrated ten-user population of the paper's studies."""
    return UserPopulation()
