"""User-study substrate: comfort profiles, comfort analysis, satisfaction model."""

from .comfort import ComfortAnalysis, analyse_comfort, analyse_for_user, discomfort_onset_time
from .population import (
    DEFAULT_USER_ID,
    PAPER_USER_IDS,
    ThermalComfortProfile,
    UserPopulation,
    paper_population,
)
from .satisfaction import (
    PreferenceResult,
    RatingModel,
    SessionOutcome,
    summarize_preferences,
)

__all__ = [
    "ComfortAnalysis",
    "analyse_comfort",
    "analyse_for_user",
    "discomfort_onset_time",
    "DEFAULT_USER_ID",
    "PAPER_USER_IDS",
    "ThermalComfortProfile",
    "UserPopulation",
    "paper_population",
    "PreferenceResult",
    "RatingModel",
    "SessionOutcome",
    "summarize_preferences",
]
