"""User-study substrate: comfort profiles, analysis, satisfaction, adaptation."""

from .adaptation import (
    AdaptiveComfortManager,
    ComfortAdapter,
    FeedbackStep,
    FixedLimit,
    QuantileTracker,
    UserFeedbackModel,
)
from .comfort import ComfortAnalysis, analyse_comfort, analyse_for_user, discomfort_onset_time
from .population import (
    DEFAULT_USER_ID,
    PAPER_USER_IDS,
    ThermalComfortProfile,
    UserPopulation,
    paper_population,
)
from .satisfaction import (
    PreferenceResult,
    RatingModel,
    SessionOutcome,
    summarize_preferences,
)

__all__ = [
    "AdaptiveComfortManager",
    "ComfortAdapter",
    "FeedbackStep",
    "FixedLimit",
    "QuantileTracker",
    "UserFeedbackModel",
    "ComfortAnalysis",
    "analyse_comfort",
    "analyse_for_user",
    "discomfort_onset_time",
    "DEFAULT_USER_ID",
    "PAPER_USER_IDS",
    "ThermalComfortProfile",
    "UserPopulation",
    "paper_population",
    "PreferenceResult",
    "RatingModel",
    "SessionOutcome",
    "summarize_preferences",
]
