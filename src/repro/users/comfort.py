"""Comfort analysis: time spent above a user's limit, discomfort onset, severity.

These are the quantities behind Figure 2 (percentage of a 30-minute Skype call
spent above each user's comfort limit) and behind the comfort-threshold study
of Figure 1 (the instant a ramping skin temperature first crosses the user's
limit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from .population import ThermalComfortProfile

__all__ = [
    "ComfortAnalysis",
    "analyse_comfort",
    "analyse_comfort_stream",
    "discomfort_onset_time",
]


@dataclass(frozen=True)
class ComfortAnalysis:
    """Summary of how a temperature trace relates to one user's comfort limit."""

    user_id: str
    limit_c: float
    duration_s: float
    time_over_limit_s: float
    peak_temp_c: float
    peak_exceedance_c: float
    mean_exceedance_c: float
    onset_time_s: Optional[float]

    @property
    def percent_time_over_limit(self) -> float:
        """Percentage of the trace spent above the limit (Fig. 2's metric).

        Clamped to 100: the rounding of ``100 * t / d`` can exceed it by one
        ulp when the whole trace is over the limit.
        """
        if self.duration_s <= 0:
            return 0.0
        return min(100.0, 100.0 * self.time_over_limit_s / self.duration_s)

    @property
    def ever_uncomfortable(self) -> bool:
        """True if the limit was crossed at least once."""
        return self.time_over_limit_s > 0


def analyse_comfort(
    temperatures_c: Sequence[float],
    limit_c: float,
    dt_s: float = 1.0,
    user_id: str = "default",
) -> ComfortAnalysis:
    """Analyse a temperature trace against a comfort limit.

    Args:
        temperatures_c: the skin (or screen) temperature samples.
        limit_c: the user's comfort limit.
        dt_s: sampling period of the trace.
        user_id: identifier carried into the result for reporting.
    """
    temps = np.asarray(list(temperatures_c), dtype=float)
    if temps.size == 0:
        raise ValueError("cannot analyse an empty temperature trace")
    if dt_s <= 0:
        raise ValueError("dt_s must be positive")

    over = temps > limit_c
    exceedance = np.where(over, temps - limit_c, 0.0)
    onset_index = int(np.argmax(over)) if bool(np.any(over)) else None

    return ComfortAnalysis(
        user_id=user_id,
        limit_c=limit_c,
        duration_s=float(temps.size * dt_s),
        time_over_limit_s=float(np.count_nonzero(over) * dt_s),
        peak_temp_c=float(np.max(temps)),
        peak_exceedance_c=float(np.max(exceedance)),
        mean_exceedance_c=float(np.mean(exceedance)),
        onset_time_s=None if onset_index is None else float(onset_index * dt_s),
    )


def analyse_comfort_stream(
    temperatures_c: Iterable[float],
    limit_c: float,
    dt_s: float = 1.0,
    user_id: str = "default",
) -> ComfortAnalysis:
    """Single-pass form of :func:`analyse_comfort` for temperature *streams*.

    Consumes any iterable (a generator over streamed step records included)
    in O(1) memory.  Counts, peaks and the onset time are exactly those of
    the array form; ``mean_exceedance_c`` is a running sum divided by the
    count, which may differ from ``np.mean``'s pairwise summation in the
    last ulp.
    """
    if dt_s <= 0:
        raise ValueError("dt_s must be positive")
    count = 0
    over_count = 0
    peak = float("-inf")
    peak_exceedance = 0.0
    exceedance_sum = 0.0
    onset_index: Optional[int] = None
    for temp in temperatures_c:
        temp = float(temp)
        if temp > peak:
            peak = temp
        if temp > limit_c:
            if onset_index is None:
                onset_index = count
            over_count += 1
            excess = temp - limit_c
            exceedance_sum += excess
            if excess > peak_exceedance:
                peak_exceedance = excess
        count += 1
    if count == 0:
        raise ValueError("cannot analyse an empty temperature trace")
    return ComfortAnalysis(
        user_id=user_id,
        limit_c=limit_c,
        duration_s=float(count * dt_s),
        time_over_limit_s=float(over_count * dt_s),
        peak_temp_c=peak,
        peak_exceedance_c=peak_exceedance,
        mean_exceedance_c=exceedance_sum / count,
        onset_time_s=None if onset_index is None else float(onset_index * dt_s),
    )


def analyse_for_user(
    skin_temps_c: Sequence[float],
    profile: ThermalComfortProfile,
    dt_s: float = 1.0,
) -> ComfortAnalysis:
    """Convenience wrapper: analyse a skin-temperature trace against a profile."""
    return analyse_comfort(skin_temps_c, profile.skin_limit_c, dt_s=dt_s, user_id=profile.user_id)


def discomfort_onset_time(
    temperatures_c: Sequence[float], limit_c: float, dt_s: float = 1.0
) -> Optional[float]:
    """Time (seconds) at which the trace first exceeds the limit, or ``None``.

    This is the quantity measured in the Fig. 1 user study: participants report
    the instant the device becomes unacceptably warm, which in the simulated
    study is the first crossing of their comfort limit.
    """
    analysis = analyse_comfort(temperatures_c, limit_c, dt_s=dt_s)
    return analysis.onset_time_s
